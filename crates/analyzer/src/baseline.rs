//! The committed lint baseline: accepted Warn/Info findings.
//!
//! Some performance lints fire *by design* on the paper's weaker
//! baselines (`Br_Lin` really is a serialization hotspot — that is the
//! paper's thesis). The baseline file records those accepted findings so
//! `stp lint --perf` stays green until a change introduces a *new*
//! smell. Error-severity findings can never be baselined: a deadlock or
//! a cost-model divergence fails the gate regardless.
//!
//! Keys are `<kind>@<algo>/<dist>/<RxC>/s<N>` — executor-independent
//! (findings are byte-identical across executors) and stable across
//! sweeps. The file format is a single sorted JSON object:
//!
//! ```json
//! { "suppress": [
//!   "serialization_hotspot@Br_Lin/E/4x4/s4",
//!   ...
//! ] }
//! ```

use std::collections::BTreeSet;

use crate::checks::{Finding, Severity};
use crate::lint::LintEntry;
use crate::report::escape;

/// A set of accepted finding keys.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Accepted `<kind>@<point>` keys.
    pub suppress: BTreeSet<String>,
}

/// The baseline key of one finding at one grid point.
pub fn finding_key(entry: &LintEntry, f: &Finding) -> String {
    format!(
        "{}@{}/{}/{}x{}/s{}",
        f.kind.name(),
        entry.algo,
        entry.dist,
        entry.rows,
        entry.cols,
        entry.s
    )
}

impl Baseline {
    /// Parse the committed file format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        use stp_core::checkpoint::{parse_json, JsonValue};
        let v = parse_json(text)?;
        let list = v
            .get("suppress")
            .and_then(JsonValue::as_array)
            .ok_or("baseline missing \"suppress\" array")?;
        let mut suppress = BTreeSet::new();
        for item in list {
            let key = item
                .as_str()
                .ok_or("baseline \"suppress\" entries must be strings")?;
            suppress.insert(key.to_string());
        }
        Ok(Baseline { suppress })
    }

    /// Capture every suppressible (Warn/Info) finding of a sweep as the
    /// new baseline — `stp lint --write-baseline`.
    pub fn from_entries(entries: &[LintEntry]) -> Baseline {
        let mut suppress = BTreeSet::new();
        for e in entries {
            for f in &e.findings {
                if f.severity() != Severity::Error {
                    suppress.insert(finding_key(e, f));
                }
            }
        }
        Baseline { suppress }
    }

    /// True when the finding is accepted by this baseline. Errors are
    /// never suppressed, even if their key is present.
    pub fn suppresses(&self, entry: &LintEntry, f: &Finding) -> bool {
        f.severity() != Severity::Error && self.suppress.contains(&finding_key(entry, f))
    }

    /// The committed file format (sorted, one key per line).
    pub fn to_json(&self) -> String {
        if self.suppress.is_empty() {
            return "{ \"suppress\": [] }\n".to_string();
        }
        let keys: Vec<String> = self
            .suppress
            .iter()
            .map(|k| format!("  \"{}\"", escape(k)))
            .collect();
        format!("{{ \"suppress\": [\n{}\n] }}\n", keys.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::FindingKind;

    fn entry_with(findings: Vec<Finding>) -> LintEntry {
        LintEntry {
            algo: "Br_Lin".into(),
            dist: "E".into(),
            rows: 4,
            cols: 4,
            s: 4,
            sends: 1,
            recvs: 1,
            max_link_load: 1,
            deadlocked: false,
            opaque_payloads: false,
            dropped_attempts: 0,
            findings,
        }
    }

    #[test]
    fn round_trips_and_stays_sorted() {
        let e = entry_with(vec![
            Finding::new(FindingKind::SerializationHotspot, Some(0), "hot".into()),
            Finding::new(FindingKind::AboveLowerBound, None, "slow".into()),
        ]);
        let b = Baseline::from_entries(std::slice::from_ref(&e));
        assert_eq!(b.suppress.len(), 2);
        let text = b.to_json();
        let parsed = Baseline::parse(&text).expect("parse own output");
        assert_eq!(parsed.suppress, b.suppress);
        assert_eq!(parsed.to_json(), text, "format is a fixed point");
        assert!(parsed.suppresses(&e, &e.findings[0]));
    }

    #[test]
    fn errors_are_never_suppressed() {
        let e = entry_with(vec![Finding::new(
            FindingKind::CostModelDivergence,
            None,
            "skew".into(),
        )]);
        // Capturing a baseline ignores errors...
        assert!(Baseline::from_entries(std::slice::from_ref(&e))
            .suppress
            .is_empty());
        // ...and even a hand-written key for one does not suppress it.
        let mut b = Baseline::default();
        b.suppress.insert(finding_key(&e, &e.findings[0]));
        assert!(!b.suppresses(&e, &e.findings[0]));
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{ \"suppress\": [] }").expect("empty ok");
        assert!(b.suppress.is_empty());
        assert!(Baseline::parse("{}").is_err());
    }
}

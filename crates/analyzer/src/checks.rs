//! The four schedule checks.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mpp_model::{Link, Machine};

use crate::schedule::{Attributed, Attribution, Schedule};

/// What a finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// The run aborted with every live rank blocked in `recv`.
    Deadlock,
    /// A message was still undelivered when its destination finished.
    UnmatchedSend,
    /// A receive matched while another in-flight message with the same
    /// `(src, tag)` was racing it.
    MatchAmbiguity,
    /// A rank ended without one or more of the `s` source messages.
    PayloadLeak,
    /// A physical link carried more messages than the configured bound.
    LinkOverload,
    /// The fault plan destroyed a message: every permitted transmission
    /// attempt was dropped, so the destination can never receive it.
    LostMessage,
}

impl FindingKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Deadlock => "deadlock",
            FindingKind::UnmatchedSend => "unmatched_send",
            FindingKind::MatchAmbiguity => "match_ambiguity",
            FindingKind::PayloadLeak => "payload_leak",
            FindingKind::LinkOverload => "link_overload",
            FindingKind::LostMessage => "lost_message",
        }
    }

    /// Inverse of [`name`](FindingKind::name) — used when lint entries
    /// round-trip through a sweep checkpoint.
    pub fn from_name(name: &str) -> Option<FindingKind> {
        Some(match name {
            "deadlock" => FindingKind::Deadlock,
            "unmatched_send" => FindingKind::UnmatchedSend,
            "match_ambiguity" => FindingKind::MatchAmbiguity,
            "payload_leak" => FindingKind::PayloadLeak,
            "link_overload" => FindingKind::LinkOverload,
            "lost_message" => FindingKind::LostMessage,
            _ => return None,
        })
    }
}

/// One diagnostic produced by the checker.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Category.
    pub kind: FindingKind,
    /// The rank the finding is anchored at, when meaningful.
    pub rank: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

/// Everything the checker computed for one schedule.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, in check order (deadlock first).
    pub findings: Vec<Finding>,
    /// Total sends recorded.
    pub sends: usize,
    /// Total receive matches recorded.
    pub recvs: usize,
    /// Heaviest per-link message count over the machine's routes.
    pub max_link_load: u64,
    /// The link carrying `max_link_load` (None on an empty schedule).
    pub hottest_link: Option<Link>,
    /// True when some payload could not be traced back to a source; the
    /// leak check was skipped in that case instead of guessing.
    pub opaque_payloads: bool,
}

impl Analysis {
    /// True when no findings were produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every check on `sched` as recorded on `machine`.
///
/// `max_link_load` opts into the link-overload check: `Some(k)` flags
/// every physical link that carries more than `k` messages over the
/// whole run. `None` still computes the per-link counts for the report
/// but produces no overload findings (absolute message counts are a
/// property of the algorithm ×machine pair, not a bug by themselves).
pub fn analyze(
    sched: &Schedule,
    machine: &Machine,
    sources: &[usize],
    payload_of: &dyn Fn(usize) -> Vec<u8>,
    max_link_load: Option<u64>,
) -> Analysis {
    let mut findings = Vec::new();

    check_deadlock(sched, &mut findings);
    check_lost(sched, &mut findings);
    check_unmatched(sched, &mut findings);
    check_ambiguity(sched, &mut findings);
    let opaque_payloads = check_leaks(sched, sources, payload_of, &mut findings);
    let (link_counts, max, hottest) = link_loads(sched, machine);
    if let Some(bound) = max_link_load {
        for (link, count) in &link_counts {
            if *count > bound {
                findings.push(Finding {
                    kind: FindingKind::LinkOverload,
                    rank: None,
                    detail: format!(
                        "link {}->{} carried {count} messages (bound {bound})",
                        link.from, link.to
                    ),
                });
            }
        }
    }

    Analysis {
        findings,
        sends: sched.sends.len(),
        recvs: sched.recvs.len(),
        max_link_load: max,
        hottest_link: hottest,
        opaque_payloads,
    }
}

/// Check 1: deadlock, with wait-for cycle reconstruction.
fn check_deadlock(sched: &Schedule, findings: &mut Vec<Finding>) {
    if !sched.deadlocked {
        return;
    }
    // Wait-for edges among the blocked ranks: r waits on its src filter.
    // Wildcard-src waits have no specific edge; they are reported as
    // unsatisfiable waits instead.
    let blocked: BTreeMap<usize, Option<usize>> = sched
        .blocked
        .iter()
        .map(|b| (b.rank, b.src_filter))
        .collect();
    let cycle = find_wait_cycle(&blocked);
    let waits: Vec<String> = sched
        .blocked
        .iter()
        .map(|b| {
            format!(
                "rank {} waits on recv(src={}, tag={})",
                b.rank,
                b.src_filter.map_or("any".into(), |s| s.to_string()),
                b.tag_filter.map_or("any".into(), |t| t.to_string()),
            )
        })
        .collect();
    let detail = match cycle {
        Some(cycle) => {
            let ring = cycle
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(" -> ");
            format!(
                "deadlock: wait-for cycle {ring} -> {} among {} blocked rank(s); {}",
                cycle[0],
                sched.blocked.len(),
                waits.join("; ")
            )
        }
        None => format!(
            "deadlock: {} rank(s) blocked on receives no live rank will satisfy; {}",
            sched.blocked.len(),
            waits.join("; ")
        ),
    };
    findings.push(Finding {
        kind: FindingKind::Deadlock,
        rank: sched.blocked.first().map(|b| b.rank),
        detail,
    });
}

/// Find a cycle in the (partial) functional wait-for graph.
fn find_wait_cycle(blocked: &BTreeMap<usize, Option<usize>>) -> Option<Vec<usize>> {
    for &start in blocked.keys() {
        let mut seen = Vec::new();
        let mut cur = start;
        loop {
            if let Some(pos) = seen.iter().position(|&r| r == cur) {
                return Some(seen[pos..].to_vec());
            }
            seen.push(cur);
            // Follow the edge only while the waited-on rank is itself
            // blocked; a wait on a finished or wildcard rank ends the walk.
            match blocked.get(&cur) {
                Some(Some(next)) if blocked.contains_key(next) => cur = *next,
                _ => break,
            }
        }
    }
    None
}

/// Delivery completeness under faults: every message the fault plan
/// destroyed (all permitted transmission attempts dropped) is a send the
/// destination can never receive. Reported as its own kind so fault
/// damage is distinguishable from a schedule that forgot a receive; the
/// unmatched-send check skips these sequence numbers for the same
/// reason.
fn check_lost(sched: &Schedule, findings: &mut Vec<Finding>) {
    let lost = sched.lost_seqs();
    if lost.is_empty() {
        return;
    }
    // Attempts actually made per lost message (drops are per attempt).
    let mut attempts: HashMap<u64, u32> = HashMap::new();
    for d in &sched.drops {
        let e = attempts.entry(d.seq).or_insert(0);
        *e = (*e).max(d.attempt + 1);
    }
    for send in &sched.sends {
        if lost.contains(&send.seq) {
            findings.push(Finding {
                kind: FindingKind::LostMessage,
                rank: Some(send.dst),
                detail: format!(
                    "message {} -> {} (tag {}, {} bytes, step {}) destroyed by the \
                     fault plan: all {} transmission attempt(s) dropped",
                    send.src,
                    send.dst,
                    send.tag,
                    send.data.len(),
                    send.step,
                    attempts.get(&send.seq).copied().unwrap_or(1)
                ),
            });
        }
    }
}

/// Check 2: sends that no receive ever consumed.
///
/// Skipped for deadlocked runs — in-flight messages are expected there,
/// and the deadlock finding is the root cause. Messages destroyed by the
/// fault plan are skipped too: [`check_lost`] already reported them with
/// the fault attribution.
fn check_unmatched(sched: &Schedule, findings: &mut Vec<Finding>) {
    if sched.deadlocked {
        return;
    }
    let lost = sched.lost_seqs();
    let matched = sched.matched_seqs();
    for send in &sched.sends {
        if !matched.contains(&send.seq) && !lost.contains(&send.seq) {
            findings.push(Finding {
                kind: FindingKind::UnmatchedSend,
                rank: Some(send.dst),
                detail: format!(
                    "message {} -> {} (tag {}, {} bytes, step {}) was never received",
                    send.src,
                    send.dst,
                    send.tag,
                    send.data.len(),
                    send.step
                ),
            });
        }
    }
}

/// Check 3: ambiguous receive matches, deduplicated per
/// `(rank, src, tag)` site.
fn check_ambiguity(sched: &Schedule, findings: &mut Vec<Finding>) {
    let mut seen = BTreeSet::new();
    for recv in &sched.recvs {
        if recv.dup_in_flight > 1 && seen.insert((recv.rank, recv.src, recv.tag)) {
            findings.push(Finding {
                kind: FindingKind::MatchAmbiguity,
                rank: Some(recv.rank),
                detail: format!(
                    "rank {} recv(src={}, tag={}) matched while {} in-flight message(s) \
                     shared (src={}, tag={}) — delivery order decided the match",
                    recv.rank,
                    recv.src_filter.map_or("any".into(), |s| s.to_string()),
                    recv.tag_filter.map_or("any".into(), |t| t.to_string()),
                    recv.dup_in_flight,
                    recv.src,
                    recv.tag
                ),
            });
        }
    }
}

/// Check 4: s-to-p completeness by payload attribution.
///
/// Returns whether any payload was opaque (leak check skipped).
/// Deadlocked runs are skipped — the deadlock is the root cause.
fn check_leaks(
    sched: &Schedule,
    sources: &[usize],
    payload_of: &dyn Fn(usize) -> Vec<u8>,
    findings: &mut Vec<Finding>,
) -> bool {
    if sched.deadlocked {
        return false;
    }
    let attribution = Attribution::new(sources, payload_of);
    if !attribution.is_usable() {
        return true;
    }
    let send_by_seq: HashMap<u64, usize> = sched
        .sends
        .iter()
        .enumerate()
        .map(|(i, s)| (s.seq, i))
        .collect();

    // knowledge[r] = sources whose bytes reached rank r.
    let all: BTreeSet<usize> = sources.iter().copied().collect();
    let mut knowledge: Vec<BTreeSet<usize>> = (0..sched.p)
        .map(|r| {
            if all.contains(&r) {
                BTreeSet::from([r])
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    for recv in &sched.recvs {
        let Some(&i) = send_by_seq.get(&recv.seq) else {
            continue;
        };
        match attribution.attribute(&sched.sends[i].data) {
            Attributed::Sources(set) => knowledge[recv.rank].extend(set),
            Attributed::Opaque => return true,
        }
    }
    for (rank, known) in knowledge.iter().enumerate() {
        if !all.is_subset(known) {
            let missing: Vec<String> = all.difference(known).map(|s| s.to_string()).collect();
            findings.push(Finding {
                kind: FindingKind::PayloadLeak,
                rank: Some(rank),
                detail: format!(
                    "rank {rank} never received the message(s) of source(s) {} \
                     ({} of {} sources reached it)",
                    missing.join(", "),
                    known.len(),
                    all.len()
                ),
            });
        }
    }
    false
}

/// Per-link message counts over the machine's dimension-ordered routes.
fn link_loads(sched: &Schedule, machine: &Machine) -> (BTreeMap<Link, u64>, u64, Option<Link>) {
    let mut counts: BTreeMap<Link, u64> = BTreeMap::new();
    for send in &sched.sends {
        for link in machine.route(send.src, send.dst) {
            *counts.entry(link).or_insert(0) += 1;
        }
    }
    let (max, hottest) = counts
        .iter()
        .max_by_key(|&(link, count)| (*count, std::cmp::Reverse(*link)))
        .map_or((0, None), |(link, count)| (*count, Some(*link)));
    (counts, max, hottest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{BlockedOp, DropOp, RecvOp, SendOp};

    fn send(seq: u64, src: usize, dst: usize, tag: u32, data: &[u8]) -> SendOp {
        SendOp {
            step: 0,
            seq,
            src,
            dst,
            tag,
            data: data.to_vec(),
        }
    }

    fn recv(seq: u64, rank: usize, src: usize, tag: u32, dup: usize) -> RecvOp {
        RecvOp {
            step: 0,
            rank,
            src_filter: Some(src),
            tag_filter: Some(tag),
            seq,
            src,
            tag,
            dup_in_flight: dup,
        }
    }

    fn machine() -> Machine {
        Machine::paragon(2, 2)
    }

    fn payload(src: usize) -> Vec<u8> {
        stp_core::msgset::payload_for(src, 16)
    }

    #[test]
    fn clean_exchange_has_no_findings() {
        // 0 broadcasts its message to everyone; everyone receives it.
        let mut sched = Schedule {
            p: 4,
            ..Schedule::default()
        };
        for (i, dst) in [1, 2, 3].into_iter().enumerate() {
            let seq = i as u64 + 1;
            sched.sends.push(send(seq, 0, dst, 5, &payload(0)));
            sched.recvs.push(recv(seq, dst, 0, 5, 1));
        }
        let a = analyze(&sched, &machine(), &[0], &payload, None);
        assert!(a.is_clean(), "unexpected findings: {:?}", a.findings);
        assert_eq!(a.sends, 3);
        assert!(a.max_link_load >= 1);
        assert!(!a.opaque_payloads);
    }

    #[test]
    fn deadlock_cycle_is_reconstructed() {
        let sched = Schedule {
            p: 3,
            blocked: vec![
                BlockedOp {
                    rank: 0,
                    src_filter: Some(1),
                    tag_filter: Some(9),
                },
                BlockedOp {
                    rank: 1,
                    src_filter: Some(2),
                    tag_filter: Some(9),
                },
                BlockedOp {
                    rank: 2,
                    src_filter: Some(0),
                    tag_filter: Some(9),
                },
            ],
            deadlocked: true,
            ..Schedule::default()
        };
        let a = analyze(&sched, &machine(), &[0], &payload, None);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].kind, FindingKind::Deadlock);
        assert!(
            a.findings[0].detail.contains("wait-for cycle"),
            "{}",
            a.findings[0].detail
        );
    }

    #[test]
    fn unmatched_send_is_reported() {
        let mut sched = Schedule {
            p: 4,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.sends.push(send(2, 0, 2, 5, &payload(0)));
        sched.recvs.push(recv(1, 1, 0, 5, 1));
        // seq 2 never received; ranks 2 and 3 also leak source 0.
        let a = analyze(&sched, &machine(), &[0], &payload, None);
        let kinds: Vec<FindingKind> = a.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::UnmatchedSend));
        assert!(kinds.contains(&FindingKind::PayloadLeak));
    }

    #[test]
    fn ambiguity_dedupes_per_site() {
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.sends.push(send(2, 0, 1, 5, &payload(0)));
        sched.recvs.push(recv(1, 1, 0, 5, 2));
        sched.recvs.push(recv(2, 1, 0, 5, 1));
        let a = analyze(&sched, &Machine::paragon(1, 2), &[0], &payload, None);
        let ambiguities: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::MatchAmbiguity)
            .collect();
        assert_eq!(ambiguities.len(), 1);
    }

    fn drop(seq: u64, attempt: u32, exhausted: bool) -> DropOp {
        DropOp {
            seq,
            src: 0,
            dst: 1,
            attempt,
            exhausted,
        }
    }

    #[test]
    fn lost_message_is_attributed_to_the_fault_plan() {
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.drops.push(drop(1, 0, false));
        sched.drops.push(drop(1, 1, true));
        let a = analyze(&sched, &Machine::paragon(1, 2), &[0], &payload, None);
        let kinds: Vec<FindingKind> = a.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::LostMessage));
        // The root cause is reported once — not also as an unmatched send.
        assert!(!kinds.contains(&FindingKind::UnmatchedSend));
        // Rank 1 leaks source 0 as a consequence; that is still reported.
        assert!(kinds.contains(&FindingKind::PayloadLeak));
        let lost = a
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::LostMessage)
            .unwrap();
        assert!(
            lost.detail.contains("all 2 transmission attempt(s)"),
            "{}",
            lost.detail
        );
    }

    #[test]
    fn recovered_drops_are_not_findings() {
        // Attempt 0 dropped, retry delivered: full delivery, clean run.
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.drops.push(drop(1, 0, false));
        sched.recvs.push(recv(1, 1, 0, 5, 1));
        let a = analyze(&sched, &Machine::paragon(1, 2), &[0], &payload, None);
        assert!(a.is_clean(), "unexpected findings: {:?}", a.findings);
    }

    #[test]
    fn link_overload_requires_opt_in() {
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        for seq in 1..=4u64 {
            sched.sends.push(send(seq, 0, 1, seq as u32, &payload(0)));
            sched.recvs.push(recv(seq, 1, 0, seq as u32, 1));
        }
        let m = Machine::paragon(1, 2);
        let silent = analyze(&sched, &m, &[0], &payload, None);
        assert!(silent.is_clean());
        assert_eq!(silent.max_link_load, 4);
        let strict = analyze(&sched, &m, &[0], &payload, Some(2));
        assert!(strict
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::LinkOverload));
    }
}

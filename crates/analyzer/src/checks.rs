//! The schedule checks, as a pluggable registry.
//!
//! Every diagnostic the analyzer produces comes from a [`Check`]
//! registered in [`registry`]: the structural checks (deadlock, lost
//! messages, unmatched sends, match ambiguity, payload leaks, link
//! overload) plus the cost-model conformance gate and the performance
//! lints from [`crate::perf_checks`]. Checks run in registry order over
//! one shared [`CheckCtx`]; findings are then sorted into the canonical
//! `(kind, rank, at_ns, seq)` order so reports and checkpoints are
//! byte-stable regardless of which check emitted first.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mpp_model::{LibraryKind, Link, Machine, Time};

use crate::cost::CostReport;
use crate::schedule::{Attributed, Attribution, Schedule};

/// How bad a finding is. Errors are always fatal to a lint run; warnings
/// and notes can be suppressed by a committed baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A correctness bug: the schedule is wrong or the model disagrees
    /// with the kernel.
    Error,
    /// A performance smell worth a look.
    Warn,
    /// Informational: expected on some algorithm × machine pairs.
    Info,
}

impl Severity {
    /// Stable machine-readable name (also the SARIF level).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Info => "note",
        }
    }
}

/// What a finding is about.
///
/// Declaration order is the canonical report order: correctness kinds
/// first, then conformance, then the performance lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// The run aborted with every live rank blocked in `recv`.
    Deadlock,
    /// A message was still undelivered when its destination finished.
    UnmatchedSend,
    /// A receive matched while another in-flight message with the same
    /// `(src, tag)` was racing it.
    MatchAmbiguity,
    /// A rank ended without one or more of the `s` source messages.
    PayloadLeak,
    /// A physical link carried more messages than the configured bound.
    LinkOverload,
    /// The fault plan destroyed a message: every permitted transmission
    /// attempt was dropped, so the destination can never receive it.
    LostMessage,
    /// The static cost engine's replay disagrees with the kernel's
    /// recorded timing — a bug in one of the two.
    CostModelDivergence,
    /// A multi-port node never drove more than one injection port
    /// concurrently: the schedule serializes where the hardware would
    /// parallelize.
    IdlePorts,
    /// One rank accounts for most of the critical path.
    SerializationHotspot,
    /// Contention stalls outweigh resource-free transfer time on the
    /// critical path.
    ContentionDominated,
    /// The same payload crossed the same physical link repeatedly — a
    /// tree would forward instead of re-sending.
    RedundantTransmission,
    /// The makespan exceeds the configured multiple of the s-to-p
    /// lower bound.
    AboveLowerBound,
}

impl FindingKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::Deadlock => "deadlock",
            FindingKind::UnmatchedSend => "unmatched_send",
            FindingKind::MatchAmbiguity => "match_ambiguity",
            FindingKind::PayloadLeak => "payload_leak",
            FindingKind::LinkOverload => "link_overload",
            FindingKind::LostMessage => "lost_message",
            FindingKind::CostModelDivergence => "cost_model_divergence",
            FindingKind::IdlePorts => "idle_ports",
            FindingKind::SerializationHotspot => "serialization_hotspot",
            FindingKind::ContentionDominated => "contention_dominated",
            FindingKind::RedundantTransmission => "redundant_transmission",
            FindingKind::AboveLowerBound => "above_lower_bound",
        }
    }

    /// Inverse of [`name`](FindingKind::name) — used when lint entries
    /// round-trip through a sweep checkpoint.
    pub fn from_name(name: &str) -> Option<FindingKind> {
        Some(match name {
            "deadlock" => FindingKind::Deadlock,
            "unmatched_send" => FindingKind::UnmatchedSend,
            "match_ambiguity" => FindingKind::MatchAmbiguity,
            "payload_leak" => FindingKind::PayloadLeak,
            "link_overload" => FindingKind::LinkOverload,
            "lost_message" => FindingKind::LostMessage,
            "cost_model_divergence" => FindingKind::CostModelDivergence,
            "idle_ports" => FindingKind::IdlePorts,
            "serialization_hotspot" => FindingKind::SerializationHotspot,
            "contention_dominated" => FindingKind::ContentionDominated,
            "redundant_transmission" => FindingKind::RedundantTransmission,
            "above_lower_bound" => FindingKind::AboveLowerBound,
            _ => return None,
        })
    }

    /// Severity class of this kind.
    pub fn severity(self) -> Severity {
        match self {
            FindingKind::Deadlock
            | FindingKind::UnmatchedSend
            | FindingKind::MatchAmbiguity
            | FindingKind::PayloadLeak
            | FindingKind::LostMessage
            | FindingKind::CostModelDivergence => Severity::Error,
            FindingKind::LinkOverload
            | FindingKind::IdlePorts
            | FindingKind::SerializationHotspot
            | FindingKind::ContentionDominated => Severity::Warn,
            FindingKind::RedundantTransmission | FindingKind::AboveLowerBound => Severity::Info,
        }
    }

    /// One-line description of the rule, for SARIF rule metadata.
    pub fn describe(self) -> &'static str {
        match self {
            FindingKind::Deadlock => "every live rank is blocked in recv",
            FindingKind::UnmatchedSend => "a message was never received",
            FindingKind::MatchAmbiguity => "delivery order decided a receive match",
            FindingKind::PayloadLeak => "a rank is missing source messages",
            FindingKind::LinkOverload => "a link exceeded the message bound",
            FindingKind::LostMessage => "the fault plan destroyed a message",
            FindingKind::CostModelDivergence => "the static cost model disagrees with the kernel",
            FindingKind::IdlePorts => "multi-port nodes drive one port at a time",
            FindingKind::SerializationHotspot => "one rank dominates the critical path",
            FindingKind::ContentionDominated => "contention stalls dominate the critical path",
            FindingKind::RedundantTransmission => "identical payloads re-cross the same link",
            FindingKind::AboveLowerBound => "makespan far above the s-to-p lower bound",
        }
    }
}

/// One diagnostic produced by the checker.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Category.
    pub kind: FindingKind,
    /// The rank the finding is anchored at, when meaningful.
    pub rank: Option<usize>,
    /// Human-readable description.
    pub detail: String,
    /// Virtual-time anchor (ns), when the finding points at an instant.
    pub at_ns: Option<Time>,
    /// The message sequence number involved, when there is one.
    pub seq: Option<u64>,
}

impl Finding {
    /// A finding without time or sequence anchors.
    pub fn new(kind: FindingKind, rank: Option<usize>, detail: String) -> Finding {
        Finding {
            kind,
            rank,
            detail,
            at_ns: None,
            seq: None,
        }
    }

    /// Anchor at a virtual-time instant.
    pub fn at(mut self, ns: Time) -> Finding {
        self.at_ns = Some(ns);
        self
    }

    /// Severity of this finding (derived from its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

/// Options for one [`analyze`] run.
#[derive(Debug, Clone)]
pub struct AnalyzeOpts {
    /// Opt-in link-overload bound: `Some(k)` flags every physical link
    /// that carries more than `k` messages over the whole run. `None`
    /// still computes the per-link counts for the report but produces no
    /// overload findings (absolute message counts are a property of the
    /// algorithm × machine pair, not a bug by themselves).
    pub max_link_load: Option<u64>,
    /// Communication library the schedule was recorded under (selects
    /// the α overheads the cost engine replays with).
    pub lib: LibraryKind,
    /// The schedule was recorded under an active fault plan; the cost
    /// engine skips the recomputations faults legitimately perturb.
    pub faulted: bool,
    /// Run the performance lints (idle ports, serialization hotspot,
    /// contention dominated, redundant transmission, above lower bound).
    pub perf: bool,
    /// Check the static cost model against the kernel's recording and
    /// report any divergence as an error.
    pub conformance: bool,
    /// `above_lower_bound` fires when the makespan exceeds this multiple
    /// of the s-to-p lower bound.
    pub lb_tolerance: f64,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            max_link_load: None,
            lib: LibraryKind::Nx,
            faulted: false,
            perf: false,
            conformance: true,
            lb_tolerance: 8.0,
        }
    }
}

/// Everything a [`Check`] can look at.
pub struct CheckCtx<'a> {
    /// The recorded schedule under analysis.
    pub sched: &'a Schedule,
    /// The machine it was recorded on.
    pub machine: &'a Machine,
    /// The source ranks of the s-to-p instance.
    pub sources: &'a [usize],
    /// Reference payload per source (for attribution).
    pub payload_of: &'a dyn Fn(usize) -> Vec<u8>,
    /// Analysis options.
    pub opts: &'a AnalyzeOpts,
    /// The cost engine's replay, when timing data was recorded (absent
    /// on deadlocked or hand-built schedules).
    pub cost: Option<&'a CostReport>,
    /// Per-link message counts over the machine's routes.
    pub link_counts: &'a BTreeMap<Link, u64>,
}

/// Mutable results shared by all checks of one run.
#[derive(Debug, Default)]
pub struct CheckOutput {
    /// Findings accumulated so far (sorted by [`analyze`] at the end).
    pub findings: Vec<Finding>,
    /// Set when payload attribution hit an opaque payload and the leak
    /// check was skipped instead of guessing.
    pub opaque_payloads: bool,
}

/// One registered schedule check.
pub trait Check {
    /// Stable name (shown in `--list-checks` style output).
    fn name(&self) -> &'static str;
    /// Run over `ctx`, appending findings to `out`. A check that does
    /// not apply (wrong options, no timing data) appends nothing.
    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput);
}

/// All built-in checks, in execution order.
pub fn registry() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(DeadlockCheck),
        Box::new(LostMessageCheck),
        Box::new(UnmatchedSendCheck),
        Box::new(MatchAmbiguityCheck),
        Box::new(PayloadLeakCheck),
        Box::new(LinkOverloadCheck),
        Box::new(crate::perf_checks::CostConformance),
        Box::new(crate::perf_checks::IdlePorts),
        Box::new(crate::perf_checks::SerializationHotspot),
        Box::new(crate::perf_checks::ContentionDominated),
        Box::new(crate::perf_checks::RedundantTransmission),
        Box::new(crate::perf_checks::AboveLowerBound),
    ]
}

/// Everything the checker computed for one schedule.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, sorted by `(kind, rank, at_ns, seq)`.
    pub findings: Vec<Finding>,
    /// Total sends recorded.
    pub sends: usize,
    /// Total receive matches recorded.
    pub recvs: usize,
    /// Heaviest per-link message count over the machine's routes.
    pub max_link_load: u64,
    /// The link carrying `max_link_load` (None on an empty schedule).
    pub hottest_link: Option<Link>,
    /// True when some payload could not be traced back to a source; the
    /// leak check was skipped in that case instead of guessing.
    pub opaque_payloads: bool,
    /// The cost engine's replay, when timing data was recorded.
    pub cost: Option<CostReport>,
}

impl Analysis {
    /// True when no findings were produced.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every registered check on `sched` as recorded on `machine`.
pub fn analyze(
    sched: &Schedule,
    machine: &Machine,
    sources: &[usize],
    payload_of: &dyn Fn(usize) -> Vec<u8>,
    opts: &AnalyzeOpts,
) -> Analysis {
    let (link_counts, max, hottest) = link_loads(sched, machine);
    // The cost engine needs recorded timing to replay: skip it on
    // deadlocked runs (partial clocks) and hand-built schedules (no
    // transfer records).
    let cost = ((opts.conformance || opts.perf) && !sched.deadlocked && !sched.xfers.is_empty())
        .then(|| crate::cost::replay(sched, machine, opts.lib, opts.faulted));

    let ctx = CheckCtx {
        sched,
        machine,
        sources,
        payload_of,
        opts,
        cost: cost.as_ref(),
        link_counts: &link_counts,
    };
    let mut out = CheckOutput::default();
    for check in registry() {
        check.run(&ctx, &mut out);
    }
    // Canonical report order, independent of check execution order.
    out.findings
        .sort_by_key(|f| (f.kind, f.rank, f.at_ns, f.seq));

    Analysis {
        findings: out.findings,
        sends: sched.sends.len(),
        recvs: sched.recvs.len(),
        max_link_load: max,
        hottest_link: hottest,
        opaque_payloads: out.opaque_payloads,
        cost,
    }
}

/// Deadlock, with wait-for cycle reconstruction.
struct DeadlockCheck;

impl Check for DeadlockCheck {
    fn name(&self) -> &'static str {
        "deadlock"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        let sched = ctx.sched;
        if !sched.deadlocked {
            return;
        }
        // Wait-for edges among the blocked ranks: r waits on its src
        // filter. Wildcard-src waits have no specific edge; they are
        // reported as unsatisfiable waits instead.
        let blocked: BTreeMap<usize, Option<usize>> = sched
            .blocked
            .iter()
            .map(|b| (b.rank, b.src_filter))
            .collect();
        let cycle = find_wait_cycle(&blocked);
        let waits: Vec<String> = sched
            .blocked
            .iter()
            .map(|b| {
                format!(
                    "rank {} waits on recv(src={}, tag={})",
                    b.rank,
                    b.src_filter.map_or("any".into(), |s| s.to_string()),
                    b.tag_filter.map_or("any".into(), |t| t.to_string()),
                )
            })
            .collect();
        let detail = match cycle {
            Some(cycle) => {
                let ring = cycle
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> ");
                format!(
                    "deadlock: wait-for cycle {ring} -> {} among {} blocked rank(s); {}",
                    cycle[0],
                    sched.blocked.len(),
                    waits.join("; ")
                )
            }
            None => format!(
                "deadlock: {} rank(s) blocked on receives no live rank will satisfy; {}",
                sched.blocked.len(),
                waits.join("; ")
            ),
        };
        out.findings.push(Finding::new(
            FindingKind::Deadlock,
            sched.blocked.first().map(|b| b.rank),
            detail,
        ));
    }
}

/// Find a cycle in the (partial) functional wait-for graph.
fn find_wait_cycle(blocked: &BTreeMap<usize, Option<usize>>) -> Option<Vec<usize>> {
    for &start in blocked.keys() {
        let mut seen = Vec::new();
        let mut cur = start;
        loop {
            if let Some(pos) = seen.iter().position(|&r| r == cur) {
                return Some(seen[pos..].to_vec());
            }
            seen.push(cur);
            // Follow the edge only while the waited-on rank is itself
            // blocked; a wait on a finished or wildcard rank ends the walk.
            match blocked.get(&cur) {
                Some(Some(next)) if blocked.contains_key(next) => cur = *next,
                _ => break,
            }
        }
    }
    None
}

/// Delivery completeness under faults: every message the fault plan
/// destroyed (all permitted transmission attempts dropped) is a send the
/// destination can never receive. Reported as its own kind so fault
/// damage is distinguishable from a schedule that forgot a receive; the
/// unmatched-send check skips these sequence numbers for the same
/// reason.
struct LostMessageCheck;

impl Check for LostMessageCheck {
    fn name(&self) -> &'static str {
        "lost_message"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        let sched = ctx.sched;
        let lost = sched.lost_seqs();
        if lost.is_empty() {
            return;
        }
        // Attempts actually made per lost message (drops are per attempt).
        let mut attempts: HashMap<u64, u32> = HashMap::new();
        for d in &sched.drops {
            let e = attempts.entry(d.seq).or_insert(0);
            *e = (*e).max(d.attempt + 1);
        }
        for send in &sched.sends {
            if lost.contains(&send.seq) {
                let mut f = Finding::new(
                    FindingKind::LostMessage,
                    Some(send.dst),
                    format!(
                        "message {} -> {} (tag {}, {} bytes, step {}) destroyed by the \
                         fault plan: all {} transmission attempt(s) dropped",
                        send.src,
                        send.dst,
                        send.tag,
                        send.data.len(),
                        send.step,
                        attempts.get(&send.seq).copied().unwrap_or(1)
                    ),
                );
                f.seq = Some(send.seq);
                out.findings.push(f);
            }
        }
    }
}

/// Sends that no receive ever consumed.
///
/// Skipped for deadlocked runs — in-flight messages are expected there,
/// and the deadlock finding is the root cause. Messages destroyed by the
/// fault plan are skipped too: [`LostMessageCheck`] already reported
/// them with the fault attribution.
struct UnmatchedSendCheck;

impl Check for UnmatchedSendCheck {
    fn name(&self) -> &'static str {
        "unmatched_send"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        let sched = ctx.sched;
        if sched.deadlocked {
            return;
        }
        let lost = sched.lost_seqs();
        let matched = sched.matched_seqs();
        for send in &sched.sends {
            if !matched.contains(&send.seq) && !lost.contains(&send.seq) {
                let mut f = Finding::new(
                    FindingKind::UnmatchedSend,
                    Some(send.dst),
                    format!(
                        "message {} -> {} (tag {}, {} bytes, step {}) was never received",
                        send.src,
                        send.dst,
                        send.tag,
                        send.data.len(),
                        send.step
                    ),
                );
                f.seq = Some(send.seq);
                out.findings.push(f);
            }
        }
    }
}

/// Ambiguous receive matches, deduplicated per `(rank, src, tag)` site.
struct MatchAmbiguityCheck;

impl Check for MatchAmbiguityCheck {
    fn name(&self) -> &'static str {
        "match_ambiguity"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        let mut seen = BTreeSet::new();
        for recv in &ctx.sched.recvs {
            if recv.dup_in_flight > 1 && seen.insert((recv.rank, recv.src, recv.tag)) {
                let mut f = Finding::new(
                    FindingKind::MatchAmbiguity,
                    Some(recv.rank),
                    format!(
                        "rank {} recv(src={}, tag={}) matched while {} in-flight message(s) \
                         shared (src={}, tag={}) — delivery order decided the match",
                        recv.rank,
                        recv.src_filter.map_or("any".into(), |s| s.to_string()),
                        recv.tag_filter.map_or("any".into(), |t| t.to_string()),
                        recv.dup_in_flight,
                        recv.src,
                        recv.tag
                    ),
                );
                f.seq = Some(recv.seq);
                out.findings.push(f);
            }
        }
    }
}

/// s-to-p completeness by payload attribution.
///
/// Deadlocked runs are skipped — the deadlock is the root cause. Sets
/// [`CheckOutput::opaque_payloads`] (and reports nothing) when some
/// payload could not be attributed.
struct PayloadLeakCheck;

impl Check for PayloadLeakCheck {
    fn name(&self) -> &'static str {
        "payload_leak"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        let sched = ctx.sched;
        if sched.deadlocked {
            return;
        }
        let attribution = Attribution::new(ctx.sources, ctx.payload_of);
        if !attribution.is_usable() {
            out.opaque_payloads = true;
            return;
        }
        let send_by_seq: HashMap<u64, usize> = sched
            .sends
            .iter()
            .enumerate()
            .map(|(i, s)| (s.seq, i))
            .collect();

        // knowledge[r] = sources whose bytes reached rank r.
        let all: BTreeSet<usize> = ctx.sources.iter().copied().collect();
        let mut knowledge: Vec<BTreeSet<usize>> = (0..sched.p)
            .map(|r| {
                if all.contains(&r) {
                    BTreeSet::from([r])
                } else {
                    BTreeSet::new()
                }
            })
            .collect();
        for recv in &sched.recvs {
            let Some(&i) = send_by_seq.get(&recv.seq) else {
                continue;
            };
            match attribution.attribute(&sched.sends[i].data) {
                Attributed::Sources(set) => knowledge[recv.rank].extend(set),
                Attributed::Opaque => {
                    out.opaque_payloads = true;
                    return;
                }
            }
        }
        for (rank, known) in knowledge.iter().enumerate() {
            if !all.is_subset(known) {
                let missing: Vec<String> = all.difference(known).map(|s| s.to_string()).collect();
                out.findings.push(Finding::new(
                    FindingKind::PayloadLeak,
                    Some(rank),
                    format!(
                        "rank {rank} never received the message(s) of source(s) {} \
                         ({} of {} sources reached it)",
                        missing.join(", "),
                        known.len(),
                        all.len()
                    ),
                ));
            }
        }
    }
}

/// Links whose message count exceeds the opt-in bound. With timing data
/// available the finding carries the link's busy timeline and its top
/// contributing transfers.
struct LinkOverloadCheck;

impl Check for LinkOverloadCheck {
    fn name(&self) -> &'static str {
        "link_overload"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        let Some(bound) = ctx.opts.max_link_load else {
            return;
        };
        for (link, count) in ctx.link_counts {
            if *count <= bound {
                continue;
            }
            let mut detail = format!(
                "link {}->{} carried {count} messages (bound {bound})",
                link.from, link.to
            );
            let mut f = Finding::new(FindingKind::LinkOverload, None, String::new());
            if let Some(tl) = ctx.cost.and_then(|c| c.links.get(link)) {
                detail.push_str(&format!(
                    "; busy {} ns across [{}, {}] ns",
                    tl.busy_ns, tl.first_busy_ns, tl.last_busy_ns
                ));
                if !tl.top.is_empty() {
                    let top: Vec<String> = tl
                        .top
                        .iter()
                        .map(|(seq, src, dst, ns)| format!("{src}->{dst} (seq {seq}, {ns} ns)"))
                        .collect();
                    detail.push_str(&format!("; top transfers: {}", top.join(", ")));
                }
                f.at_ns = Some(tl.first_busy_ns);
            }
            f.detail = detail;
            out.findings.push(f);
        }
    }
}

/// Per-link message counts over the machine's dimension-ordered routes.
fn link_loads(sched: &Schedule, machine: &Machine) -> (BTreeMap<Link, u64>, u64, Option<Link>) {
    let mut counts: BTreeMap<Link, u64> = BTreeMap::new();
    for send in &sched.sends {
        for link in machine.route(send.src, send.dst) {
            *counts.entry(link).or_insert(0) += 1;
        }
    }
    let (max, hottest) = counts
        .iter()
        .max_by_key(|&(link, count)| (*count, std::cmp::Reverse(*link)))
        .map_or((0, None), |(link, count)| (*count, Some(*link)));
    (counts, max, hottest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{BlockedOp, DropOp, RecvOp, SendOp};

    fn send(seq: u64, src: usize, dst: usize, tag: u32, data: &[u8]) -> SendOp {
        SendOp {
            step: 0,
            seq,
            src,
            dst,
            tag,
            data: data.to_vec(),
            issue_ns: 0,
        }
    }

    fn recv(seq: u64, rank: usize, src: usize, tag: u32, dup: usize) -> RecvOp {
        RecvOp {
            step: 0,
            rank,
            src_filter: Some(src),
            tag_filter: Some(tag),
            seq,
            src,
            tag,
            dup_in_flight: dup,
            start_ns: 0,
            arrival_ns: 0,
        }
    }

    fn machine() -> Machine {
        Machine::paragon(2, 2)
    }

    fn payload(src: usize) -> Vec<u8> {
        stp_core::msgset::payload_for(src, 16)
    }

    fn opts() -> AnalyzeOpts {
        AnalyzeOpts::default()
    }

    #[test]
    fn clean_exchange_has_no_findings() {
        // 0 broadcasts its message to everyone; everyone receives it.
        let mut sched = Schedule {
            p: 4,
            ..Schedule::default()
        };
        for (i, dst) in [1, 2, 3].into_iter().enumerate() {
            let seq = i as u64 + 1;
            sched.sends.push(send(seq, 0, dst, 5, &payload(0)));
            sched.recvs.push(recv(seq, dst, 0, 5, 1));
        }
        let a = analyze(&sched, &machine(), &[0], &payload, &opts());
        assert!(a.is_clean(), "unexpected findings: {:?}", a.findings);
        assert_eq!(a.sends, 3);
        assert!(a.max_link_load >= 1);
        assert!(!a.opaque_payloads);
    }

    #[test]
    fn deadlock_cycle_is_reconstructed() {
        let sched = Schedule {
            p: 3,
            blocked: vec![
                BlockedOp {
                    rank: 0,
                    src_filter: Some(1),
                    tag_filter: Some(9),
                },
                BlockedOp {
                    rank: 1,
                    src_filter: Some(2),
                    tag_filter: Some(9),
                },
                BlockedOp {
                    rank: 2,
                    src_filter: Some(0),
                    tag_filter: Some(9),
                },
            ],
            deadlocked: true,
            ..Schedule::default()
        };
        let a = analyze(&sched, &machine(), &[0], &payload, &opts());
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].kind, FindingKind::Deadlock);
        assert!(
            a.findings[0].detail.contains("wait-for cycle"),
            "{}",
            a.findings[0].detail
        );
    }

    #[test]
    fn unmatched_send_is_reported() {
        let mut sched = Schedule {
            p: 4,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.sends.push(send(2, 0, 2, 5, &payload(0)));
        sched.recvs.push(recv(1, 1, 0, 5, 1));
        // seq 2 never received; ranks 2 and 3 also leak source 0.
        let a = analyze(&sched, &machine(), &[0], &payload, &opts());
        let kinds: Vec<FindingKind> = a.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::UnmatchedSend));
        assert!(kinds.contains(&FindingKind::PayloadLeak));
    }

    #[test]
    fn ambiguity_dedupes_per_site() {
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.sends.push(send(2, 0, 1, 5, &payload(0)));
        sched.recvs.push(recv(1, 1, 0, 5, 2));
        sched.recvs.push(recv(2, 1, 0, 5, 1));
        let a = analyze(&sched, &Machine::paragon(1, 2), &[0], &payload, &opts());
        let ambiguities: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::MatchAmbiguity)
            .collect();
        assert_eq!(ambiguities.len(), 1);
    }

    fn drop(seq: u64, attempt: u32, exhausted: bool) -> DropOp {
        DropOp {
            seq,
            src: 0,
            dst: 1,
            attempt,
            exhausted,
        }
    }

    #[test]
    fn lost_message_is_attributed_to_the_fault_plan() {
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.drops.push(drop(1, 0, false));
        sched.drops.push(drop(1, 1, true));
        let a = analyze(&sched, &Machine::paragon(1, 2), &[0], &payload, &opts());
        let kinds: Vec<FindingKind> = a.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::LostMessage));
        // The root cause is reported once — not also as an unmatched send.
        assert!(!kinds.contains(&FindingKind::UnmatchedSend));
        // Rank 1 leaks source 0 as a consequence; that is still reported.
        assert!(kinds.contains(&FindingKind::PayloadLeak));
        let lost = a
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::LostMessage)
            .unwrap();
        assert!(
            lost.detail.contains("all 2 transmission attempt(s)"),
            "{}",
            lost.detail
        );
        assert_eq!(lost.seq, Some(1));
    }

    #[test]
    fn recovered_drops_are_not_findings() {
        // Attempt 0 dropped, retry delivered: full delivery, clean run.
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        sched.sends.push(send(1, 0, 1, 5, &payload(0)));
        sched.drops.push(drop(1, 0, false));
        sched.recvs.push(recv(1, 1, 0, 5, 1));
        let a = analyze(&sched, &Machine::paragon(1, 2), &[0], &payload, &opts());
        assert!(a.is_clean(), "unexpected findings: {:?}", a.findings);
    }

    #[test]
    fn link_overload_requires_opt_in() {
        let mut sched = Schedule {
            p: 2,
            ..Schedule::default()
        };
        for seq in 1..=4u64 {
            sched.sends.push(send(seq, 0, 1, seq as u32, &payload(0)));
            sched.recvs.push(recv(seq, 1, 0, seq as u32, 1));
        }
        let m = Machine::paragon(1, 2);
        let silent = analyze(&sched, &m, &[0], &payload, &opts());
        assert!(silent.is_clean());
        assert_eq!(silent.max_link_load, 4);
        let strict = analyze(
            &sched,
            &m,
            &[0],
            &payload,
            &AnalyzeOpts {
                max_link_load: Some(2),
                ..AnalyzeOpts::default()
            },
        );
        assert!(strict
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::LinkOverload));
    }

    #[test]
    fn findings_come_out_in_canonical_order() {
        let mut sched = Schedule {
            p: 4,
            ..Schedule::default()
        };
        // Two unmatched sends pushed in reverse-destination order plus
        // leaks: the report must still sort by (kind, rank, at, seq).
        sched.sends.push(send(2, 0, 3, 5, &payload(0)));
        sched.sends.push(send(1, 0, 2, 5, &payload(0)));
        let a = analyze(&sched, &machine(), &[0], &payload, &opts());
        let sorted: Vec<_> = a
            .findings
            .iter()
            .map(|f| (f.kind, f.rank, f.at_ns, f.seq))
            .collect();
        let mut expect = sorted.clone();
        expect.sort();
        assert_eq!(sorted, expect, "{:?}", a.findings);
        assert_eq!(a.findings[0].kind, FindingKind::UnmatchedSend);
        assert_eq!(a.findings[0].rank, Some(2));
    }

    #[test]
    fn severities_partition_the_kinds() {
        assert_eq!(FindingKind::Deadlock.severity(), Severity::Error);
        assert_eq!(FindingKind::CostModelDivergence.severity(), Severity::Error);
        assert_eq!(FindingKind::IdlePorts.severity(), Severity::Warn);
        assert_eq!(FindingKind::AboveLowerBound.severity(), Severity::Info);
        // Every kind's name round-trips.
        for kind in [
            FindingKind::Deadlock,
            FindingKind::UnmatchedSend,
            FindingKind::MatchAmbiguity,
            FindingKind::PayloadLeak,
            FindingKind::LinkOverload,
            FindingKind::LostMessage,
            FindingKind::CostModelDivergence,
            FindingKind::IdlePorts,
            FindingKind::SerializationHotspot,
            FindingKind::ContentionDominated,
            FindingKind::RedundantTransmission,
            FindingKind::AboveLowerBound,
        ] {
            assert_eq!(FindingKind::from_name(kind.name()), Some(kind));
        }
    }
}

//! The static cost engine: replay a recorded schedule against the
//! machine's timing parameters, independently of the kernel.
//!
//! The engine re-implements the α–β postal model and the contention
//! arithmetic (`Pipelined` wormhole windows, `Circuit` whole-route
//! holds, `Shared` queueing servers, port-slot arbitration) from the
//! recorded inputs alone: each send's issue clock, each transfer's
//! network-ready instant, and the route it took. Recorded gaps between
//! a rank's operations are treated as opaque local work. Everything
//! else — port slots, link windows, injection/arrival instants, stalls,
//! per-rank completion times, and the makespan — is **recomputed** and
//! compared against the kernel's recorded ground truth.
//!
//! **Cost-model conformance**: any mismatch between a recomputed value
//! and the recorded one is a [`CostReport::divergences`] entry — a bug
//! in either the cost engine or the kernel, surfaced by the analyzer as
//! an error-severity `cost_model_divergence` finding and machine-checked
//! in CI over the whole lint matrix on both executors.
//!
//! On top of the replay the engine derives the structures the perf
//! lints consume: the dependency-weighted critical path (attributing
//! each nanosecond of the makespan to a rank's α/local work, a link, or
//! a port wait), per-transfer slack, per-link busy timelines, and
//! per-node injection-port concurrency.

use std::collections::{BTreeMap, HashMap, HashSet};

use mpp_model::{ContentionModel, LibraryKind, Link, Machine, Time};

use crate::schedule::Schedule;

/// Cap on recorded divergence messages per schedule: the first mismatch
/// is the signal; later ones usually cascade from it.
const DIVERGENCE_CAP: usize = 8;

/// Top transfers kept per link busy timeline.
const TOP_TRANSFERS: usize = 3;

/// Busy timeline of one directed link, from the recorded link windows.
#[derive(Debug, Clone, Default)]
pub struct LinkTimeline {
    /// Messages that reserved this link.
    pub messages: u64,
    /// Sum of reserved window durations (ns).
    pub busy_ns: Time,
    /// Start of the first reserved window (ns).
    pub first_busy_ns: Time,
    /// End of the last reserved window (ns).
    pub last_busy_ns: Time,
    /// Heaviest transfers through this link:
    /// `(seq, src, dst, window_ns)`, longest first.
    pub top: Vec<(u64, usize, usize, Time)>,
}

/// Injection-port usage of one node.
#[derive(Debug, Clone, Default)]
pub struct PortUse {
    /// Networked sends injected at this node.
    pub sends: usize,
    /// Maximum number of concurrently busy injection-port windows.
    pub max_out_concurrency: usize,
}

/// The dependency-weighted critical path: a backward walk from the
/// latest-finishing rank attributing time to ranks, links, and ports.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Time attributed to each rank (α overheads + local work) (ns).
    pub by_rank_ns: Vec<Time>,
    /// Transfer spans attributed to each link on the path (ns).
    pub by_link_ns: BTreeMap<Link, Time>,
    /// Contention stalls accumulated by transfers on the path (ns).
    pub stall_ns: Time,
    /// Resource-free traversal time of transfers on the path (ns).
    pub free_ns: Time,
    /// Transfers on the path.
    pub xfers: usize,
    /// Waits attributed to busy injection/ejection ports (ns).
    pub port_wait_ns: Time,
}

/// Everything the cost engine computed for one schedule.
#[derive(Debug, Clone, Default)]
pub struct CostReport {
    /// Conformance failures: recomputed values that differ from the
    /// kernel's recording (capped at `DIVERGENCE_CAP` entries).
    pub divergences: Vec<String>,
    /// Recomputed completion time per rank (ns).
    pub rank_finish_ns: Vec<Time>,
    /// Recomputed makespan (ns).
    pub makespan_ns: Time,
    /// Critical-path decomposition.
    pub crit: CriticalPath,
    /// Per-delivered-transfer slack: `(seq, ns)` the message sat in its
    /// destination mailbox before the receiver asked for it.
    pub slack_ns: Vec<(u64, Time)>,
    /// Busy timeline per directed link (recorded ground truth).
    pub links: BTreeMap<Link, LinkTimeline>,
    /// Injection-port usage per node.
    pub ports: Vec<PortUse>,
    /// Total contention stall over all transfers (ns).
    pub total_stall_ns: Time,
    /// Total resource-free transfer time over all transfers (ns).
    pub total_free_ns: Time,
}

impl CostReport {
    /// True when the replay matched the kernel exactly.
    pub fn conformant(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Which constraint decided a transfer's injection instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bound {
    /// Software-ready at the sender: nothing blocked it.
    Ready,
    /// The source node's injection-port slot (last held by `seq`).
    OutPort(Option<u64>),
    /// The destination node's ejection-port slot.
    InPort(Option<u64>),
    /// A busy link on the route.
    OnLink(Link, Option<u64>),
}

/// One replayed transfer with its recomputed schedule and provenance.
#[derive(Debug, Clone)]
struct XferCost {
    seq: u64,
    src: usize,
    ready_ns: Time,
    start_ns: Time,
    done_ns: Time,
    stall_ns: Time,
    free_ns: Time,
    route: Vec<Link>,
    bound: Bound,
    local: bool,
}

/// One operation of a rank's clock chain.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// `usize` indexes [`Schedule::sends`].
    Send(usize),
    /// `usize` indexes [`Schedule::recvs`].
    Recv(usize),
}

#[derive(Debug, Clone, Copy)]
struct RankOp {
    kind: OpKind,
    /// Recorded clock when the kernel processed the op (its input).
    in_ns: Time,
    /// Recomputed clock after the op.
    out_ns: Time,
}

/// Index of the earliest-free slot (ties → lowest index) — the same
/// deterministic arbitration the kernel uses.
fn best_slot(slots: &[Time]) -> usize {
    let mut best = 0;
    for (i, &t) in slots.iter().enumerate().skip(1) {
        if t < slots[best] {
            best = i;
        }
    }
    best
}

/// Replay `sched` against `machine`'s cost model.
///
/// `faulted` marks a schedule recorded under an active fault plan:
/// retry backoff and injection delays shift the network-ready instant
/// beyond `issue + α_send`, and detours replace the dimension-ordered
/// route, so those two recomputations are skipped — the network
/// arithmetic itself is still replayed exactly from the recorded
/// injection instants.
pub fn replay(sched: &Schedule, machine: &Machine, lib: LibraryKind, faulted: bool) -> CostReport {
    let params = &machine.params;
    let tau = params.tau_hop_ns;
    let alpha_send = params.alpha_send(lib);
    let alpha_recv = params.alpha_recv(lib);
    let n = machine.topology.num_nodes();
    let k = params.ports_per_node;

    let mut report = CostReport {
        rank_finish_ns: vec![0; sched.p],
        ports: vec![PortUse::default(); n],
        ..CostReport::default()
    };
    fn diverge(report: &mut CostReport, msg: String) {
        if report.divergences.len() < DIVERGENCE_CAP {
            report.divergences.push(msg);
        }
    }

    // ---- Network replay: recompute every transfer's reservations. ----
    let mut link_busy: HashMap<Link, Time> = HashMap::new();
    let mut link_writer: HashMap<Link, u64> = HashMap::new();
    let mut out_port: Vec<Vec<Time>> = vec![vec![0; k]; n];
    let mut in_port: Vec<Vec<Time>> = vec![vec![0; k]; n];
    let mut out_writer: Vec<Vec<Option<u64>>> = vec![vec![None; k]; n];
    let mut in_writer: Vec<Vec<Option<u64>>> = vec![vec![None; k]; n];
    let mut xfers: Vec<XferCost> = Vec::with_capacity(sched.xfers.len());
    let mut xfer_by_seq: HashMap<u64, usize> = HashMap::with_capacity(sched.xfers.len());
    let send_bytes: HashMap<u64, usize> =
        sched.sends.iter().map(|s| (s.seq, s.data.len())).collect();

    for x in &sched.xfers {
        let bytes = x.bytes;
        if let Some(&b) = send_bytes.get(&x.seq) {
            if b != bytes {
                diverge(
                    &mut report,
                    format!(
                        "seq {}: transfer bytes {} != send payload {}",
                        x.seq, bytes, b
                    ),
                );
            }
        }
        let wire_ns = params.serialize_ns_lib(bytes, lib);
        if x.is_local() {
            let done = x.ready_ns + params.memcpy_ns(bytes);
            if done != x.done_ns {
                diverge(
                    &mut report,
                    format!(
                        "seq {}: local delivery recomputed at {} ns, kernel recorded {} ns",
                        x.seq, done, x.done_ns
                    ),
                );
            }
            let idx = xfers.len();
            xfers.push(XferCost {
                seq: x.seq,
                src: x.src,
                ready_ns: x.ready_ns,
                start_ns: x.ready_ns,
                done_ns: done,
                stall_ns: 0,
                free_ns: done - x.ready_ns,
                route: Vec::new(),
                bound: Bound::Ready,
                local: true,
            });
            xfer_by_seq.insert(x.seq, idx);
            continue;
        }

        let route: Vec<Link> = x.windows.iter().map(|w| w.link).collect();
        if !faulted {
            let expect = machine.route(x.src, x.dst);
            if route != expect {
                diverge(
                    &mut report,
                    format!(
                        "seq {}: recorded route differs from the dimension-ordered \
                         route {} -> {} ({} vs {} hops)",
                        x.seq,
                        x.src,
                        x.dst,
                        route.len(),
                        expect.len()
                    ),
                );
            }
        }
        let u = machine.node_of(x.src);
        let v = machine.node_of(x.dst);
        let out_slot = best_slot(&out_port[u]);
        let in_slot = best_slot(&in_port[v]);
        if Some(out_slot) != x.out_slot || Some(in_slot) != x.in_slot {
            diverge(
                &mut report,
                format!(
                    "seq {}: recomputed port slots (out {}, in {}) != recorded ({:?}, {:?})",
                    x.seq, out_slot, in_slot, x.out_slot, x.in_slot
                ),
            );
        }
        let in_horizon = in_port[v][in_slot].saturating_sub(route.len() as Time * tau);
        let port_free = x.ready_ns.max(out_port[u][out_slot]).max(in_horizon);
        let mut bound = Bound::Ready;
        if port_free > x.ready_ns {
            bound = if out_port[u][out_slot] >= in_horizon {
                Bound::OutPort(out_writer[u][out_slot])
            } else {
                Bound::InPort(in_writer[v][in_slot])
            };
        }

        // Independent re-implementation of the contention arithmetic —
        // see `mpp_sim::network` for the kernel's version.
        let mut windows: Vec<(Link, Time, Time)> = Vec::with_capacity(route.len());
        let (start, done) = match params.contention {
            ContentionModel::Shared => {
                let link_ns = params.link_ns(bytes);
                let mut head = port_free;
                for link in &route {
                    let busy = link_busy.get(link).copied().unwrap_or(0);
                    if busy > head {
                        head = busy;
                        bound = Bound::OnLink(*link, link_writer.get(link).copied());
                    }
                    windows.push((*link, head, head + link_ns));
                    link_busy.insert(*link, head + link_ns);
                    link_writer.insert(*link, x.seq);
                    head += tau;
                }
                let done = head + wire_ns;
                let start = head - route.len() as Time * tau;
                (start, done)
            }
            model => {
                let pipelined = model == ContentionModel::Pipelined;
                let mut start = port_free;
                for (i, link) in route.iter().enumerate() {
                    let busy = link_busy.get(link).copied().unwrap_or(0);
                    let slack = if pipelined { i as Time * tau } else { 0 };
                    let cand = busy.saturating_sub(slack);
                    if cand > start {
                        start = cand;
                        bound = Bound::OnLink(*link, link_writer.get(link).copied());
                    }
                }
                let done = start + params.hops_ns(route.len()) + wire_ns;
                for (i, link) in route.iter().enumerate() {
                    let (from, until) = if pipelined {
                        (start + i as Time * tau, start + i as Time * tau + wire_ns)
                    } else {
                        (start, done)
                    };
                    windows.push((*link, from, until));
                    link_busy.insert(*link, until);
                    link_writer.insert(*link, x.seq);
                }
                (start, done)
            }
        };
        let free_ns = params.hops_ns(route.len()) + wire_ns;
        let stall = done.saturating_sub(x.ready_ns + free_ns);

        if start != x.start_ns || done != x.done_ns {
            diverge(
                &mut report,
                format!(
                    "seq {}: recomputed start/done {}/{} ns != recorded {}/{} ns",
                    x.seq, start, done, x.start_ns, x.done_ns
                ),
            );
        }
        if stall != x.stall_ns {
            diverge(
                &mut report,
                format!(
                    "seq {}: recomputed stall {} ns != recorded {} ns",
                    x.seq, stall, x.stall_ns
                ),
            );
        }
        for (i, w) in x.windows.iter().enumerate() {
            let (link, from, until) = windows[i];
            debug_assert_eq!(link, w.link);
            if from != w.from_ns || until != w.until_ns {
                diverge(
                    &mut report,
                    format!(
                        "seq {}: hop {} ({}->{}) recomputed window [{}, {}] != \
                         recorded [{}, {}]",
                        x.seq, i, w.link.from, w.link.to, from, until, w.from_ns, w.until_ns
                    ),
                );
                break;
            }
        }

        out_port[u][out_slot] = start + wire_ns;
        in_port[v][in_slot] = done;
        out_writer[u][out_slot] = Some(x.seq);
        in_writer[v][in_slot] = Some(x.seq);
        report.total_stall_ns += stall;
        report.total_free_ns += free_ns;
        report.ports[u].sends += 1;

        let idx = xfers.len();
        xfers.push(XferCost {
            seq: x.seq,
            src: x.src,
            ready_ns: x.ready_ns,
            start_ns: start,
            done_ns: done,
            stall_ns: stall,
            free_ns,
            route,
            bound,
            local: false,
        });
        xfer_by_seq.insert(x.seq, idx);
    }

    // ---- Recorded link timelines and port concurrency. ----
    let mut link_contrib: BTreeMap<Link, Vec<(Time, u64, usize, usize)>> = BTreeMap::new();
    let mut port_windows: Vec<Vec<(Time, Time)>> = vec![Vec::new(); n];
    for x in &sched.xfers {
        for w in &x.windows {
            let t = report.links.entry(w.link).or_insert_with(|| LinkTimeline {
                first_busy_ns: Time::MAX,
                ..LinkTimeline::default()
            });
            t.messages += 1;
            let dur = w.until_ns.saturating_sub(w.from_ns);
            t.busy_ns += dur;
            t.first_busy_ns = t.first_busy_ns.min(w.from_ns);
            t.last_busy_ns = t.last_busy_ns.max(w.until_ns);
            link_contrib
                .entry(w.link)
                .or_default()
                .push((dur, x.seq, x.src, x.dst));
        }
        if !x.is_local() {
            let wire_ns = params.serialize_ns_lib(x.bytes, lib);
            port_windows[machine.node_of(x.src)].push((x.start_ns, x.start_ns + wire_ns));
        }
    }
    for (link, mut contrib) in link_contrib {
        contrib.sort_by(|a, b| (b.0, a.1).cmp(&(a.0, b.1)));
        contrib.truncate(TOP_TRANSFERS);
        if let Some(t) = report.links.get_mut(&link) {
            t.top = contrib
                .into_iter()
                .map(|(dur, seq, src, dst)| (seq, src, dst, dur))
                .collect();
        }
    }
    for (node, mut windows) in port_windows.into_iter().enumerate() {
        windows.sort_unstable();
        // Sweep: +1 at window start, -1 at end (end before start on ties
        // — back-to-back windows do not overlap).
        let mut events: Vec<(Time, i32)> = Vec::with_capacity(windows.len() * 2);
        for (from, until) in &windows {
            events.push((*from, 1));
            events.push((*until, -1));
        }
        events.sort_by_key(|&(t, delta)| (t, delta));
        let (mut cur, mut max) = (0i32, 0i32);
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        report.ports[node].max_out_concurrency = max.max(0) as usize;
    }

    // ---- Per-rank clock chains. ----
    let mut rank_ops: Vec<Vec<RankOp>> = vec![Vec::new(); sched.p];
    for (i, s) in sched.sends.iter().enumerate() {
        rank_ops[s.src].push(RankOp {
            kind: OpKind::Send(i),
            in_ns: s.issue_ns,
            out_ns: 0,
        });
    }
    for (i, r) in sched.recvs.iter().enumerate() {
        rank_ops[r.rank].push(RankOp {
            kind: OpKind::Recv(i),
            in_ns: r.start_ns,
            out_ns: 0,
        });
    }
    let finishes: HashMap<usize, Time> = sched.finishes.iter().copied().collect();
    for (rank, ops) in rank_ops.iter_mut().enumerate() {
        // Stable sort: batched sends share one issue clock and stay in
        // recording order, so batch members end up contiguous.
        ops.sort_by_key(|op| op.in_ns);
        let mut clock: Time = 0;
        // Issue clock of the previous send in the chain. A send whose
        // issue clock equals it is a later member of the same
        // `send_batch`: the whole batch pays a single α_send, so the
        // member's issue clock legitimately precedes the recomputed
        // chain (which already advanced past `issue + α_send`) and the
        // idempotent `clock = issue + α_send` re-derives the same chain
        // end. Sound because α_send > 0 makes the issue clocks of
        // *sequential* sends strictly increasing.
        let mut prev_send_in: Option<Time> = None;
        for op in ops.iter_mut() {
            let batch_member = matches!(op.kind, OpKind::Send(_)) && prev_send_in == Some(op.in_ns);
            if op.in_ns < clock && !batch_member {
                diverge(
                    &mut report,
                    format!(
                        "rank {rank}: operation clock {} ns earlier than the \
                         recomputed chain ({} ns) — the model overestimates",
                        op.in_ns, clock
                    ),
                );
            }
            match op.kind {
                OpKind::Send(i) => {
                    prev_send_in = Some(op.in_ns);
                    clock = op.in_ns + alpha_send;
                    if !faulted {
                        let seq = sched.sends[i].seq;
                        if let Some(&xi) = xfer_by_seq.get(&seq) {
                            if xfers[xi].ready_ns != clock {
                                diverge(
                                    &mut report,
                                    format!(
                                        "seq {seq}: network-ready recomputed at {} ns \
                                         (issue + α_send), kernel recorded {} ns",
                                        clock, xfers[xi].ready_ns
                                    ),
                                );
                            }
                        }
                    }
                }
                OpKind::Recv(i) => {
                    let r = &sched.recvs[i];
                    let arrival = xfer_by_seq
                        .get(&r.seq)
                        .map(|&xi| xfers[xi].done_ns)
                        .unwrap_or(r.arrival_ns);
                    if arrival != r.arrival_ns {
                        diverge(
                            &mut report,
                            format!(
                                "seq {}: recomputed arrival {} ns != arrival {} ns \
                                 recorded at rank {}'s receive",
                                r.seq, arrival, r.arrival_ns, r.rank
                            ),
                        );
                    }
                    clock = op.in_ns.max(arrival) + alpha_recv;
                    prev_send_in = None;
                }
            }
            op.out_ns = clock;
        }
        // Recomputed completion: the replayed chain plus the recorded
        // trailing local work. A kernel finish before the recomputed
        // chain means the model overestimated somewhere.
        let recorded = finishes.get(&rank).copied();
        let finish = match recorded {
            Some(f) if f < clock => {
                diverge(
                    &mut report,
                    format!(
                        "rank {rank}: kernel finished at {f} ns, before the \
                         recomputed chain end {clock} ns"
                    ),
                );
                clock
            }
            Some(f) => f,
            None => clock,
        };
        report.rank_finish_ns[rank] = finish;
    }
    report.makespan_ns = report.rank_finish_ns.iter().copied().max().unwrap_or(0);
    if let Some(recorded) = sched.makespan_ns {
        if recorded != report.makespan_ns {
            let msg = format!(
                "recomputed makespan {} ns != kernel makespan {} ns",
                report.makespan_ns, recorded
            );
            diverge(&mut report, msg);
        }
    }

    // Every delivered send must carry a transfer record.
    if !sched.xfers.is_empty() {
        let lost = sched.lost_seqs();
        for s in &sched.sends {
            if !lost.contains(&s.seq) && !xfer_by_seq.contains_key(&s.seq) {
                diverge(
                    &mut report,
                    format!(
                        "seq {}: delivered send {} -> {} has no transfer record",
                        s.seq, s.src, s.dst
                    ),
                );
            }
        }
    }

    // ---- Slack per delivered transfer. ----
    for r in &sched.recvs {
        report
            .slack_ns
            .push((r.seq, r.start_ns.saturating_sub(r.arrival_ns)));
    }

    // ---- Critical path. ----
    report.crit = critical_path(
        sched,
        &rank_ops,
        &xfers,
        &xfer_by_seq,
        &report.rank_finish_ns,
        alpha_send,
        alpha_recv,
    );

    report
}

/// Backward walk from the latest-finishing rank, attributing makespan
/// time to ranks (α overheads and opaque local work), links (transfer
/// spans and link waits), and port waits. The decomposition is a
/// provenance heuristic for the perf lints — adjacent resource windows
/// may overlap by a few τ — but every jump moves strictly earlier, so
/// the walk terminates.
fn critical_path(
    sched: &Schedule,
    rank_ops: &[Vec<RankOp>],
    xfers: &[XferCost],
    xfer_by_seq: &HashMap<u64, usize>,
    rank_finish: &[Time],
    alpha_send: Time,
    alpha_recv: Time,
) -> CriticalPath {
    let mut crit = CriticalPath {
        by_rank_ns: vec![0; sched.p],
        ..CriticalPath::default()
    };
    let Some((last_rank, &finish)) = rank_finish
        .iter()
        .enumerate()
        .max_by_key(|&(r, f)| (*f, std::cmp::Reverse(r)))
    else {
        return crit;
    };
    if finish == 0 {
        return crit;
    }
    // Index: send op position per seq (to jump from a transfer back into
    // its sender's chain).
    let mut send_op: HashMap<u64, (usize, usize)> = HashMap::new();
    for (rank, ops) in rank_ops.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            if let OpKind::Send(si) = op.kind {
                send_op.insert(sched.sends[si].seq, (rank, i));
            }
        }
    }

    enum Cursor {
        /// Walking rank `0`'s chain at op index `1` (whose recomputed
        /// output clock has already been consumed).
        Rank(usize, usize),
        Xfer(usize),
    }

    // Trailing local work after the last op.
    let mut cursor = match rank_ops[last_rank].len() {
        0 => {
            crit.by_rank_ns[last_rank] += finish;
            return crit;
        }
        len => {
            crit.by_rank_ns[last_rank] += finish - rank_ops[last_rank][len - 1].out_ns;
            Cursor::Rank(last_rank, len - 1)
        }
    };
    let mut visited_ops: HashSet<(usize, usize)> = HashSet::new();
    let mut visited_xfers: HashSet<usize> = HashSet::new();
    let budget = 4 * (sched.sends.len() + sched.recvs.len() + xfers.len()) + 16;

    for _ in 0..budget {
        match cursor {
            Cursor::Rank(rank, i) => {
                if !visited_ops.insert((rank, i)) {
                    break;
                }
                let op = rank_ops[rank][i];
                let (next_net, op_floor) = match op.kind {
                    OpKind::Send(_) => {
                        crit.by_rank_ns[rank] += alpha_send;
                        (None, op.in_ns)
                    }
                    OpKind::Recv(ri) => {
                        crit.by_rank_ns[rank] += alpha_recv;
                        let r = &sched.recvs[ri];
                        let arrival = xfer_by_seq
                            .get(&r.seq)
                            .map(|&xi| xfers[xi].done_ns)
                            .unwrap_or(r.arrival_ns);
                        if arrival > op.in_ns {
                            (xfer_by_seq.get(&r.seq).copied(), op.in_ns)
                        } else {
                            (None, op.in_ns)
                        }
                    }
                };
                if let Some(xi) = next_net {
                    cursor = Cursor::Xfer(xi);
                    continue;
                }
                // Local: charge the opaque gap back to the previous op.
                // Batched multi-port sends share one α_send window, so
                // the previous op's out clock can sit *past* this op's
                // floor: the gap term is then *negative* (an overlap
                // compensating charges already made along the chain).
                // The telescoped sum stays non-negative, so accumulate
                // with wrapping arithmetic — the intermediate dip is
                // fine modulo 2^64 and the final total is exact.
                if i == 0 {
                    crit.by_rank_ns[rank] += op_floor;
                    break;
                }
                crit.by_rank_ns[rank] = crit.by_rank_ns[rank]
                    .wrapping_add(op_floor.wrapping_sub(rank_ops[rank][i - 1].out_ns));
                cursor = Cursor::Rank(rank, i - 1);
            }
            Cursor::Xfer(xi) => {
                if !visited_xfers.insert(xi) {
                    break;
                }
                let x = &xfers[xi];
                if x.local {
                    // A memcpy delivery: charge it to the sender.
                    crit.by_rank_ns[x.src] += x.done_ns - x.ready_ns;
                    match send_op.get(&x.seq) {
                        Some(&(rank, i)) => cursor = Cursor::Rank(rank, i),
                        None => break,
                    }
                    continue;
                }
                crit.xfers += 1;
                crit.stall_ns += x.stall_ns;
                crit.free_ns += x.free_ns;
                let span = x.done_ns - x.start_ns;
                for link in &x.route {
                    *crit.by_link_ns.entry(*link).or_insert(0) += span;
                }
                let wait = x.start_ns.saturating_sub(x.ready_ns);
                match x.bound {
                    Bound::Ready => match send_op.get(&x.seq) {
                        Some(&(rank, i)) => cursor = Cursor::Rank(rank, i),
                        None => break,
                    },
                    Bound::OutPort(prev) | Bound::InPort(prev) => {
                        crit.port_wait_ns += wait;
                        match prev.and_then(|s| xfer_by_seq.get(&s)).copied() {
                            Some(pi) => cursor = Cursor::Xfer(pi),
                            None => break,
                        }
                    }
                    Bound::OnLink(link, prev) => {
                        *crit.by_link_ns.entry(link).or_insert(0) += wait;
                        match prev.and_then(|s| xfer_by_seq.get(&s)).copied() {
                            Some(pi) => cursor = Cursor::Xfer(pi),
                            None => break,
                        }
                    }
                }
            }
        }
    }
    crit
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::ExecMode;
    use stp_core::msgset::payload_for;
    use stp_core::runner::{record_sources_exec, AlgoKind};

    /// The cost engine must reproduce the kernel's schedule exactly on a
    /// real recorded run — the conformance keystone in miniature.
    #[test]
    fn replay_is_exact_on_a_recorded_run() {
        let machine = Machine::paragon(4, 4);
        let sources = vec![0, 5, 10, 15];
        let payload_of = |src: usize| payload_for(src, 64);
        for kind in [AlgoKind::BrLin, AlgoKind::TwoStep, AlgoKind::BrXySource] {
            let alg = kind.build();
            let run = record_sources_exec(
                &machine,
                kind.default_lib(),
                &sources,
                &payload_of,
                alg.as_ref(),
                ExecMode::Cooperative,
            );
            let sched = Schedule::from_recorded(&run, machine.p());
            let report = replay(&sched, &machine, kind.default_lib(), false);
            assert!(
                report.conformant(),
                "{}: {:?}",
                kind.name(),
                report.divergences
            );
            let outcome = run.outcome.expect("completed run");
            assert_eq!(report.makespan_ns, outcome.makespan_ns);
            assert_eq!(report.rank_finish_ns, outcome.finish_ns);
        }
    }

    /// Conformance must hold on BOTH executors: the threaded kernel
    /// resolves contention through real OS threads, the cooperative one
    /// through a deterministic event loop, yet both must land on the
    /// virtual schedule the static engine recomputes.
    #[test]
    fn conformance_holds_on_both_executors() {
        let machine = Machine::paragon(4, 4);
        let sources = vec![0, 5, 10, 15];
        let payload_of = |src: usize| payload_for(src, 256);
        for exec in [ExecMode::Cooperative, ExecMode::Threaded] {
            for &kind in AlgoKind::all() {
                let alg = kind.build();
                let run = record_sources_exec(
                    &machine,
                    kind.default_lib(),
                    &sources,
                    &payload_of,
                    alg.as_ref(),
                    exec,
                );
                let sched = Schedule::from_recorded(&run, machine.p());
                let report = replay(&sched, &machine, kind.default_lib(), false);
                assert!(
                    report.conformant(),
                    "{} on {exec:?}: {:?}",
                    kind.name(),
                    report.divergences
                );
                let outcome = run.outcome.expect("completed run");
                assert_eq!(
                    report.makespan_ns,
                    outcome.makespan_ns,
                    "{} on {exec:?}: makespan mismatch",
                    kind.name()
                );
            }
        }
    }

    /// Multi-port conformance: on a five-port machine the k-ported
    /// algorithms issue real `send_batch` groups whose members take
    /// distinct injection slots in the same tick, and the replay must
    /// still land on every recorded instant exactly — on both
    /// executors, with identical makespans. This is the zero-tolerance
    /// gate for the batched-transmit clock rule (one α_send per batch).
    #[test]
    fn conformance_holds_with_batched_multiport_sends() {
        let machine = crate::fixtures::machines::five_port_machine();
        let sources = vec![0, 3, 6, 9, 12, 15];
        let payload_of = |src: usize| payload_for(src, 256);
        for exec in [ExecMode::Cooperative, ExecMode::Threaded] {
            for kind in [
                AlgoKind::KPortLin,
                AlgoKind::KPortScatter,
                AlgoKind::KPortAlltoall,
                AlgoKind::BrLin,
            ] {
                let alg = kind.build();
                let run = record_sources_exec(
                    &machine,
                    kind.default_lib(),
                    &sources,
                    &payload_of,
                    alg.as_ref(),
                    exec,
                );
                let sched = Schedule::from_recorded(&run, machine.p());
                let report = replay(&sched, &machine, kind.default_lib(), false);
                assert!(
                    report.conformant(),
                    "{} on {exec:?}: {:?}",
                    kind.name(),
                    report.divergences
                );
                let outcome = run.outcome.expect("completed run");
                assert_eq!(
                    report.makespan_ns,
                    outcome.makespan_ns,
                    "{} on {exec:?}: makespan mismatch",
                    kind.name()
                );
            }
        }
    }

    /// The critical-path decomposition must account for (almost) the
    /// whole makespan and attribute something to both ranks and links.
    #[test]
    fn critical_path_decomposes_the_makespan() {
        let machine = Machine::paragon(4, 4);
        let sources = vec![0, 5, 10, 15];
        let payload_of = |src: usize| payload_for(src, 1024);
        let alg = AlgoKind::BrLin.build();
        let run = record_sources_exec(
            &machine,
            mpp_model::LibraryKind::Nx,
            &sources,
            &payload_of,
            alg.as_ref(),
            ExecMode::Cooperative,
        );
        let sched = Schedule::from_recorded(&run, machine.p());
        let report = replay(&sched, &machine, mpp_model::LibraryKind::Nx, false);
        assert!(report.conformant(), "{:?}", report.divergences);
        let rank_total: Time = report.crit.by_rank_ns.iter().sum();
        let link_total: Time = report.crit.by_link_ns.values().sum();
        assert!(rank_total > 0, "no rank time on the critical path");
        assert!(link_total > 0, "no link time on the critical path");
        assert!(
            rank_total + link_total + report.crit.port_wait_ns >= report.makespan_ns / 2,
            "decomposition covers too little: ranks {rank_total} + links {link_total} \
             + ports {} vs makespan {}",
            report.crit.port_wait_ns,
            report.makespan_ns
        );
    }

    /// A deliberately perturbed recording must be caught.
    #[test]
    fn perturbed_recording_diverges() {
        let machine = Machine::paragon(4, 4);
        let sources = vec![0, 5, 10, 15];
        let payload_of = |src: usize| payload_for(src, 64);
        let alg = AlgoKind::BrLin.build();
        let run = record_sources_exec(
            &machine,
            mpp_model::LibraryKind::Nx,
            &sources,
            &payload_of,
            alg.as_ref(),
            ExecMode::Cooperative,
        );
        let mut sched = Schedule::from_recorded(&run, machine.p());
        let x = sched.xfers.last_mut().expect("transfers recorded");
        x.done_ns += 1;
        let report = replay(&sched, &machine, mpp_model::LibraryKind::Nx, false);
        assert!(!report.conformant(), "a +1 ns skew must be detected");
    }
}

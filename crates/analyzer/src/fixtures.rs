//! Seeded-bug fixtures: deliberately broken s-to-p algorithms.
//!
//! Each fixture plants one classic schedule bug; the CI lint gate runs
//! the analyzer over all of them and fails unless every bug is caught
//! with the right [`FindingKind`]. They double as
//! end-to-end tests that the recorder survives aborted runs.
//!
//! Fixtures marked [`Fixture::perf`] plant *performance* bugs: the
//! schedule is correct (full delivery, no errors) but wastes the
//! machine, and the perf lints must flag it. Those verdicts use
//! contains-semantics — the expected kind must be detected and nothing
//! error-severity may appear — because one bad schedule shape can
//! legitimately trip several perf smells at once.

use mpp_model::Machine;
use mpp_runtime::{CommFuture, Communicator};
use stp_core::algorithms::{StpAlgorithm, StpCtx};
use stp_core::msgset::MessageSet;

use crate::FindingKind;

/// Tag range owned by the fixtures (disjoint from every real algorithm).
const FIX_RING: u32 = 9_000;
const FIX_CHUNKS: u32 = 9_100;
const FIX_GATHER: u32 = 9_200;
const FIX_BCAST: u32 = 9_300;
const FIX_STAR: u32 = 9_400;

/// One registered fixture.
pub struct Fixture {
    /// Stable fixture name.
    pub name: &'static str,
    /// The finding kind the analyzer must produce.
    pub expected: FindingKind,
    /// Build the broken algorithm.
    pub build: fn() -> Box<dyn StpAlgorithm>,
    /// The machine the fixture runs on.
    pub machine: fn() -> Machine,
    /// Source count handed to the `Equal` distribution.
    pub s: usize,
    /// A performance fixture: run the perf lints, use
    /// contains-semantics for the verdict.
    pub perf: bool,
}

/// Shared fixture machines. The seeded-bug fixtures run on these, and
/// the conformance / lint / CI suites reuse them so "the machine the
/// idle-ports fixture wastes" and "the machine `KPort_Lin` must lint
/// clean on" are provably the same shape.
pub mod machines {
    use mpp_model::{Machine, MachineParams, MeshShape, Placement, Topology};

    /// The default 4×4 single-port Paragon the functional fixtures use.
    pub fn standard_machine() -> Machine {
        Machine::paragon(4, 4)
    }

    /// The 4×4 Paragon shape with five independent injection ports per
    /// node — the machine the idle-ports fixture wastes.
    pub fn five_port_machine() -> Machine {
        Machine::new(
            "Paragon 4x4 (5-port)",
            Topology::Mesh2D { rows: 4, cols: 4 },
            MachineParams::paragon_nx().with_ports(5),
            Placement::Identity,
            MeshShape::new(4, 4),
        )
    }
}

use machines::{five_port_machine, standard_machine};

/// All seeded-bug fixtures.
pub fn all() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "off_by_one_partner",
            expected: FindingKind::Deadlock,
            build: || Box::new(OffByOnePartner),
            machine: standard_machine,
            s: 4,
            perf: false,
        },
        Fixture {
            name: "duplicate_tag",
            expected: FindingKind::MatchAmbiguity,
            build: || Box::new(DuplicateTag),
            machine: standard_machine,
            s: 4,
            perf: false,
        },
        Fixture {
            name: "dropped_combine",
            expected: FindingKind::PayloadLeak,
            build: || Box::new(DroppedCombine),
            machine: standard_machine,
            s: 4,
            perf: false,
        },
        Fixture {
            name: "serialized_linear_tree",
            expected: FindingKind::SerializationHotspot,
            build: || Box::new(SerialStar),
            machine: standard_machine,
            s: 1,
            perf: true,
        },
        Fixture {
            name: "single_port_broadcast",
            expected: FindingKind::IdlePorts,
            build: || Box::new(SerialStar),
            machine: five_port_machine,
            s: 1,
            perf: true,
        },
    ]
}

/// Ring forwarding with an off-by-one receive partner: every rank sends
/// to `rank + 1` but waits on `rank + 2`, so every mailbox holds a
/// message its owner will never ask for — a full-machine deadlock.
struct OffByOnePartner;

impl StpAlgorithm for OffByOnePartner {
    fn name(&self) -> &'static str {
        "fixture:off_by_one_partner"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let (me, p) = (comm.rank(), comm.size());
            comm.send((me + 1) % p, FIX_RING, &[me as u8]);
            // BUG: the matching receive partner is (me + p - 1) % p.
            let env = comm.recv(Some((me + 2) % p), Some(FIX_RING)).await;
            let _ = env;
            MessageSet::new()
        })
    }
}

/// The first source star-broadcasts its message in two chunks that share
/// one `(src, tag)` pair. Both chunks are in flight together, so which
/// bytes each receive consumes is decided by queue order alone — the
/// match-ambiguity hazard (here benign only because the kernel delivers
/// in arrival order; any reordering of equal-time events would corrupt
/// the reassembly).
struct DuplicateTag;

impl StpAlgorithm for DuplicateTag {
    fn name(&self) -> &'static str {
        "fixture:duplicate_tag"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let me = comm.rank();
            let hub = ctx.sources[0];
            if me == hub {
                let data = ctx.payload.expect("hub is a source");
                let mid = data.len() / 2;
                for dst in 0..comm.size() {
                    if dst != hub {
                        // BUG: both halves use the same tag.
                        comm.send(dst, FIX_CHUNKS, &data[..mid]);
                        comm.send(dst, FIX_CHUNKS, &data[mid..]);
                    }
                }
                MessageSet::single(hub, data)
            } else {
                let a = comm.recv(Some(hub), Some(FIX_CHUNKS)).await;
                let b = comm.recv(Some(hub), Some(FIX_CHUNKS)).await;
                let mut data = a.data.to_vec();
                data.extend_from_slice(&b.data.to_vec());
                MessageSet::single(hub, &data)
            }
        })
    }
}

/// A *correct* but maximally serial broadcast: the single source sends
/// its message to every other rank one after another, so the whole
/// machine waits on one rank's α_send chain and every payload re-crosses
/// the links nearest the hub. On a single-port machine this is the
/// serialization-hotspot fixture; on a multi-port machine the same
/// schedule additionally wastes every port but one (idle-ports).
struct SerialStar;

impl StpAlgorithm for SerialStar {
    fn name(&self) -> &'static str {
        "fixture:serial_star"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let me = comm.rank();
            let hub = ctx.sources[0];
            if me == hub {
                let data = ctx.payload.expect("hub is a source");
                // PERF BUG: p−1 sequential sends from one rank; a
                // broadcast tree would finish in ⌈log₂ p⌉ rounds.
                for dst in 0..comm.size() {
                    if dst != hub {
                        comm.send(dst, FIX_STAR, data);
                    }
                }
                MessageSet::single(hub, data)
            } else {
                let env = comm.recv(Some(hub), Some(FIX_STAR)).await;
                MessageSet::single(hub, &env.data.to_vec())
            }
        })
    }
}

/// Gather-then-broadcast that silently drops the highest source while
/// combining at the hub: the schedule completes, every send is matched,
/// but the dropped source's bytes never reach the other ranks.
struct DroppedCombine;

impl StpAlgorithm for DroppedCombine {
    fn name(&self) -> &'static str {
        "fixture:dropped_combine"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let me = comm.rank();
            let hub = ctx.sources[0];
            if me == hub {
                let mut set = MessageSet::single(hub, ctx.payload.expect("hub is a source"));
                for &src in ctx.sources.iter().filter(|&&s| s != hub) {
                    let env = comm.recv(Some(src), Some(FIX_GATHER)).await;
                    set.merge(MessageSet::from_bytes(&env.data.to_vec()).expect("wire set"));
                }
                // BUG: the last source is dropped from the combined set.
                let mut kept = MessageSet::new();
                let dropped = *ctx.sources.last().unwrap();
                for (src, payload) in set.clone().into_entries() {
                    if src as usize != dropped {
                        kept.insert_payload(src as usize, payload);
                    }
                }
                let wire = kept.to_bytes();
                for dst in 0..comm.size() {
                    if dst != hub {
                        comm.send(dst, FIX_BCAST, &wire);
                    }
                }
                set
            } else {
                if let Some(payload) = ctx.payload {
                    comm.send(hub, FIX_GATHER, &MessageSet::single(me, payload).to_bytes());
                }
                let env = comm.recv(Some(hub), Some(FIX_BCAST)).await;
                let mut set = MessageSet::from_bytes(&env.data.to_vec()).expect("wire set");
                if let Some(payload) = ctx.payload {
                    set.insert(me, payload);
                }
                set
            }
        })
    }
}

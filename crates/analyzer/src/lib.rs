//! Static analysis of recorded communication schedules.
//!
//! The simulator's `ScheduleRecorder` mode (`SimConfig::recorder`,
//! surfaced as [`stp_core::runner::record_sources`]) captures every
//! `(step, src, dst, tag, payload)` send and every receive match of a
//! run as a symbolic schedule — including partial schedules of runs that
//! deadlock. This crate turns that event log into a communication graph
//! and checks it:
//!
//! 1. **Deadlock** — the run aborted with every live rank blocked; the
//!    checker reconstructs the wait-for graph from the `Blocked` events
//!    and reports the cycle (or the unsatisfiable waits) behind it.
//! 2. **Unmatched sends** — messages that were still undelivered when
//!    their destination finished: a receive the algorithm forgot.
//! 3. **Match ambiguity** — a receive that matched while a *second*
//!    in-flight message with the same `(src, tag)` sat in the same
//!    mailbox: delivery order alone decided which message was consumed,
//!    so the schedule is racy under any reordering of equal-time events.
//! 4. **Payload leaks** — s-to-p completeness: attributing every
//!    delivered byte back to its originating source (directly or through
//!    [`MessageSet`](stp_core::msgset::MessageSet) combining), every
//!    rank must end up holding all `s` source messages.
//!
//! Per-link message counts over the machine's dimension-ordered routes
//! (`mpp-model`) are computed alongside, with an optional overload
//! threshold.
//!
//! The same invariants run dynamically when `SimConfig::strict` is set —
//! debug builds of the experiment runner enable that automatically — and
//! the `stp lint` subcommand sweeps the full algorithm × distribution ×
//! mesh matrix through the static checker (see [`lint`]).

pub mod baseline;
pub mod checks;
pub mod cost;
pub mod fixtures;
pub mod lint;
pub mod perf_checks;
pub mod report;
pub mod sarif;
pub mod schedule;

pub use baseline::{finding_key, Baseline};
pub use checks::{
    analyze, registry, Analysis, AnalyzeOpts, Check, CheckCtx, CheckOutput, Finding, FindingKind,
    Severity,
};
pub use cost::{replay, CostReport, CriticalPath, LinkTimeline, PortUse};
pub use lint::{
    hush_expected_panics, lint_fixtures, lint_matrix, lint_matrix_supervised, lint_point,
    lint_point_key, lint_sig, FixtureVerdict, LintConfig, LintEntry, PointFailure, SupervisedLint,
};
pub use report::{
    entries_to_json, entry_from_json, entry_to_json, fixtures_to_json, lint_report_json,
    supervised_report_json,
};
pub use sarif::sarif_report;
pub use schedule::{Attributed, Attribution, Schedule};

//! The lint sweep: record + analyze every algorithm over the full
//! distribution × mesh matrix, plus the seeded-bug fixture gate.

use std::sync::Once;

use mpp_model::{FaultPlan, Machine};
use mpp_runtime::ExecMode;
use stp_core::algorithms::StpAlgorithm;
use stp_core::checkpoint::CheckpointFile;
use stp_core::distribution::SourceDist;
use stp_core::msgset::payload_for;
use stp_core::runner::{record_sources, try_record_sources, AlgoKind, RunControl, SweepRunner};
use stp_core::supervise::{chaos_algorithms, PointStatus, SuperviseOpts};

use crate::checks::{analyze, AnalyzeOpts, Finding, Severity};
use crate::fixtures;
use crate::report::{entry_from_json, entry_to_json};
use crate::schedule::Schedule;
use crate::FindingKind;

/// Configuration of the lint matrix.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Mesh shapes to sweep, `(rows, cols)`.
    pub shapes: Vec<(usize, usize)>,
    /// Message length at each source (bytes).
    pub msg_len: usize,
    /// Opt-in link-overload bound (see [`analyze`]).
    pub max_link_load: Option<u64>,
    /// Optional fault plan active while recording every grid point. The
    /// delivery-completeness check then verifies the algorithms survive
    /// the plan: any message lost for good surfaces as a `lost_message`
    /// finding (plus the payload leaks it causes).
    pub faults: Option<FaultPlan>,
    /// Chaos injection: append the deliberately broken
    /// [`chaos_algorithms`] (a panicking and a deadlocking fixture) to
    /// the grid. Only meaningful under [`lint_matrix_supervised`], which
    /// must finish every healthy point and quarantine these.
    pub chaos: bool,
    /// Run the performance lints on every grid point (see
    /// [`AnalyzeOpts::perf`]). Off by default: perf smells on the
    /// paper's weaker baselines are expected and belong in a committed
    /// baseline file, not in every sweep.
    pub perf: bool,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            // The acceptance matrix: two paper shapes, one tall, one with
            // a prime dimension (exercises the non-power-of-two paths).
            shapes: vec![(4, 4), (8, 4), (16, 16), (8, 3)],
            msg_len: 64,
            max_link_load: None,
            faults: None,
            chaos: false,
            perf: false,
        }
    }
}

impl LintConfig {
    /// A reduced matrix for unit tests and `stp lint --quick`.
    pub fn quick() -> Self {
        LintConfig {
            shapes: vec![(4, 4), (8, 3)],
            ..LintConfig::default()
        }
    }
}

/// One analyzed grid point of the lint matrix.
#[derive(Debug)]
pub struct LintEntry {
    /// Algorithm display name.
    pub algo: String,
    /// Distribution short name.
    pub dist: String,
    /// Mesh rows.
    pub rows: usize,
    /// Mesh cols.
    pub cols: usize,
    /// Number of sources.
    pub s: usize,
    /// Total sends in the schedule.
    pub sends: usize,
    /// Total receive matches.
    pub recvs: usize,
    /// Heaviest per-link message count.
    pub max_link_load: u64,
    /// Whether the run deadlocked.
    pub deadlocked: bool,
    /// Whether attribution hit an opaque payload (leak check skipped).
    pub opaque_payloads: bool,
    /// Transmission attempts the fault plan dropped (0 on a clean
    /// network; recovered retries count here, lost messages surface as
    /// findings too).
    pub dropped_attempts: usize,
    /// All findings.
    pub findings: Vec<Finding>,
}

/// The eight named source distributions of the paper.
fn paper_dists() -> Vec<SourceDist> {
    vec![
        SourceDist::Row,
        SourceDist::Column,
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::DiagLeft,
        SourceDist::Band,
        SourceDist::Cross,
        SourceDist::SquareBlock,
    ]
}

/// Source counts checked per shape: a sparse quarter-machine case and
/// the all-sources case.
fn source_counts(p: usize) -> Vec<usize> {
    let sparse = (p / 4).max(2).min(p);
    if sparse == p {
        vec![p]
    } else {
        vec![sparse, p]
    }
}

/// Record and analyze one named algorithm instance on one grid point.
/// The shared engine behind [`lint_point`], [`lint_matrix`] and
/// [`lint_matrix_supervised`] — and, through the serve daemon's lint
/// hook, the unit of work a cached plan report corresponds to.
#[allow(clippy::too_many_arguments)]
fn lint_alg_point(
    machine: &Machine,
    dist: &SourceDist,
    s: usize,
    msg_len: usize,
    alg: &dyn StpAlgorithm,
    lib: mpp_model::LibraryKind,
    algo_name: &str,
    max_link_load: Option<u64>,
    perf: bool,
    control: &RunControl,
) -> Result<LintEntry, mpp_runtime::SimError> {
    let sources = dist.place(machine.shape, s);
    let payload_of = move |src: usize| payload_for(src, msg_len);
    let run = try_record_sources(machine, lib, &sources, &payload_of, alg, control)?;
    let sched = Schedule::from_recorded(&run, machine.p());
    let opts = AnalyzeOpts {
        max_link_load,
        lib,
        faulted: control.faults.is_some(),
        perf,
        ..AnalyzeOpts::default()
    };
    let analysis = analyze(&sched, machine, &sources, &payload_of, &opts);
    Ok(LintEntry {
        algo: algo_name.to_string(),
        dist: dist.name().to_string(),
        rows: machine.shape.rows,
        cols: machine.shape.cols,
        s,
        sends: analysis.sends,
        recvs: analysis.recvs,
        max_link_load: analysis.max_link_load,
        deadlocked: sched.deadlocked,
        opaque_payloads: analysis.opaque_payloads,
        dropped_attempts: sched.drops.len(),
        findings: analysis.findings,
    })
}

/// Record and analyze a single grid point — the cacheable unit of lint
/// work. The fault plan, executor, budget and cancel token all travel
/// in `control`; a deadlocking schedule is still an `Ok` entry (with
/// [`LintEntry::deadlocked`] and a `deadlock` finding), while rank
/// panics and watchdog trips come back as `Err` for the caller's
/// supervision layer. Pair with [`lint_point_key`] to memoize the
/// report under a content address.
#[allow(clippy::too_many_arguments)]
pub fn lint_point(
    machine: &Machine,
    dist: &SourceDist,
    s: usize,
    msg_len: usize,
    kind: AlgoKind,
    max_link_load: Option<u64>,
    perf: bool,
    control: &RunControl,
) -> Result<LintEntry, mpp_runtime::SimError> {
    let alg = kind.build();
    lint_alg_point(
        machine,
        dist,
        s,
        msg_len,
        alg.as_ref(),
        kind.default_lib(),
        kind.name(),
        max_link_load,
        perf,
        control,
    )
}

/// Content key of one [`lint_point`] report: every input that can
/// change the analysis is in the string, so equal keys imply
/// byte-identical reports (the simulation and the checks are
/// deterministic). The serve daemon folds this into its plan cache key.
#[allow(clippy::too_many_arguments)]
pub fn lint_point_key(
    machine: &Machine,
    dist: &SourceDist,
    s: usize,
    msg_len: usize,
    kind: AlgoKind,
    max_link_load: Option<u64>,
    perf: bool,
    control: &RunControl,
) -> String {
    format!(
        "lint-point:v1:{}/{}/{}x{}/s{}/L{}:exec={:?}:faults={:?}:mll={:?}:perf={}",
        kind.name(),
        dist.name(),
        machine.shape.rows,
        machine.shape.cols,
        s,
        msg_len,
        control.exec.map(|e| e.name()),
        control.faults,
        max_link_load,
        perf
    )
}

/// Record and analyze every algorithm × distribution × shape × s grid
/// point. Grid points are independent simulations and run concurrently
/// on a [`SweepRunner`]; results come back in deterministic input order.
pub fn lint_matrix(config: &LintConfig) -> Vec<LintEntry> {
    struct Point {
        machine: Machine,
        dist: SourceDist,
        s: usize,
        kind: AlgoKind,
    }
    let mut points = Vec::new();
    for &(rows, cols) in &config.shapes {
        let machine = Machine::paragon(rows, cols);
        for dist in paper_dists() {
            for s in source_counts(machine.p()) {
                for &kind in AlgoKind::all() {
                    points.push(Point {
                        machine: machine.clone(),
                        dist: dist.clone(),
                        s,
                        kind,
                    });
                }
            }
        }
    }
    let msg_len = config.msg_len;
    let max_link_load = config.max_link_load;
    let faults = config.faults.clone();
    let perf = config.perf;
    SweepRunner::new().map(
        points,
        |pt| pt.machine.p(),
        move |pt| {
            let control = RunControl {
                faults: faults.clone(),
                ..RunControl::default()
            };
            lint_point(
                &pt.machine,
                &pt.dist,
                pt.s,
                msg_len,
                pt.kind,
                max_link_load,
                perf,
                &control,
            )
            .unwrap_or_else(|e| panic!("{e}"))
        },
    )
}

// ---------------------------------------------------------------------------
// Supervised lint sweep (checkpoint/resume, chaos containment)
// ---------------------------------------------------------------------------

/// One grid point of the supervised sweep: a real algorithm variant or
/// an injected chaos fixture.
enum PointAlg {
    Kind(AlgoKind),
    Chaos(&'static str, fn() -> Box<dyn StpAlgorithm>),
}

impl PointAlg {
    fn name(&self) -> &str {
        match self {
            PointAlg::Kind(kind) => kind.name(),
            PointAlg::Chaos(name, _) => name,
        }
    }

    fn build(&self) -> Box<dyn StpAlgorithm> {
        match self {
            PointAlg::Kind(kind) => kind.build(),
            PointAlg::Chaos(_, build) => build(),
        }
    }

    fn lib(&self) -> mpp_model::LibraryKind {
        match self {
            PointAlg::Kind(kind) => kind.default_lib(),
            PointAlg::Chaos(..) => mpp_model::LibraryKind::Nx,
        }
    }
}

struct GridPoint {
    machine: Machine,
    dist: SourceDist,
    s: usize,
    alg: PointAlg,
}

impl GridPoint {
    /// Stable point id — the checkpoint key and the failure-report name.
    fn id(&self) -> String {
        format!(
            "{}/{}/{}x{}/s{}",
            self.alg.name(),
            self.dist.name(),
            self.machine.shape.rows,
            self.machine.shape.cols,
            self.s
        )
    }
}

/// The full grid of a lint config, chaos fixtures last.
fn grid_points(config: &LintConfig) -> Vec<GridPoint> {
    let mut points = Vec::new();
    for &(rows, cols) in &config.shapes {
        let machine = Machine::paragon(rows, cols);
        for dist in paper_dists() {
            for s in source_counts(machine.p()) {
                for &kind in AlgoKind::all() {
                    points.push(GridPoint {
                        machine: machine.clone(),
                        dist: dist.clone(),
                        s,
                        alg: PointAlg::Kind(kind),
                    });
                }
            }
        }
    }
    if config.chaos {
        let (rows, cols) = config.shapes.first().copied().unwrap_or((4, 4));
        for (name, build) in chaos_algorithms() {
            points.push(GridPoint {
                machine: Machine::paragon(rows, cols),
                dist: SourceDist::Equal,
                s: 2,
                alg: PointAlg::Chaos(name, build),
            });
        }
    }
    points
}

/// Configuration signature guarding checkpoint reuse: progress recorded
/// under one grid/executor/fault-plan must never resume a different one.
/// Open the [`CheckpointFile`] handed to [`lint_matrix_supervised`] with
/// this signature.
pub fn lint_sig(config: &LintConfig, exec: ExecMode) -> String {
    format!(
        "lint:v2:exec={}:shapes={:?}:len={}:mll={:?}:faults={:?}:chaos={}:perf={}",
        exec.name(),
        config.shapes,
        config.msg_len,
        config.max_link_load,
        config.faults,
        config.chaos,
        config.perf
    )
}

/// A grid point quarantined by the supervised sweep.
#[derive(Debug)]
pub struct PointFailure {
    /// Stable point id (`algo/dist/RxC/sN`).
    pub id: String,
    /// Attempts consumed before quarantine.
    pub attempts: usize,
    /// The final attempt's error text.
    pub error: String,
}

/// Everything a supervised lint sweep produced.
#[derive(Debug)]
pub struct SupervisedLint {
    /// Completed entries (checkpointed + freshly run), in grid order.
    pub entries: Vec<LintEntry>,
    /// Quarantined points, in grid order.
    pub failures: Vec<PointFailure>,
    /// Point ids skipped by cancellation or the sweep deadline.
    pub skipped: Vec<String>,
    /// Points replayed from the checkpoint instead of re-run.
    pub resumed: usize,
    /// Total grid points.
    pub total: usize,
}

impl SupervisedLint {
    /// True when every point completed without findings.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
            && self.skipped.is_empty()
            && self.entries.iter().all(|e| e.findings.is_empty())
    }
}

/// [`lint_matrix`] under full supervision: each grid point runs
/// isolated (a panicking or deadlocking algorithm is quarantined into
/// [`SupervisedLint::failures`] / a `deadlock` finding, never a process
/// abort), a shared token or wall-clock deadline skips the remainder
/// cleanly, and — when `checkpoint` is given — completed points are
/// persisted after each grid point and replayed verbatim on resume, so
/// an interrupted sweep re-runs only unfinished work.
pub fn lint_matrix_supervised(
    config: &LintConfig,
    opts: &SuperviseOpts,
    checkpoint: Option<&CheckpointFile>,
) -> SupervisedLint {
    hush_expected_panics();
    let points = grid_points(config);
    let total = points.len();
    let ids: Vec<String> = points.iter().map(GridPoint::id).collect();

    // Split the grid into checkpointed points (replayed, never re-run)
    // and points that still need a simulation.
    let mut slots: Vec<Option<PointStatus<LintEntry>>> = Vec::with_capacity(total);
    let mut to_run = Vec::new();
    let mut run_ids = Vec::new();
    let mut resumed = 0usize;
    for (point, id) in points.into_iter().zip(&ids) {
        let cached =
            checkpoint
                .and_then(|cp| cp.get(id))
                .and_then(|text| match entry_from_json(&text) {
                    Ok(entry) => Some(entry),
                    Err(e) => {
                        eprintln!("warning: re-running {id}: bad checkpoint entry ({e})");
                        None
                    }
                });
        match cached {
            Some(entry) => {
                resumed += 1;
                slots.push(Some(PointStatus::Done(entry)));
            }
            None => {
                slots.push(None);
                run_ids.push(id.clone());
                to_run.push(point);
            }
        }
    }

    let msg_len = config.msg_len;
    let max_link_load = config.max_link_load;
    let faults = config.faults.clone();
    let perf = config.perf;
    let runner = SweepRunner::new();
    let exec = runner.exec();
    let run_ids = &run_ids;
    let statuses = runner.map_supervised(
        to_run,
        |pt| match exec {
            ExecMode::Cooperative => 1,
            ExecMode::Threaded => pt.machine.p(),
        },
        |pt| {
            let alg = pt.alg.build();
            let control = RunControl {
                faults: faults.clone(),
                budget: opts.budget.clone(),
                cancel: Some(opts.cancel.clone()),
                exec: None,
            };
            lint_alg_point(
                &pt.machine,
                &pt.dist,
                pt.s,
                msg_len,
                alg.as_ref(),
                pt.alg.lib(),
                pt.alg.name(),
                max_link_load,
                perf,
                &control,
            )
        },
        opts,
        |index, status| {
            if let (Some(cp), PointStatus::Done(entry)) = (checkpoint, status) {
                cp.record(&run_ids[index], &entry_to_json(entry));
            }
        },
    );

    // Splice fresh statuses back into grid order.
    let mut statuses = statuses.into_iter();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            *slot = Some(statuses.next().expect("one status per un-cached point"));
        }
    }

    let mut out = SupervisedLint {
        entries: Vec::new(),
        failures: Vec::new(),
        skipped: Vec::new(),
        resumed,
        total,
    };
    for (slot, id) in slots.into_iter().zip(ids) {
        match slot.expect("every slot filled") {
            PointStatus::Done(entry) => out.entries.push(entry),
            PointStatus::Failed { attempts, error } => out.failures.push(PointFailure {
                id,
                attempts,
                error,
            }),
            PointStatus::Skipped => out.skipped.push(id),
        }
    }
    out
}

/// Verdict for one seeded-bug fixture.
#[derive(Debug)]
pub struct FixtureVerdict {
    /// Fixture name.
    pub name: &'static str,
    /// The finding kind the fixture plants.
    pub expected: FindingKind,
    /// Distinct finding kinds the analyzer reported.
    pub detected: Vec<FindingKind>,
    /// True iff exactly the expected kind was detected.
    pub pass: bool,
}

/// Run the analyzer over every seeded-bug fixture (each on its own
/// machine, with `Equal(s)` sources) and check each bug is caught with
/// the right kind. Correctness fixtures must produce *exactly* the
/// expected kind; perf fixtures must contain it with nothing
/// error-severity (one bad schedule shape can trip several perf smells).
pub fn lint_fixtures() -> Vec<FixtureVerdict> {
    hush_expected_panics();
    let payload_of = |src: usize| payload_for(src, 64);
    fixtures::all()
        .into_iter()
        .map(|fx| {
            let machine = (fx.machine)();
            let sources = SourceDist::Equal.place(machine.shape, fx.s);
            let alg = (fx.build)();
            let run = record_sources(
                &machine,
                mpp_model::LibraryKind::Nx,
                &sources,
                &payload_of,
                alg.as_ref(),
            );
            let sched = Schedule::from_recorded(&run, machine.p());
            let opts = AnalyzeOpts {
                perf: fx.perf,
                ..AnalyzeOpts::default()
            };
            let analysis = analyze(&sched, &machine, &sources, &payload_of, &opts);
            let mut detected: Vec<FindingKind> = analysis.findings.iter().map(|f| f.kind).collect();
            detected.sort();
            detected.dedup();
            let pass = if fx.perf {
                detected.contains(&fx.expected)
                    && detected.iter().all(|k| k.severity() != Severity::Error)
            } else {
                detected == [fx.expected]
            };
            FixtureVerdict {
                name: fx.name,
                expected: fx.expected,
                detected,
                pass,
            }
        })
        .collect()
}

/// Install (once, process-wide) a panic hook that silences the panics
/// the analyzer *expects* while recording broken schedules — the
/// kernel's deadlock/strict aborts and the chaos fixtures' deliberate
/// rank panic. A p-rank deadlock otherwise prints a backtrace header
/// per fixture. All other panics keep the default hook's output.
pub fn hush_expected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            let expected = msg.contains("simulation deadlock on")
                || msg.contains("ambiguous receive at rank")
                || msg.contains("undelivered message(s)")
                || msg.contains("deliberate chaos panic");
            if !expected {
                default_hook(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_clean_on_real_algorithms() {
        let entries = lint_matrix(&LintConfig::quick());
        // 2 shapes × 8 dists × 2 source counts × all algorithms.
        assert_eq!(entries.len(), 2 * 8 * 2 * AlgoKind::all().len());
        for e in &entries {
            assert!(
                e.findings.is_empty(),
                "{} / {} on {}x{} s={}: {:?}",
                e.algo,
                e.dist,
                e.rows,
                e.cols,
                e.s,
                e.findings
            );
            assert!(!e.deadlocked);
            assert!(
                !e.opaque_payloads,
                "{} / {} on {}x{} s={}: attribution fell back to opaque",
                e.algo, e.dist, e.rows, e.cols, e.s
            );
            assert!(e.sends > 0 && e.recvs > 0);
        }
    }

    #[test]
    fn faulted_matrix_survives_with_retries() {
        // One small shape under a transient-drop plan with retry: every
        // algorithm must still achieve full delivery (no lost_message,
        // no payload_leak findings), and the drops must be visible.
        let config = LintConfig {
            shapes: vec![(4, 4)],
            faults: Some(FaultPlan::transient_drops(5, 1, 8, 6)),
            ..LintConfig::default()
        };
        let entries = lint_matrix(&config);
        assert_eq!(entries.len(), 8 * 2 * AlgoKind::all().len());
        let mut total_drops = 0usize;
        for e in &entries {
            assert!(
                e.findings.is_empty(),
                "{} / {} on {}x{} s={}: {:?}",
                e.algo,
                e.dist,
                e.rows,
                e.cols,
                e.s,
                e.findings
            );
            assert!(!e.deadlocked);
            total_drops += e.dropped_attempts;
        }
        assert!(
            total_drops > 0,
            "a 1/8 drop rate over the whole matrix must drop something"
        );
    }

    #[test]
    fn supervised_matrix_quarantines_chaos_and_finishes_everything_else() {
        let config = LintConfig {
            shapes: vec![(4, 4)],
            chaos: true,
            ..LintConfig::default()
        };
        let sweep = lint_matrix_supervised(&config, &SuperviseOpts::default(), None);
        let healthy = 8 * 2 * AlgoKind::all().len();
        assert_eq!(sweep.total, healthy + 2);
        assert_eq!(sweep.skipped, Vec::<String>::new());
        assert_eq!(sweep.resumed, 0);
        // The panicking fixture is quarantined with its panic message...
        assert_eq!(sweep.failures.len(), 1, "{:?}", sweep.failures);
        let fail = &sweep.failures[0];
        assert_eq!(fail.id, "chaos:panic/E/4x4/s2");
        assert_eq!(fail.attempts, 2, "failed point must be retried once");
        assert!(
            fail.error.contains("deliberate chaos panic"),
            "{}",
            fail.error
        );
        // ...while the deadlocking fixture records a partial schedule
        // whose analysis carries a deadlock finding, and every healthy
        // point completes clean.
        assert_eq!(sweep.entries.len(), healthy + 1);
        let dead = sweep
            .entries
            .iter()
            .find(|e| e.algo == "chaos:deadlock")
            .expect("deadlock fixture entry");
        assert!(dead.deadlocked);
        assert!(
            dead.findings
                .iter()
                .any(|f| f.kind == FindingKind::Deadlock),
            "{:?}",
            dead.findings
        );
        for e in sweep.entries.iter().filter(|e| e.algo != "chaos:deadlock") {
            assert!(
                e.findings.is_empty(),
                "{}/{}: {:?}",
                e.algo,
                e.dist,
                e.findings
            );
        }
    }

    #[test]
    fn checkpointed_matrix_resumes_without_replay() {
        let config = LintConfig::quick();
        let path = std::env::temp_dir().join(format!("stp-lint-ckpt-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let sig = lint_sig(&config, SweepRunner::new().exec());
        let opts = SuperviseOpts::default();

        let cp = CheckpointFile::open(&path, &sig).expect("open checkpoint");
        let first = lint_matrix_supervised(&config, &opts, Some(&cp));
        assert_eq!(first.resumed, 0);
        assert_eq!(first.entries.len(), first.total);
        assert_eq!(cp.completed(), first.total);
        drop(cp);

        // Re-open: every point replays from the checkpoint, zero re-run,
        // and the report is byte-identical.
        let cp = CheckpointFile::open(&path, &sig).expect("re-open checkpoint");
        let second = lint_matrix_supervised(&config, &opts, Some(&cp));
        assert_eq!(second.resumed, second.total);
        assert_eq!(
            crate::report::supervised_report_json(&first, "x"),
            crate::report::supervised_report_json(&second, "x"),
            "resumed report must be byte-identical"
        );

        // A different signature must NOT resume.
        let cp2 = CheckpointFile::open(&path, "other-sig").expect("open with other sig");
        assert_eq!(cp2.completed(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fixtures_are_each_caught_with_the_right_kind() {
        let verdicts = lint_fixtures();
        assert_eq!(verdicts.len(), 5);
        for v in &verdicts {
            assert!(
                v.pass,
                "fixture {} expected [{}], detected {:?}",
                v.name,
                v.expected.name(),
                v.detected
            );
        }
    }
}

//! The lint sweep: record + analyze every algorithm over the full
//! distribution × mesh matrix, plus the seeded-bug fixture gate.

use std::sync::Once;

use mpp_model::{FaultPlan, Machine};
use mpp_runtime::ExecMode;
use stp_core::distribution::SourceDist;
use stp_core::msgset::payload_for;
use stp_core::runner::{record_sources, record_sources_faulty, AlgoKind, SweepRunner};

use crate::checks::{analyze, Finding};
use crate::fixtures;
use crate::schedule::Schedule;
use crate::FindingKind;

/// Configuration of the lint matrix.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Mesh shapes to sweep, `(rows, cols)`.
    pub shapes: Vec<(usize, usize)>,
    /// Message length at each source (bytes).
    pub msg_len: usize,
    /// Opt-in link-overload bound (see [`analyze`]).
    pub max_link_load: Option<u64>,
    /// Optional fault plan active while recording every grid point. The
    /// delivery-completeness check then verifies the algorithms survive
    /// the plan: any message lost for good surfaces as a `lost_message`
    /// finding (plus the payload leaks it causes).
    pub faults: Option<FaultPlan>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            // The acceptance matrix: two paper shapes, one tall, one with
            // a prime dimension (exercises the non-power-of-two paths).
            shapes: vec![(4, 4), (8, 4), (16, 16), (8, 3)],
            msg_len: 64,
            max_link_load: None,
            faults: None,
        }
    }
}

impl LintConfig {
    /// A reduced matrix for unit tests and `stp lint --quick`.
    pub fn quick() -> Self {
        LintConfig {
            shapes: vec![(4, 4), (8, 3)],
            ..LintConfig::default()
        }
    }
}

/// One analyzed grid point of the lint matrix.
#[derive(Debug)]
pub struct LintEntry {
    /// Algorithm display name.
    pub algo: String,
    /// Distribution short name.
    pub dist: String,
    /// Mesh rows.
    pub rows: usize,
    /// Mesh cols.
    pub cols: usize,
    /// Number of sources.
    pub s: usize,
    /// Total sends in the schedule.
    pub sends: usize,
    /// Total receive matches.
    pub recvs: usize,
    /// Heaviest per-link message count.
    pub max_link_load: u64,
    /// Whether the run deadlocked.
    pub deadlocked: bool,
    /// Whether attribution hit an opaque payload (leak check skipped).
    pub opaque_payloads: bool,
    /// Transmission attempts the fault plan dropped (0 on a clean
    /// network; recovered retries count here, lost messages surface as
    /// findings too).
    pub dropped_attempts: usize,
    /// All findings.
    pub findings: Vec<Finding>,
}

/// The eight named source distributions of the paper.
fn paper_dists() -> Vec<SourceDist> {
    vec![
        SourceDist::Row,
        SourceDist::Column,
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::DiagLeft,
        SourceDist::Band,
        SourceDist::Cross,
        SourceDist::SquareBlock,
    ]
}

/// Source counts checked per shape: a sparse quarter-machine case and
/// the all-sources case.
fn source_counts(p: usize) -> Vec<usize> {
    let sparse = (p / 4).max(2).min(p);
    if sparse == p {
        vec![p]
    } else {
        vec![sparse, p]
    }
}

/// Record and analyze every algorithm × distribution × shape × s grid
/// point. Grid points are independent simulations and run concurrently
/// on a [`SweepRunner`]; results come back in deterministic input order.
pub fn lint_matrix(config: &LintConfig) -> Vec<LintEntry> {
    struct Point {
        machine: Machine,
        dist: SourceDist,
        s: usize,
        kind: AlgoKind,
    }
    let mut points = Vec::new();
    for &(rows, cols) in &config.shapes {
        let machine = Machine::paragon(rows, cols);
        for dist in paper_dists() {
            for s in source_counts(machine.p()) {
                for &kind in AlgoKind::all() {
                    points.push(Point {
                        machine: machine.clone(),
                        dist: dist.clone(),
                        s,
                        kind,
                    });
                }
            }
        }
    }
    let msg_len = config.msg_len;
    let max_link_load = config.max_link_load;
    let faults = config.faults.clone();
    SweepRunner::new().map(
        points,
        |pt| pt.machine.p(),
        move |pt| {
            let sources = pt.dist.place(pt.machine.shape, pt.s);
            let payload_of = move |src: usize| payload_for(src, msg_len);
            let alg = pt.kind.build();
            let run = record_sources_faulty(
                &pt.machine,
                pt.kind.default_lib(),
                &sources,
                &payload_of,
                alg.as_ref(),
                ExecMode::from_env(),
                faults.as_ref(),
            );
            let sched = Schedule::from_recorded(&run, pt.machine.p());
            let analysis = analyze(&sched, &pt.machine, &sources, &payload_of, max_link_load);
            LintEntry {
                algo: pt.kind.name().to_string(),
                dist: pt.dist.name().to_string(),
                rows: pt.machine.shape.rows,
                cols: pt.machine.shape.cols,
                s: pt.s,
                sends: analysis.sends,
                recvs: analysis.recvs,
                max_link_load: analysis.max_link_load,
                deadlocked: sched.deadlocked,
                opaque_payloads: analysis.opaque_payloads,
                dropped_attempts: sched.drops.len(),
                findings: analysis.findings,
            }
        },
    )
}

/// Verdict for one seeded-bug fixture.
#[derive(Debug)]
pub struct FixtureVerdict {
    /// Fixture name.
    pub name: &'static str,
    /// The finding kind the fixture plants.
    pub expected: FindingKind,
    /// Distinct finding kinds the analyzer reported.
    pub detected: Vec<FindingKind>,
    /// True iff exactly the expected kind was detected.
    pub pass: bool,
}

/// Run the analyzer over every seeded-bug fixture on a 4×4 Paragon with
/// `Equal(4)` sources and check each bug is caught with the right kind —
/// and nothing else.
pub fn lint_fixtures() -> Vec<FixtureVerdict> {
    hush_expected_panics();
    let machine = Machine::paragon(4, 4);
    let sources = SourceDist::Equal.place(machine.shape, 4);
    let payload_of = |src: usize| payload_for(src, 64);
    fixtures::all()
        .into_iter()
        .map(|fx| {
            let alg = (fx.build)();
            let run = record_sources(
                &machine,
                mpp_model::LibraryKind::Nx,
                &sources,
                &payload_of,
                alg.as_ref(),
            );
            let sched = Schedule::from_recorded(&run, machine.p());
            let analysis = analyze(&sched, &machine, &sources, &payload_of, None);
            let mut detected: Vec<FindingKind> = analysis.findings.iter().map(|f| f.kind).collect();
            detected.sort();
            detected.dedup();
            let pass = detected == [fx.expected];
            FixtureVerdict {
                name: fx.name,
                expected: fx.expected,
                detected,
                pass,
            }
        })
        .collect()
}

/// Install (once, process-wide) a panic hook that silences the panics
/// the analyzer *expects* while recording broken schedules — the
/// kernel's deadlock/strict aborts and the per-rank "kernel terminated"
/// cascade they trigger. A p-rank deadlock otherwise prints p+1
/// backtrace headers per fixture. All other panics keep the default
/// hook's output.
pub fn hush_expected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            let expected = msg.contains("simulation deadlock on")
                || msg.contains("ambiguous receive at rank")
                || msg.contains("undelivered message(s)")
                || msg.contains("simulation kernel terminated");
            if !expected {
                default_hook(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_clean_on_real_algorithms() {
        let entries = lint_matrix(&LintConfig::quick());
        // 2 shapes × 8 dists × 2 source counts × all algorithms.
        assert_eq!(entries.len(), 2 * 8 * 2 * AlgoKind::all().len());
        for e in &entries {
            assert!(
                e.findings.is_empty(),
                "{} / {} on {}x{} s={}: {:?}",
                e.algo,
                e.dist,
                e.rows,
                e.cols,
                e.s,
                e.findings
            );
            assert!(!e.deadlocked);
            assert!(
                !e.opaque_payloads,
                "{} / {} on {}x{} s={}: attribution fell back to opaque",
                e.algo, e.dist, e.rows, e.cols, e.s
            );
            assert!(e.sends > 0 && e.recvs > 0);
        }
    }

    #[test]
    fn faulted_matrix_survives_with_retries() {
        // One small shape under a transient-drop plan with retry: every
        // algorithm must still achieve full delivery (no lost_message,
        // no payload_leak findings), and the drops must be visible.
        let config = LintConfig {
            shapes: vec![(4, 4)],
            faults: Some(FaultPlan::transient_drops(5, 1, 8, 6)),
            ..LintConfig::default()
        };
        let entries = lint_matrix(&config);
        assert_eq!(entries.len(), 8 * 2 * AlgoKind::all().len());
        let mut total_drops = 0usize;
        for e in &entries {
            assert!(
                e.findings.is_empty(),
                "{} / {} on {}x{} s={}: {:?}",
                e.algo,
                e.dist,
                e.rows,
                e.cols,
                e.s,
                e.findings
            );
            assert!(!e.deadlocked);
            total_drops += e.dropped_attempts;
        }
        assert!(
            total_drops > 0,
            "a 1/8 drop rate over the whole matrix must drop something"
        );
    }

    #[test]
    fn fixtures_are_each_caught_with_the_right_kind() {
        let verdicts = lint_fixtures();
        assert_eq!(verdicts.len(), 3);
        for v in &verdicts {
            assert!(
                v.pass,
                "fixture {} expected [{}], detected {:?}",
                v.name,
                v.expected.name(),
                v.detected
            );
        }
    }
}

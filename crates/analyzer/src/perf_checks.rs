//! Performance lints and the cost-model conformance gate.
//!
//! All of these consume the [`crate::cost`] engine's replay
//! ([`CheckCtx::cost`]); the performance lints additionally require
//! [`AnalyzeOpts::perf`](crate::AnalyzeOpts) — they describe smells, not
//! bugs, and some fire legitimately on the paper's weaker baselines
//! (that is what the committed lint baseline suppresses).

use std::collections::HashMap;

use mpp_model::{Link, Time};

use crate::checks::{Check, CheckCtx, CheckOutput, Finding, FindingKind};

/// Nodes listed by name in an aggregate finding before eliding.
const LIST_CAP: usize = 8;

/// `cost_model_divergence`: the static replay disagrees with the kernel.
pub struct CostConformance;

impl Check for CostConformance {
    fn name(&self) -> &'static str {
        "cost_model_conformance"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        if !ctx.opts.conformance {
            return;
        }
        let Some(cost) = ctx.cost else { return };
        for d in &cost.divergences {
            out.findings.push(Finding::new(
                FindingKind::CostModelDivergence,
                None,
                format!("static cost model disagrees with the kernel: {d}"),
            ));
        }
    }
}

/// `idle_ports`: on a machine with more than one injection port per
/// node, a node that sent several networked messages but never had two
/// port windows overlap is paying for ports it cannot use — the
/// schedule (not the hardware) serializes its injections.
pub struct IdlePorts;

impl Check for IdlePorts {
    fn name(&self) -> &'static str {
        "idle_ports"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        if !ctx.opts.perf {
            return;
        }
        let Some(cost) = ctx.cost else { return };
        let k = ctx.machine.params.ports_per_node;
        if k < 2 {
            return;
        }
        let idle: Vec<usize> = cost
            .ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.sends >= 2 && p.max_out_concurrency <= 1)
            .map(|(node, _)| node)
            .collect();
        if idle.is_empty() {
            return;
        }
        let total_sends: usize = idle.iter().map(|&n| cost.ports[n].sends).sum();
        let mut names: Vec<String> = idle.iter().take(LIST_CAP).map(|n| n.to_string()).collect();
        if idle.len() > LIST_CAP {
            names.push(format!("... ({} total)", idle.len()));
        }
        out.findings.push(Finding::new(
            FindingKind::IdlePorts,
            Some(idle[0]),
            format!(
                "{} node(s) with {k} injection ports never drove more than one port \
                 concurrently across {total_sends} send(s): node(s) {}",
                idle.len(),
                names.join(", ")
            ),
        ));
    }
}

/// `serialization_hotspot`: one rank accounts for at least half of the
/// critical path — every other processor is waiting on its α overheads
/// and local work.
pub struct SerializationHotspot;

impl Check for SerializationHotspot {
    fn name(&self) -> &'static str {
        "serialization_hotspot"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        if !ctx.opts.perf {
            return;
        }
        let Some(cost) = ctx.cost else { return };
        if cost.makespan_ns == 0 {
            return;
        }
        for (rank, &ns) in cost.crit.by_rank_ns.iter().enumerate() {
            if ns * 2 >= cost.makespan_ns {
                out.findings.push(Finding::new(
                    FindingKind::SerializationHotspot,
                    Some(rank),
                    format!(
                        "rank {rank} accounts for {ns} ns of the {} ns critical path \
                         ({}%) — the schedule serializes through it",
                        cost.makespan_ns,
                        ns * 100 / cost.makespan_ns
                    ),
                ));
            }
        }
    }
}

/// `contention_dominated`: transfers on the critical path spent more
/// time stalled on busy links and ports than actually traversing the
/// network.
pub struct ContentionDominated;

impl Check for ContentionDominated {
    fn name(&self) -> &'static str {
        "contention_dominated"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        if !ctx.opts.perf {
            return;
        }
        let Some(cost) = ctx.cost else { return };
        let crit = &cost.crit;
        if crit.stall_ns > 0 && crit.stall_ns > crit.free_ns {
            out.findings.push(Finding::new(
                FindingKind::ContentionDominated,
                None,
                format!(
                    "contention stalls ({} ns) exceed resource-free transfer time \
                     ({} ns) across the {} transfer(s) on the critical path",
                    crit.stall_ns, crit.free_ns, crit.xfers
                ),
            ));
        }
    }
}

/// `redundant_transmission`: the same payload crossed the same physical
/// link repeatedly. A forwarding tree sends each byte over each link
/// once; a star re-sends it per destination.
pub struct RedundantTransmission;

/// Fire only past this many duplicate crossings...
const REDUNDANT_MIN_DUPS: usize = 4;
/// ...and when duplicates are at least this share of all crossings (as
/// duplicates × RATIO ≥ total).
const REDUNDANT_RATIO: usize = 4;

impl Check for RedundantTransmission {
    fn name(&self) -> &'static str {
        "redundant_transmission"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        if !ctx.opts.perf {
            return;
        }
        if ctx.cost.is_none() {
            return;
        }
        let data_of: HashMap<u64, &[u8]> = ctx
            .sched
            .sends
            .iter()
            .map(|s| (s.seq, s.data.as_slice()))
            .collect();
        let mut crossings: HashMap<(Link, &[u8]), usize> = HashMap::new();
        let mut total = 0usize;
        for x in &ctx.sched.xfers {
            let Some(&data) = data_of.get(&x.seq) else {
                continue;
            };
            for w in &x.windows {
                *crossings.entry((w.link, data)).or_insert(0) += 1;
                total += 1;
            }
        }
        let dups: usize = crossings.values().map(|&c| c.saturating_sub(1)).sum();
        if dups < REDUNDANT_MIN_DUPS || dups * REDUNDANT_RATIO < total {
            return;
        }
        let (worst_link, worst_count) = crossings
            .iter()
            .max_by_key(|((link, _), &c)| (c, std::cmp::Reverse(*link)))
            .map(|((link, _), &c)| (*link, c))
            .expect("dups > 0 implies a crossing");
        out.findings.push(Finding::new(
            FindingKind::RedundantTransmission,
            None,
            format!(
                "{dups} of {total} link crossings re-carried a payload already sent \
                 over the same link (worst: link {}->{} carried one payload \
                 {worst_count} times) — forward once and fan out instead",
                worst_link.from, worst_link.to
            ),
        ));
    }
}

/// `above_lower_bound`: the recomputed makespan exceeds
/// [`AnalyzeOpts::lb_tolerance`](crate::AnalyzeOpts) times a generic
/// s-to-p lower bound — `⌈log₂ p⌉` latency terms to reach every rank
/// plus the source bytes through the machine's injection ports.
pub struct AboveLowerBound;

impl Check for AboveLowerBound {
    fn name(&self) -> &'static str {
        "above_lower_bound"
    }

    fn run(&self, ctx: &CheckCtx, out: &mut CheckOutput) {
        if !ctx.opts.perf {
            return;
        }
        let Some(cost) = ctx.cost else { return };
        let p = ctx.sched.p;
        if p < 2 || cost.makespan_ns == 0 {
            return;
        }
        let params = &ctx.machine.params;
        let total_bytes: usize = ctx.sources.iter().map(|&s| (ctx.payload_of)(s).len()).sum();
        let log2p = (usize::BITS - (p - 1).leading_zeros()) as Time;
        let k = params.ports_per_node as Time;
        let lower = log2p * (params.alpha_send(ctx.opts.lib) + params.alpha_recv(ctx.opts.lib))
            + params.serialize_ns_lib(total_bytes, ctx.opts.lib) / k;
        if lower == 0 {
            return;
        }
        let ratio = cost.makespan_ns as f64 / lower as f64;
        if ratio > ctx.opts.lb_tolerance {
            out.findings.push(Finding::new(
                FindingKind::AboveLowerBound,
                None,
                format!(
                    "makespan {} ns is {ratio:.1}x the s-to-p lower bound {lower} ns \
                     (tolerance {:.1}x)",
                    cost.makespan_ns, ctx.opts.lb_tolerance
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::checks::{analyze, AnalyzeOpts, FindingKind, Severity};
    use crate::fixtures;
    use crate::schedule::Schedule;
    use mpp_model::Machine;
    use mpp_runtime::ExecMode;
    use stp_core::distribution::SourceDist;
    use stp_core::msgset::payload_for;
    use stp_core::runner::{record_sources_exec, AlgoKind};

    fn perf_opts() -> AnalyzeOpts {
        AnalyzeOpts {
            perf: true,
            ..AnalyzeOpts::default()
        }
    }

    /// The real algorithms must never trip an error-severity finding
    /// with the perf lints enabled — Warn/Info smells are allowed (they
    /// land in the committed baseline), errors are not.
    #[test]
    fn perf_lints_raise_no_errors_on_real_algorithms() {
        let machine = Machine::paragon(4, 4);
        let sources = SourceDist::Equal.place(machine.shape, 4);
        let payload_of = |src: usize| payload_for(src, 64);
        for kind in [AlgoKind::TwoStep, AlgoKind::BrXyDim, AlgoKind::PartLin] {
            let alg = kind.build();
            let run = record_sources_exec(
                &machine,
                kind.default_lib(),
                &sources,
                &payload_of,
                alg.as_ref(),
                ExecMode::Cooperative,
            );
            let sched = Schedule::from_recorded(&run, machine.p());
            let a = analyze(
                &sched,
                &machine,
                &sources,
                &payload_of,
                &AnalyzeOpts {
                    lib: kind.default_lib(),
                    ..perf_opts()
                },
            );
            for f in &a.findings {
                assert_ne!(f.severity(), Severity::Error, "{}: {:?}", kind.name(), f);
            }
        }
    }

    /// The serialized-star fixture trips the serialization-hotspot lint
    /// at its hub, and nothing error-severity.
    #[test]
    fn serialized_star_is_a_hotspot() {
        let fx = fixtures::all()
            .into_iter()
            .find(|f| f.name == "serialized_linear_tree")
            .expect("fixture registered");
        let machine = (fx.machine)();
        let sources = SourceDist::Equal.place(machine.shape, fx.s);
        let payload_of = |src: usize| payload_for(src, 64);
        let alg = (fx.build)();
        let run = record_sources_exec(
            &machine,
            mpp_model::LibraryKind::Nx,
            &sources,
            &payload_of,
            alg.as_ref(),
            ExecMode::Cooperative,
        );
        let sched = Schedule::from_recorded(&run, machine.p());
        let a = analyze(&sched, &machine, &sources, &payload_of, &perf_opts());
        assert!(
            a.findings
                .iter()
                .any(|f| f.kind == FindingKind::SerializationHotspot),
            "{:?}",
            a.findings
        );
        for f in &a.findings {
            assert_ne!(f.severity(), Severity::Error, "{f:?}");
        }
    }

    /// The single-port-broadcast fixture wastes its 5-port nodes and
    /// trips the idle-ports lint; conformance must hold on the multi-port
    /// machine too.
    #[test]
    fn multi_port_star_wastes_its_ports() {
        let fx = fixtures::all()
            .into_iter()
            .find(|f| f.name == "single_port_broadcast")
            .expect("fixture registered");
        let machine = (fx.machine)();
        assert!(machine.params.ports_per_node > 1);
        let sources = SourceDist::Equal.place(machine.shape, fx.s);
        let payload_of = |src: usize| payload_for(src, 64);
        let alg = (fx.build)();
        let run = record_sources_exec(
            &machine,
            mpp_model::LibraryKind::Nx,
            &sources,
            &payload_of,
            alg.as_ref(),
            ExecMode::Cooperative,
        );
        let sched = Schedule::from_recorded(&run, machine.p());
        let a = analyze(&sched, &machine, &sources, &payload_of, &perf_opts());
        assert!(
            a.findings.iter().any(|f| f.kind == FindingKind::IdlePorts),
            "{:?}",
            a.findings
        );
        for f in &a.findings {
            assert_ne!(f.severity(), Severity::Error, "{f:?}");
        }
    }

    /// The negative gate for the k-ported transmit path: on the *same*
    /// five-port machine the idle-ports fixture wastes, `KPort_Lin`
    /// must lint completely clean — zero perf findings of any severity,
    /// so it needs no entry in the committed lint baseline. If the
    /// batched sends ever stop overlapping port windows, the idle-ports
    /// lint fires here before the sweep numbers move.
    ///
    /// Gated in the algorithm's target regime (s comfortably above k):
    /// with fewer sources than ~2k, some forwarders only ever carry one
    /// lane's traffic per level — no source-striped schedule can
    /// overlap their ports, and the idle-ports lint fires by
    /// construction (that regime belongs to a chunk-striping algorithm,
    /// not to lane assignment).
    #[test]
    fn kport_lin_lints_clean_on_the_idle_ports_machine() {
        let machine = fixtures::machines::five_port_machine();
        assert!(machine.params.ports_per_node > 1);
        let payload_of = |src: usize| payload_for(src, 64);
        for s in [10usize, 12] {
            let sources = SourceDist::Equal.place(machine.shape, s);
            let alg = AlgoKind::KPortLin.build();
            let run = record_sources_exec(
                &machine,
                AlgoKind::KPortLin.default_lib(),
                &sources,
                &payload_of,
                alg.as_ref(),
                ExecMode::Cooperative,
            );
            let sched = Schedule::from_recorded(&run, machine.p());
            let a = analyze(&sched, &machine, &sources, &payload_of, &perf_opts());
            assert!(
                a.findings.is_empty(),
                "KPort_Lin (s={s}) must produce zero perf findings on the \
                 idle-ports machine, got {:?}",
                a.findings
            );
        }
    }
}

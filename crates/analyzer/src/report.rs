//! Machine-readable lint reports (hand-rolled JSON — the build is
//! offline, so no serde).

use crate::lint::{FixtureVerdict, LintEntry};

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &crate::Finding) -> String {
    let rank = f.rank.map_or("null".to_string(), |r| r.to_string());
    format!(
        "{{\"kind\":\"{}\",\"rank\":{rank},\"detail\":\"{}\"}}",
        f.kind.name(),
        escape(&f.detail)
    )
}

/// Encode the lint matrix results as a JSON array.
pub fn entries_to_json(entries: &[LintEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let findings: Vec<String> = e.findings.iter().map(finding_json).collect();
        out.push_str(&format!(
            "  {{\"algo\":\"{}\",\"dist\":\"{}\",\"rows\":{},\"cols\":{},\"s\":{},\
             \"sends\":{},\"recvs\":{},\"max_link_load\":{},\"deadlocked\":{},\
             \"opaque_payloads\":{},\"dropped_attempts\":{},\"findings\":[{}]}}",
            escape(&e.algo),
            escape(&e.dist),
            e.rows,
            e.cols,
            e.s,
            e.sends,
            e.recvs,
            e.max_link_load,
            e.deadlocked,
            e.opaque_payloads,
            e.dropped_attempts,
            findings.join(",")
        ));
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    out
}

/// Encode the lint matrix as a report object: a header recording which
/// executor drove the sweep and its wall-clock, then the entries.
pub fn lint_report_json(entries: &[LintEntry], executor: &str, wall_s: f64) -> String {
    format!(
        "{{\"executor\":\"{}\",\"wall_s\":{wall_s:.3},\"schedules\":{},\"entries\":{}}}",
        escape(executor),
        entries.len(),
        entries_to_json(entries)
    )
}

/// Encode the fixture verdicts as a JSON array.
pub fn fixtures_to_json(verdicts: &[FixtureVerdict]) -> String {
    let mut out = String::from("[\n");
    for (i, v) in verdicts.iter().enumerate() {
        let detected: Vec<String> = v
            .detected
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect();
        out.push_str(&format!(
            "  {{\"fixture\":\"{}\",\"expected\":\"{}\",\"detected\":[{}],\"pass\":{}}}",
            escape(v.name),
            v.expected.name(),
            detected.join(","),
            v.pass
        ));
        out.push_str(if i + 1 == verdicts.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, FindingKind};

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn entries_encode_round() {
        let entries = vec![LintEntry {
            algo: "Br_Lin".into(),
            dist: "E".into(),
            rows: 4,
            cols: 4,
            s: 5,
            sends: 10,
            recvs: 10,
            max_link_load: 3,
            deadlocked: false,
            opaque_payloads: false,
            dropped_attempts: 2,
            findings: vec![Finding {
                kind: FindingKind::PayloadLeak,
                rank: Some(2),
                detail: "missing \"x\"".into(),
            }],
        }];
        let json = entries_to_json(&entries);
        assert!(json.contains("\"algo\":\"Br_Lin\""));
        assert!(json.contains("\"dropped_attempts\":2"));
        assert!(json.contains("\"kind\":\"payload_leak\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn empty_reports_are_valid() {
        assert_eq!(entries_to_json(&[]), "[\n]");
        assert_eq!(fixtures_to_json(&[]), "[\n]");
    }
}

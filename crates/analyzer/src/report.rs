//! Machine-readable lint reports (hand-rolled JSON — the build is
//! offline, so no serde).

use crate::lint::{FixtureVerdict, LintEntry};

/// Minimal JSON string escaping.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &crate::Finding) -> String {
    let rank = f.rank.map_or("null".to_string(), |r| r.to_string());
    let at_ns = f.at_ns.map_or("null".to_string(), |t| t.to_string());
    let seq = f.seq.map_or("null".to_string(), |q| q.to_string());
    format!(
        "{{\"kind\":\"{}\",\"severity\":\"{}\",\"rank\":{rank},\"at_ns\":{at_ns},\
         \"seq\":{seq},\"detail\":\"{}\"}}",
        f.kind.name(),
        f.kind.severity().name(),
        escape(&f.detail)
    )
}

/// Encode one lint entry as a JSON object — the unit a sweep checkpoint
/// stores, so the encoding must stay stable across sessions.
pub fn entry_to_json(e: &LintEntry) -> String {
    let findings: Vec<String> = e.findings.iter().map(finding_json).collect();
    format!(
        "{{\"algo\":\"{}\",\"dist\":\"{}\",\"rows\":{},\"cols\":{},\"s\":{},\
         \"sends\":{},\"recvs\":{},\"max_link_load\":{},\"deadlocked\":{},\
         \"opaque_payloads\":{},\"dropped_attempts\":{},\"findings\":[{}]}}",
        escape(&e.algo),
        escape(&e.dist),
        e.rows,
        e.cols,
        e.s,
        e.sends,
        e.recvs,
        e.max_link_load,
        e.deadlocked,
        e.opaque_payloads,
        e.dropped_attempts,
        findings.join(",")
    )
}

/// Decode one lint entry from [`entry_to_json`]'s encoding — how a
/// resumed lint sweep splices checkpointed points back into its report.
pub fn entry_from_json(text: &str) -> Result<LintEntry, String> {
    use crate::FindingKind;
    use stp_core::checkpoint::{parse_json, JsonValue};
    let v = parse_json(text)?;
    let str_field = |k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("entry missing string field {k:?}"))
    };
    let num_field = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("entry missing numeric field {k:?}"))
    };
    let bool_field = |k: &str| -> Result<bool, String> {
        v.get(k)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("entry missing boolean field {k:?}"))
    };
    let mut findings = Vec::new();
    for f in v
        .get("findings")
        .and_then(JsonValue::as_array)
        .ok_or("entry missing \"findings\"")?
    {
        let kind_name = f
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("finding missing \"kind\"")?;
        let kind = FindingKind::from_name(kind_name)
            .ok_or_else(|| format!("unknown finding kind {kind_name:?}"))?;
        let rank = match f.get("rank") {
            Some(JsonValue::Null) | None => None,
            Some(r) => Some(r.as_u64().ok_or("finding \"rank\" is not an integer")? as usize),
        };
        let detail = f
            .get("detail")
            .and_then(JsonValue::as_str)
            .ok_or("finding missing \"detail\"")?
            .to_string();
        let at_ns = match f.get("at_ns") {
            Some(JsonValue::Null) | None => None,
            Some(t) => Some(t.as_u64().ok_or("finding \"at_ns\" is not an integer")?),
        };
        let seq = match f.get("seq") {
            Some(JsonValue::Null) | None => None,
            Some(q) => Some(q.as_u64().ok_or("finding \"seq\" is not an integer")?),
        };
        findings.push(crate::Finding {
            kind,
            rank,
            detail,
            at_ns,
            seq,
        });
    }
    Ok(LintEntry {
        algo: str_field("algo")?,
        dist: str_field("dist")?,
        rows: num_field("rows")? as usize,
        cols: num_field("cols")? as usize,
        s: num_field("s")? as usize,
        sends: num_field("sends")? as usize,
        recvs: num_field("recvs")? as usize,
        max_link_load: num_field("max_link_load")?,
        deadlocked: bool_field("deadlocked")?,
        opaque_payloads: bool_field("opaque_payloads")?,
        dropped_attempts: num_field("dropped_attempts")? as usize,
        findings,
    })
}

/// Encode the lint matrix results as a JSON array.
pub fn entries_to_json(entries: &[LintEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&entry_to_json(e));
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    out
}

/// Encode a supervised lint sweep: the completed entries plus the
/// quarantined failures and skipped points. Deliberately carries **no
/// wall-clock** — an interrupted-and-resumed sweep must produce a
/// byte-identical report to an uninterrupted one.
pub fn supervised_report_json(sweep: &crate::lint::SupervisedLint, executor: &str) -> String {
    let failures: Vec<String> = sweep
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"id\":\"{}\",\"attempts\":{},\"error\":\"{}\"}}",
                escape(&f.id),
                f.attempts,
                escape(&f.error)
            )
        })
        .collect();
    let skipped: Vec<String> = sweep
        .skipped
        .iter()
        .map(|id| format!("\"{}\"", escape(id)))
        .collect();
    // `resumed` is intentionally NOT in the report: it differs between
    // an interrupted-and-resumed sweep and an uninterrupted one, and
    // the two reports must be byte-identical.
    format!(
        "{{\"executor\":\"{}\",\"points\":{},\"failures\":[{}],\
         \"skipped\":[{}],\"entries\":{}}}",
        escape(executor),
        sweep.total,
        failures.join(","),
        skipped.join(","),
        entries_to_json(&sweep.entries)
    )
}

/// Encode the lint matrix as a report object: a header recording which
/// executor drove the sweep and its wall-clock, then the entries.
pub fn lint_report_json(entries: &[LintEntry], executor: &str, wall_s: f64) -> String {
    format!(
        "{{\"executor\":\"{}\",\"wall_s\":{wall_s:.3},\"schedules\":{},\"entries\":{}}}",
        escape(executor),
        entries.len(),
        entries_to_json(entries)
    )
}

/// Encode the fixture verdicts as a JSON array.
pub fn fixtures_to_json(verdicts: &[FixtureVerdict]) -> String {
    let mut out = String::from("[\n");
    for (i, v) in verdicts.iter().enumerate() {
        let detected: Vec<String> = v
            .detected
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect();
        out.push_str(&format!(
            "  {{\"fixture\":\"{}\",\"expected\":\"{}\",\"detected\":[{}],\"pass\":{}}}",
            escape(v.name),
            v.expected.name(),
            detected.join(","),
            v.pass
        ));
        out.push_str(if i + 1 == verdicts.len() { "\n" } else { ",\n" });
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, FindingKind};

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn entries_encode_round() {
        let entries = vec![LintEntry {
            algo: "Br_Lin".into(),
            dist: "E".into(),
            rows: 4,
            cols: 4,
            s: 5,
            sends: 10,
            recvs: 10,
            max_link_load: 3,
            deadlocked: false,
            opaque_payloads: false,
            dropped_attempts: 2,
            findings: vec![Finding {
                kind: FindingKind::PayloadLeak,
                rank: Some(2),
                detail: "missing \"x\"".into(),
                at_ns: Some(1_500),
                seq: Some(7),
            }],
        }];
        let json = entries_to_json(&entries);
        assert!(json.contains("\"algo\":\"Br_Lin\""));
        assert!(json.contains("\"dropped_attempts\":2"));
        assert!(json.contains("\"kind\":\"payload_leak\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"at_ns\":1500"));
        assert!(json.contains("\"seq\":7"));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn empty_reports_are_valid() {
        assert_eq!(entries_to_json(&[]), "[\n]");
        assert_eq!(fixtures_to_json(&[]), "[\n]");
    }
}

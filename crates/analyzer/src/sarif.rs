//! SARIF 2.1.0 output for `stp lint` — the interchange format CI
//! annotation tooling consumes.
//!
//! One run, one rule per [`FindingKind`], one result per finding.
//! Schedules have no files, so results carry *logical* locations: the
//! grid point id (`algo/dist/RxC/sN`) qualified with the rank the
//! finding anchors at. Findings accepted by the baseline are emitted
//! with an `external` suppression rather than dropped — SARIF viewers
//! show them greyed out. Output is byte-stable for a given entry list:
//! entries in sweep order, findings in the analyzer's canonical order,
//! no wall-clock anywhere.

use crate::baseline::{finding_key, Baseline};
use crate::checks::FindingKind;
use crate::lint::LintEntry;
use crate::report::escape;

/// Every kind, in rule-index order (the `FindingKind` declaration
/// order, which is also the canonical report order).
pub const ALL_KINDS: [FindingKind; 12] = [
    FindingKind::Deadlock,
    FindingKind::UnmatchedSend,
    FindingKind::MatchAmbiguity,
    FindingKind::PayloadLeak,
    FindingKind::LinkOverload,
    FindingKind::LostMessage,
    FindingKind::CostModelDivergence,
    FindingKind::IdlePorts,
    FindingKind::SerializationHotspot,
    FindingKind::ContentionDominated,
    FindingKind::RedundantTransmission,
    FindingKind::AboveLowerBound,
];

fn rule_index(kind: FindingKind) -> usize {
    ALL_KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is registered")
}

/// Encode a lint sweep as a SARIF 2.1.0 log.
pub fn sarif_report(entries: &[LintEntry], baseline: Option<&Baseline>) -> String {
    let rules: Vec<String> = ALL_KINDS
        .iter()
        .map(|k| {
            format!(
                "        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
                 \"defaultConfiguration\": {{\"level\": \"{}\"}}}}",
                k.name(),
                escape(k.describe()),
                k.severity().name()
            )
        })
        .collect();

    let mut results = Vec::new();
    for e in entries {
        let point = format!("{}/{}/{}x{}/s{}", e.algo, e.dist, e.rows, e.cols, e.s);
        for f in &e.findings {
            let fqn = match f.rank {
                Some(r) => format!("{point}/rank{r}"),
                None => point.clone(),
            };
            let suppressed = baseline.is_some_and(|b| b.suppresses(e, f));
            let suppressions = if suppressed {
                ", \"suppressions\": [{\"kind\": \"external\"}]"
            } else {
                ""
            };
            results.push(format!(
                "      {{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"logicalLocations\": \
                 [{{\"fullyQualifiedName\": \"{}\"}}]}}], \"properties\": {{\"point\": \"{}\", \
                 \"baselineKey\": \"{}\"}}{suppressions}}}",
                f.kind.name(),
                rule_index(f.kind),
                f.kind.severity().name(),
                escape(&f.detail),
                escape(&fqn),
                escape(&point),
                escape(&finding_key(e, f)),
            ));
        }
    }

    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\"driver\": \
         {{\"name\": \"stp-lint\", \"informationUri\": \
         \"https://example.invalid/stp\", \"rules\": [\n{}\n      ]}}}},\n      \
         \"results\": [\n{}\n      ]\n    }}\n  ]\n}}\n",
        rules.join(",\n"),
        if results.is_empty() {
            String::new()
        } else {
            results.join(",\n")
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::Finding;
    use stp_core::checkpoint::parse_json;

    fn entry() -> LintEntry {
        LintEntry {
            algo: "Br_Lin".into(),
            dist: "E".into(),
            rows: 4,
            cols: 4,
            s: 4,
            sends: 2,
            recvs: 2,
            max_link_load: 1,
            deadlocked: false,
            opaque_payloads: false,
            dropped_attempts: 0,
            findings: vec![
                Finding::new(FindingKind::SerializationHotspot, Some(3), "hot hub".into()),
                Finding::new(FindingKind::CostModelDivergence, None, "skew".into()),
            ],
        }
    }

    #[test]
    fn sarif_is_valid_json_with_required_fields() {
        let text = sarif_report(&[entry()], None);
        let v = parse_json(&text).expect("SARIF must be parseable JSON");
        assert_eq!(v.get("version").and_then(|x| x.as_str()), Some("2.1.0"));
        let runs = v.get("runs").and_then(|x| x.as_array()).expect("runs");
        assert_eq!(runs.len(), 1);
        let results = runs[0]
            .get("results")
            .and_then(|x| x.as_array())
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(|x| x.as_str()),
            Some("serialization_hotspot")
        );
        assert_eq!(
            results[0].get("level").and_then(|x| x.as_str()),
            Some("warning")
        );
        assert_eq!(
            results[1].get("level").and_then(|x| x.as_str()),
            Some("error")
        );
        // Rule table covers every kind exactly once, in index order.
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(|x| x.as_array())
            .expect("rules");
        assert_eq!(rules.len(), ALL_KINDS.len());
        for (i, k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(rules[i].get("id").and_then(|x| x.as_str()), Some(k.name()));
        }
    }

    #[test]
    fn baseline_marks_suppressions_without_dropping() {
        let e = entry();
        let warn_key = crate::baseline::finding_key(&e, &e.findings[0]);
        let error_key = crate::baseline::finding_key(&e, &e.findings[1]);
        let mut b = Baseline::default();
        b.suppress.insert(warn_key);
        b.suppress.insert(error_key); // must be ignored: errors never suppress
        let text = sarif_report(std::slice::from_ref(&e), Some(&b));
        let v = parse_json(&text).expect("parse");
        let results = v.get("runs").and_then(|x| x.as_array()).unwrap()[0]
            .get("results")
            .and_then(|x| x.as_array())
            .unwrap();
        assert!(results[0].get("suppressions").is_some());
        assert!(results[1].get("suppressions").is_none());
    }

    #[test]
    fn output_is_byte_stable() {
        let entries = vec![entry()];
        assert_eq!(sarif_report(&entries, None), sarif_report(&entries, None));
        // Golden skeleton: the exact header bytes tooling keys on.
        let text = sarif_report(&[], None);
        assert!(text.starts_with(
            "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": ["
        ));
        assert!(text.ends_with("}\n"));
    }

    /// Golden bytes for one result object: any encoding change must be
    /// deliberate, because CI annotation tooling and the committed
    /// artifacts key on these exact strings.
    #[test]
    fn result_encoding_matches_golden_bytes() {
        let text = sarif_report(&[entry()], None);
        let golden = "      {\"ruleId\": \"serialization_hotspot\", \"ruleIndex\": 8, \
                      \"level\": \"warning\", \"message\": {\"text\": \"hot hub\"}, \
                      \"locations\": [{\"logicalLocations\": [{\"fullyQualifiedName\": \
                      \"Br_Lin/E/4x4/s4/rank3\"}]}], \"properties\": {\"point\": \
                      \"Br_Lin/E/4x4/s4\", \"baselineKey\": \
                      \"serialization_hotspot@Br_Lin/E/4x4/s4\"}}";
        assert!(
            text.contains(golden),
            "result encoding drifted from the golden bytes:\n{text}"
        );
    }
}

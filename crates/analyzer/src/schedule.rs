//! From a recorded event log to a structured communication schedule.

use std::collections::{BTreeSet, HashMap, HashSet};

use mpp_model::Time;
use mpp_runtime::{LinkWindow, ScheduleEvent};
use stp_core::msgset::MessageSet;
use stp_core::runner::RecordedRun;

/// One recorded send, payload flattened to owned bytes for attribution.
#[derive(Debug, Clone)]
pub struct SendOp {
    /// Sender-side iteration counter at the time of the send.
    pub step: u32,
    /// Kernel-global sequence number (unique per message).
    pub seq: u64,
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Message tag.
    pub tag: u32,
    /// The payload bytes.
    pub data: Vec<u8>,
    /// The sender's virtual clock at issue (ns).
    pub issue_ns: Time,
}

/// The network's reservation record for one delivered message — the
/// timing ground truth the cost engine replays against.
#[derive(Debug, Clone)]
pub struct XferOp {
    /// Sequence number of the delivered message.
    pub seq: u64,
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// On-wire payload size (bytes).
    pub bytes: usize,
    /// The instant the message was handed to the network (ns).
    pub ready_ns: Time,
    /// Head injection instant after port and link arbitration (ns).
    pub start_ns: Time,
    /// Arrival at the destination mailbox (ns).
    pub done_ns: Time,
    /// Delay beyond the resource-free traversal of the route (ns).
    pub stall_ns: Time,
    /// Injection-port slot at the source node (`None` = local memcpy).
    pub out_slot: Option<usize>,
    /// Ejection-port slot at the destination node.
    pub in_slot: Option<usize>,
    /// Per-hop link reservations, in route order.
    pub windows: Vec<LinkWindow>,
}

impl XferOp {
    /// Whether this was a node-local memcpy delivery (no network
    /// resources reserved).
    pub fn is_local(&self) -> bool {
        self.out_slot.is_none()
    }
}

/// One recorded receive match.
#[derive(Debug, Clone)]
pub struct RecvOp {
    /// Receiver-side iteration counter at the time of the receive.
    pub step: u32,
    /// Receiving rank.
    pub rank: usize,
    /// The `src` filter the program asked for (`None` = wildcard).
    pub src_filter: Option<usize>,
    /// The `tag` filter the program asked for (`None` = wildcard).
    pub tag_filter: Option<u32>,
    /// Sequence number of the send this receive consumed.
    pub seq: u64,
    /// Actual source of the matched message.
    pub src: usize,
    /// Actual tag of the matched message.
    pub tag: u32,
    /// In-flight messages with this `(src, tag)` at match time,
    /// *including* the matched one. `> 1` means the match was ambiguous.
    pub dup_in_flight: usize,
    /// The receiver's virtual clock when the match was processed (ns).
    pub start_ns: Time,
    /// The matched message's mailbox arrival time (ns).
    pub arrival_ns: Time,
}

/// A rank that was blocked in `recv` when the run deadlocked.
#[derive(Debug, Clone)]
pub struct BlockedOp {
    /// The stuck rank.
    pub rank: usize,
    /// Its `src` filter (`None` = wildcard).
    pub src_filter: Option<usize>,
    /// Its `tag` filter (`None` = wildcard).
    pub tag_filter: Option<u32>,
}

/// One transmission attempt lost to the run's fault plan.
#[derive(Debug, Clone)]
pub struct DropOp {
    /// Sequence number of the affected send.
    pub seq: u64,
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Which attempt this was (0-based).
    pub attempt: u32,
    /// True when this was the final permitted attempt: the message is
    /// lost for good.
    pub exhausted: bool,
}

/// The structured form of one recorded run.
#[derive(Debug, Default)]
pub struct Schedule {
    /// Number of ranks.
    pub p: usize,
    /// Every send, in deterministic kernel order.
    pub sends: Vec<SendOp>,
    /// Every delivered message's network reservation record, in
    /// deterministic kernel order (empty for schedules predating the
    /// timing recorder, e.g. hand-built test schedules).
    pub xfers: Vec<XferOp>,
    /// Every receive match, in deterministic kernel order.
    pub recvs: Vec<RecvOp>,
    /// Ranks blocked at deadlock time (empty for completed runs).
    pub blocked: Vec<BlockedOp>,
    /// Transmission attempts lost to the fault plan (empty on a clean
    /// network).
    pub drops: Vec<DropOp>,
    /// `(rank, undelivered messages in its mailbox)` at rank finish.
    pub leftover: Vec<(usize, usize)>,
    /// `(rank, final virtual clock)` per finished rank, in finish order.
    pub finishes: Vec<(usize, Time)>,
    /// The kernel's virtual makespan (`None` for deadlocked runs and
    /// hand-built schedules).
    pub makespan_ns: Option<Time>,
    /// Whether the run aborted in a deadlock.
    pub deadlocked: bool,
}

impl Schedule {
    /// Build the schedule from a recorded run on a `p`-rank machine.
    pub fn from_recorded(run: &RecordedRun, p: usize) -> Schedule {
        let mut sched = Schedule {
            p,
            deadlocked: run.deadlocked,
            makespan_ns: run.outcome.as_ref().map(|o| o.makespan_ns),
            ..Schedule::default()
        };
        for ev in &run.events {
            match ev {
                ScheduleEvent::Send {
                    step,
                    seq,
                    src,
                    dst,
                    tag,
                    data,
                    issue_ns,
                } => {
                    sched.sends.push(SendOp {
                        step: *step,
                        seq: *seq,
                        src: *src,
                        dst: *dst,
                        tag: *tag,
                        data: data.to_vec(),
                        issue_ns: *issue_ns,
                    });
                }
                ScheduleEvent::Xfer {
                    seq,
                    src,
                    dst,
                    bytes,
                    ready_ns,
                    start_ns,
                    done_ns,
                    stall_ns,
                    out_slot,
                    in_slot,
                    windows,
                } => {
                    sched.xfers.push(XferOp {
                        seq: *seq,
                        src: *src,
                        dst: *dst,
                        bytes: *bytes,
                        ready_ns: *ready_ns,
                        start_ns: *start_ns,
                        done_ns: *done_ns,
                        stall_ns: *stall_ns,
                        out_slot: *out_slot,
                        in_slot: *in_slot,
                        windows: windows.clone(),
                    });
                }
                ScheduleEvent::Recv {
                    step,
                    rank,
                    src_filter,
                    tag_filter,
                    seq,
                    src,
                    tag,
                    dup_in_flight,
                    start_ns,
                    arrival_ns,
                } => {
                    sched.recvs.push(RecvOp {
                        step: *step,
                        rank: *rank,
                        src_filter: *src_filter,
                        tag_filter: *tag_filter,
                        seq: *seq,
                        src: *src,
                        tag: *tag,
                        dup_in_flight: *dup_in_flight,
                        start_ns: *start_ns,
                        arrival_ns: *arrival_ns,
                    });
                }
                ScheduleEvent::Blocked {
                    rank,
                    src_filter,
                    tag_filter,
                } => {
                    sched.blocked.push(BlockedOp {
                        rank: *rank,
                        src_filter: *src_filter,
                        tag_filter: *tag_filter,
                    });
                }
                ScheduleEvent::Dropped {
                    seq,
                    src,
                    dst,
                    attempt,
                    exhausted,
                } => {
                    sched.drops.push(DropOp {
                        seq: *seq,
                        src: *src,
                        dst: *dst,
                        attempt: *attempt,
                        exhausted: *exhausted,
                    });
                }
                ScheduleEvent::Finished {
                    rank,
                    leftover,
                    finish_ns,
                } => {
                    sched.leftover.push((*rank, *leftover));
                    sched.finishes.push((*rank, *finish_ns));
                }
                ScheduleEvent::IterEnd { .. } => {}
            }
        }
        sched
    }

    /// Sequence numbers of sends that were matched by some receive.
    pub fn matched_seqs(&self) -> HashSet<u64> {
        self.recvs.iter().map(|r| r.seq).collect()
    }

    /// Sequence numbers of sends the fault plan lost for good (every
    /// permitted transmission attempt dropped).
    pub fn lost_seqs(&self) -> HashSet<u64> {
        self.drops
            .iter()
            .filter(|d| d.exhausted)
            .map(|d| d.seq)
            .collect()
    }
}

/// What a payload could be traced back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attributed {
    /// The payload carries exactly these original source messages.
    Sources(BTreeSet<usize>),
    /// The payload could not be attributed (not a known source message
    /// and not a parseable [`MessageSet`]). Leak checking is skipped for
    /// schedules containing opaque payloads rather than guessed at.
    Opaque,
}

/// Traces payload bytes back to originating sources.
///
/// Attribution is by *content* first: the exact bytes of each source's
/// message (as produced by the experiment's payload function) identify
/// it regardless of how `MessageSet` keys were relabelled in transit —
/// the repositioning algorithms deliberately re-key messages to their
/// *target* ranks while the bytes still belong to the original source.
/// Wire-encoded `MessageSet`s are recursed into per entry; an entry
/// whose bytes are unknown falls back to its source key when that key is
/// a real source.
pub struct Attribution {
    by_bytes: HashMap<Vec<u8>, usize>,
    sources: BTreeSet<usize>,
    /// Two sources produced identical bytes (e.g. zero-length payloads),
    /// so content attribution would be a guess. Everything becomes
    /// opaque and leak checking is skipped.
    ambiguous: bool,
}

impl Attribution {
    /// Build the content table for `sources` under `payload_of`.
    pub fn new(sources: &[usize], payload_of: &dyn Fn(usize) -> Vec<u8>) -> Attribution {
        let mut by_bytes = HashMap::new();
        let mut ambiguous = false;
        for &s in sources {
            if by_bytes.insert(payload_of(s), s).is_some() {
                ambiguous = true;
            }
        }
        Attribution {
            by_bytes,
            sources: sources.iter().copied().collect(),
            ambiguous,
        }
    }

    /// Whether content attribution is usable at all.
    pub fn is_usable(&self) -> bool {
        !self.ambiguous
    }

    /// Attribute one payload.
    pub fn attribute(&self, data: &[u8]) -> Attributed {
        if self.ambiguous {
            return Attributed::Opaque;
        }
        if let Some(&src) = self.by_bytes.get(data) {
            return Attributed::Sources(BTreeSet::from([src]));
        }
        let Some(set) = MessageSet::from_bytes(data) else {
            return Attributed::Opaque;
        };
        let mut out = BTreeSet::new();
        for (key, payload) in set.into_entries() {
            let bytes = payload.to_vec();
            if let Some(&src) = self.by_bytes.get(&bytes) {
                out.insert(src);
            } else if bytes.is_empty() && self.sources.contains(&(key as usize)) {
                // Header-only entry (zero-length source message) carried
                // under its own source key.
                out.insert(key as usize);
            } else {
                return Attributed::Opaque;
            }
        }
        Attributed::Sources(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stp_core::msgset::payload_for;

    fn payloads(len: usize) -> impl Fn(usize) -> Vec<u8> {
        move |src| payload_for(src, len)
    }

    #[test]
    fn attributes_raw_source_bytes() {
        let att = Attribution::new(&[2, 5], &payloads(64));
        assert_eq!(
            att.attribute(&payload_for(5, 64)),
            Attributed::Sources(BTreeSet::from([5]))
        );
        assert_eq!(att.attribute(b"garbage"), Attributed::Opaque);
    }

    #[test]
    fn attributes_message_set_entries_by_content() {
        let att = Attribution::new(&[1, 3], &payloads(32));
        // Entries re-keyed to arbitrary ranks (what Repos/Part do) must
        // still attribute to the original sources by content.
        let mut set = MessageSet::new();
        set.insert(7, &payload_for(1, 32));
        set.insert(9, &payload_for(3, 32));
        assert_eq!(
            att.attribute(&set.to_bytes()),
            Attributed::Sources(BTreeSet::from([1, 3]))
        );
    }

    #[test]
    fn unknown_entry_bytes_are_opaque() {
        let att = Attribution::new(&[1], &payloads(32));
        let mut set = MessageSet::new();
        set.insert(1, b"not the real payload");
        assert_eq!(att.attribute(&set.to_bytes()), Attributed::Opaque);
    }

    #[test]
    fn identical_source_payloads_disable_attribution() {
        let att = Attribution::new(&[0, 1], &payloads(0));
        assert!(!att.is_usable());
        assert_eq!(att.attribute(&[]), Attributed::Opaque);
    }
}

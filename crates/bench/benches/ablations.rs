//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **placement** — T3D block-rotated vs fully scattered placement;
//! * **combining cost (γ)** — the knob that flips the T3D ranking;
//! * **ports per node** — single-channel vs six-channel nodes;
//! * **linear order** — snake vs plain row-major for `Br_Lin`;
//! * **gather flavour** — direct vs binomial tree in 2-Step.

use criterion::{criterion_group, criterion_main, Criterion};
use mpp_model::{Machine, MachineParams, MeshShape, Placement, Topology};
use mpp_runtime::{run_simulated, Communicator};
use stp_bench::run_ms;
use stp_core::prelude::*;

fn t3d_with(gamma_ns: f64, ports: usize, scattered: bool) -> Machine {
    let params = MachineParams {
        gamma_ns_x1024: (gamma_ns * 1024.0) as u64,
        ports_per_node: ports,
        ..MachineParams::t3d_mpi()
    };
    let placement = if scattered {
        Placement::Random { seed: 42 }
    } else {
        Placement::RotatedBlock { seed: 42 }
    };
    Machine::new(
        format!("T3D-ablation g={gamma_ns} ports={ports} scattered={scattered}"),
        Topology::torus_for(128),
        params,
        placement,
        MeshShape::near_square(128),
    )
}

fn ablation_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_placement");
    g.sample_size(10);
    for (label, scattered) in [("block", false), ("scattered", true)] {
        let machine = t3d_with(22.0, 6, scattered);
        g.bench_function(label, |b| {
            b.iter(|| run_ms(&machine, AlgoKind::BrLin, SourceDist::Equal, 40, 4096))
        });
    }
    g.finish();
}

fn ablation_gamma(c: &mut Criterion) {
    // At γ≈0 message combining is free and Br_Lin should recover much of
    // its Paragon advantage; at the calibrated γ it loses to Alltoall.
    let mut g = c.benchmark_group("ablation_gamma");
    g.sample_size(10);
    for gamma in [0.0f64, 5.0, 22.0, 40.0] {
        let machine = t3d_with(gamma, 6, false);
        g.bench_function(format!("BrLin/gamma{gamma}"), |b| {
            b.iter(|| run_ms(&machine, AlgoKind::BrLin, SourceDist::Equal, 40, 4096))
        });
    }
    g.finish();
}

fn ablation_ports(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ports");
    g.sample_size(10);
    for ports in [1usize, 2, 6] {
        let machine = t3d_with(22.0, ports, false);
        g.bench_function(format!("Alltoall/ports{ports}"), |b| {
            b.iter(|| run_ms(&machine, AlgoKind::MpiAlltoall, SourceDist::Equal, 40, 4096))
        });
    }
    g.finish();
}

fn ablation_linear_order(c: &mut Criterion) {
    let machine = Machine::paragon(10, 10);
    let shape = machine.shape;
    let mut g = c.benchmark_group("ablation_linear_order");
    g.sample_size(10);
    for (label, alg) in [("snake", BrLin::new()), ("row_major", BrLin::row_major())] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let sources = SourceDist::Equal.place(shape, 30);
                let out = run_simulated(&machine, mpp_model::LibraryKind::Nx, async |comm| {
                    let payload = sources
                        .binary_search(&comm.rank())
                        .is_ok()
                        .then(|| payload_for(comm.rank(), 2048));
                    let ctx = StpCtx {
                        shape,
                        sources: &sources,
                        payload: payload.as_deref(),
                    };
                    alg.run(comm, &ctx).await.len()
                });
                out.makespan_ns
            })
        });
    }
    g.finish();
}

fn ablation_gather_flavour(c: &mut Criterion) {
    let machine = Machine::paragon(10, 10);
    let mut g = c.benchmark_group("ablation_gather_flavour");
    g.sample_size(10);
    for (label, kind) in [
        ("direct", AlgoKind::TwoStep),
        ("tree", AlgoKind::MpiAllGather),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| run_ms(&machine, kind, SourceDist::Equal, 30, 4096))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_placement,
    ablation_gamma,
    ablation_ports,
    ablation_linear_order,
    ablation_gather_flavour,
);
criterion_main!(ablations);

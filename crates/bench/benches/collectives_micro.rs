//! Micro-benches of the collective building blocks on the simulator —
//! per-operation cost tracking for the substrate the algorithms stand on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpp_model::{LibraryKind, Machine};
use mpp_runtime::run_simulated;

fn bcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_bcast");
    g.sample_size(10);
    for p in [16usize, 64, 256] {
        let machine = Machine::paragon(p / 8, 8);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                run_simulated(&machine, LibraryKind::Nx, async |comm| {
                    use mpp_runtime::Communicator;
                    let order: Vec<usize> = (0..comm.size()).collect();
                    let data = (comm.rank() == 0).then(|| vec![0u8; 4096]);
                    collectives::bcast_from_first(comm, &order, data, 0)
                        .await
                        .len()
                })
                .makespan_ns
            })
        });
    }
    g.finish();
}

fn gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_gather");
    g.sample_size(10);
    for p in [16usize, 64] {
        let machine = Machine::paragon(p / 8, 8);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                run_simulated(&machine, LibraryKind::Nx, async |comm| {
                    use mpp_runtime::Communicator;
                    let senders: Vec<usize> = (0..comm.size()).collect();
                    let mine = vec![comm.rank() as u8; 1024];
                    collectives::gather_direct(comm, 0, &senders, Some(&mine), 1)
                        .await
                        .len()
                })
                .makespan_ns
            })
        });
    }
    g.finish();
}

fn alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_personalized");
    g.sample_size(10);
    for p in [16usize, 64] {
        let machine = Machine::paragon(p / 8, 8);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                run_simulated(&machine, LibraryKind::Nx, async |comm| {
                    use mpp_runtime::Communicator;
                    let mine = vec![comm.rank() as u8; 512];
                    collectives::personalized_from_sources(comm, &|_| true, Some(&mine), 2)
                        .await
                        .len()
                })
                .makespan_ns
            })
        });
    }
    g.finish();
}

fn reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_allreduce");
    g.sample_size(10);
    for p in [16usize, 64] {
        let machine = Machine::paragon(p / 8, 8);
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                run_simulated(&machine, LibraryKind::Nx, async |comm| {
                    use mpp_runtime::Communicator;
                    let order: Vec<usize> = (0..comm.size()).collect();
                    let contrib = (comm.rank() as u64).to_le_bytes();
                    let sum = |a: &[u8], b: &[u8]| {
                        (u64::from_le_bytes(a.try_into().unwrap())
                            + u64::from_le_bytes(b.try_into().unwrap()))
                        .to_le_bytes()
                        .to_vec()
                    };
                    collectives::allreduce(comm, &order, &contrib, &sum, 3)
                        .await
                        .len()
                })
                .makespan_ns
            })
        });
    }
    g.finish();
}

criterion_group!(micro, bcast, gather, alltoall, reduce);
criterion_main!(micro);

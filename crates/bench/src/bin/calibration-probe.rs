//! Calibration probe: quick checks that the simulator reproduces the
//! paper's headline *shapes* before the full figure suite runs.
//! Not one of the paper's figures — a development/diagnostic tool.

use mpp_model::Machine;
use stp_bench::run_ms;
use stp_core::prelude::*;

fn main() {
    println!("== Paragon 10x10, L=4K, equal distribution (Fig 3 shape) ==");
    let paragon = Machine::paragon(10, 10);
    let kinds = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::MpiAllGather,
        AlgoKind::MpiAlltoall,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::BrXyDim,
    ];
    print!("{:>4}", "s");
    for k in kinds {
        print!("{:>16}", k.name());
    }
    println!();
    for s in [1usize, 10, 30, 60, 100] {
        print!("{s:>4}");
        for k in kinds {
            print!("{:>16.3}", run_ms(&paragon, k, SourceDist::Equal, s, 4096));
        }
        println!();
    }

    println!("\n== T3D p=128, L=4K, equal distribution (Fig 13a shape) ==");
    let t3d = Machine::t3d(128, 42);
    let kinds_t3d = [
        AlgoKind::MpiAllGather,
        AlgoKind::MpiAlltoall,
        AlgoKind::BrLin,
    ];
    print!("{:>4}", "s");
    for k in kinds_t3d {
        print!("{:>16}", k.name());
    }
    println!();
    for s in [5usize, 20, 40, 80, 128] {
        print!("{s:>4}");
        for k in kinds_t3d {
            print!("{:>16.3}", run_ms(&t3d, k, SourceDist::Equal, s, 4096));
        }
        println!();
    }

    println!("\n== Paragon 10x10, L=2K, s=30, distributions (Fig 6 shape) ==");
    let kinds6 = [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::BrXyDim];
    print!("{:>6}", "dist");
    for k in kinds6 {
        print!("{:>16}", k.name());
    }
    println!();
    for d in SourceDist::paper_set() {
        print!("{:>6}", d.name());
        for k in kinds6 {
            print!("{:>16.3}", run_ms(&paragon, k, d.clone(), 30, 2048));
        }
        println!();
    }
}

//! Extension: adaptive repositioning on the Figure-9 workload.
//!
//! The paper's repositioning implementation "always repositions", which
//! costs 1–2 ms on inputs that are already close to ideal (Figure 9's
//! positive bars). `ReposAdaptive_xy_source` gates the permutation on a
//! local placement-quality score; this binary reruns the Figure-9 grid
//! with all three policies.

use mpp_model::{LibraryKind, Machine};
use mpp_runtime::run_simulated;
use stp_core::algorithms::ReposAdaptive;
use stp_core::prelude::*;
use stp_core::runner::run_sources;

fn main() {
    let machine = Machine::paragon(16, 16);
    let shape = machine.shape;
    let adaptive = ReposAdaptive::new(BrXySource, AlgoKind::BrXySource, "ReposAdaptive_xy_source");

    println!("# 16x16 Paragon, L=6K: plain vs always-reposition vs adaptive (ms)");
    println!("dist,s,quality,plain,repos,adaptive,repositioned?");
    for dist in [
        SourceDist::Cross,
        SourceDist::SquareBlock,
        SourceDist::Equal,
        SourceDist::Band,
        SourceDist::Row,
    ] {
        for s in [16usize, 75, 150] {
            let sources = dist.place(shape, s);
            let quality =
                stp_core::quality::placement_quality(shape, &sources, AlgoKind::BrXySource)
                    .unwrap();
            let plain = run_sources(
                &machine,
                LibraryKind::Nx,
                &sources,
                &|src| payload_for(src, 6144),
                AlgoKind::BrXySource,
            )
            .expect("run failed");
            let repos = run_sources(
                &machine,
                LibraryKind::Nx,
                &sources,
                &|src| payload_for(src, 6144),
                AlgoKind::ReposXySource,
            )
            .expect("run failed");
            let adapt = run_simulated(&machine, LibraryKind::Nx, async |comm| {
                use mpp_runtime::Communicator;
                let payload = sources
                    .binary_search(&comm.rank())
                    .is_ok()
                    .then(|| payload_for(comm.rank(), 6144));
                let ctx = StpCtx {
                    shape,
                    sources: &sources,
                    payload: payload.as_deref(),
                };
                adaptive.run(comm, &ctx).await.len() == s
            });
            assert!(plain.verified && repos.verified);
            assert!(adapt.results.iter().all(|&ok| ok));
            println!(
                "{},{s},{quality:.2},{:.3},{:.3},{:.3},{}",
                dist.name(),
                plain.makespan_ms(),
                repos.makespan_ms(),
                adapt.makespan_ns as f64 / 1e6,
                adaptive.would_reposition(shape, &sources)
            );
        }
    }
}

//! Ablation: how much do the distribution effects depend on the link
//! contention model?
//!
//! Reruns the Figure-6 grid under the three contention models:
//! `Circuit` (severe head-of-line blocking, pessimistic), `Shared`
//! (links as bandwidth servers at the 200 MB/s hardware rate,
//! optimistic), and the default `Pipelined`. Finding: the ideal-vs-poor
//! distribution gap is *robust* to the model choice (1.19–1.25×),
//! meaning our gap-compression relative to the paper's 2× (see
//! EXPERIMENTS.md) is not a link-blocking artifact — the remaining gap
//! on the real Paragon must have come from effects outside any linear
//! link-reservation model (flit-level hot-spot trees, software-level
//! interference).

use mpp_model::{ContentionModel, Machine, MachineParams, MeshShape, Placement, Topology};
use stp_bench::run_ms;
use stp_core::prelude::*;

fn paragon_with(model: ContentionModel) -> Machine {
    let params = MachineParams {
        contention: model,
        ..MachineParams::paragon_nx()
    };
    Machine::new(
        format!("Paragon 10x10 ({model:?})"),
        Topology::Mesh2D { rows: 10, cols: 10 },
        params,
        Placement::Identity,
        MeshShape::new(10, 10),
    )
}

fn main() {
    let models = [
        ContentionModel::Shared,
        ContentionModel::Pipelined,
        ContentionModel::Circuit,
    ];
    println!("# Figure-6 grid (10x10, L=2K, s=30, Br_xy_source) under contention models (ms)");
    print!("dist");
    for m in models {
        print!(",{m:?}");
    }
    println!();
    let mut worst: Vec<f64> = vec![0.0; models.len()];
    let mut best: Vec<f64> = vec![f64::MAX; models.len()];
    for dist in SourceDist::paper_set() {
        print!("{}", dist.name());
        for (i, model) in models.iter().enumerate() {
            let machine = paragon_with(*model);
            let ms = run_ms(&machine, AlgoKind::BrXySource, dist.clone(), 30, 2048);
            worst[i] = worst[i].max(ms);
            best[i] = best[i].min(ms);
            print!(",{ms:.4}");
        }
        println!();
    }
    print!("gap(worst/best)");
    for i in 0..models.len() {
        print!(",{:.2}x", worst[i] / best[i]);
    }
    println!();
}

//! Extension: where would MPI_AllGather/MPI_Alltoall convergence come
//! from? (Figure 13a discussion.)
//!
//! Our `MPI_AllGather` follows the paper's own description (gather at
//! P₀ + broadcast) and therefore stays ~3x above `MPI_Alltoall` at
//! `s = p` instead of converging. This binary runs a *dissemination*
//! all-gather — the implementation a modern MPI library would use — on
//! the same Figure-13a workload, with and without combining charges:
//! the zero-copy variant runs below Alltoall at every point.

use mpp_model::{LibraryKind, Machine};
use mpp_runtime::{run_simulated, Communicator};
use stp_core::algorithms::{DissemAllGather, StpAlgorithm};
use stp_core::prelude::*;

fn run_alg(machine: &Machine, alg: &dyn StpAlgorithm, sources: &[usize], len: usize) -> f64 {
    let shape = machine.shape;
    let out = run_simulated(machine, LibraryKind::Mpi, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), len));
        let ctx = StpCtx {
            shape,
            sources,
            payload: payload.as_deref(),
        };
        alg.run(comm, &ctx).await.len() == sources.len()
    });
    assert!(out.results.iter().all(|&ok| ok));
    out.makespan_ns as f64 / 1e6
}

fn main() {
    let machine = Machine::t3d(128, 42);
    println!("# T3D p=128, L=4K, equal distribution (Fig 13a workload + extension)");
    println!("s,MPI_AllGather,MPI_Alltoall,Br_Lin,Dissem,Dissem_zero_copy");
    for s in [5usize, 20, 40, 64, 96, 128] {
        let sources = SourceDist::Equal.place(machine.shape, s);
        let allgather = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s,
            msg_len: 4096,
            kind: AlgoKind::MpiAllGather,
        }
        .run()
        .expect("run failed");
        let alltoall = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s,
            msg_len: 4096,
            kind: AlgoKind::MpiAlltoall,
        }
        .run()
        .expect("run failed");
        let br_lin = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s,
            msg_len: 4096,
            kind: AlgoKind::BrLin,
        }
        .run()
        .expect("run failed");
        let dissem = run_alg(&machine, &DissemAllGather::new(), &sources, 4096);
        let dissem_zc = run_alg(&machine, &DissemAllGather::zero_copy(), &sources, 4096);
        println!(
            "{s},{:.4},{:.4},{:.4},{dissem:.4},{dissem_zc:.4}",
            allgather.makespan_ms(),
            alltoall.makespan_ms(),
            br_lin.makespan_ms()
        );
    }
}

//! Figure 1: placement of 30 sources in the row, cross, and right
//! diagonal distributions on a 10×10 mesh.

use mpp_model::MeshShape;
use stp_core::distribution::{ascii_grid, SourceDist};

fn main() {
    let shape = MeshShape::new(10, 10);
    for dist in [SourceDist::Row, SourceDist::Cross, SourceDist::DiagRight] {
        let sources = dist.place(shape, 30);
        println!("{}(30) on 10x10 ({} sources):", dist.name(), sources.len());
        println!("{}", ascii_grid(shape, &sources));
    }
}

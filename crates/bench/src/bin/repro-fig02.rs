//! Figure 2: algorithm- and distribution-dependent parameters
//! (congestion, wait, #send/rec, av_msg_lgth, av_act_proc) for 2-Step,
//! PersAlltoAll and Br_Lin on the equal distribution.
//!
//! The paper tabulates asymptotic bounds for p = 2^k assuming message
//! length L; here the same parameters are *measured* from per-iteration
//! statistics, once with s a power of two (the paper's slow case for
//! Br_Lin) and once without.
//!
//! ```text
//! repro-fig02 [--p N]    machine size (default 256; rows×cols chosen
//!                        as the squarest factorization of N)
//! ```
//!
//! The six (s × algorithm) grid points are independent simulations and
//! run concurrently on a [`SweepRunner`]; `STP_SWEEP_WORKERS=1` forces
//! the old sequential behaviour for speedup measurements.

use std::time::Instant;

use mpp_model::Machine;
use stp_core::metrics::{figure2_row, format_table};
use stp_core::prelude::*;

/// Squarest factorization of `p` as (rows, cols), rows ≤ cols.
fn mesh_dims(p: usize) -> (usize, usize) {
    let mut r = (p as f64).sqrt() as usize;
    while r > 1 && !p.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), p / r.max(1))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let p: usize = args
        .iter()
        .position(|a| a == "--p")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(256);
    let (rows, cols) = mesh_dims(p);
    let machine = Machine::paragon(rows, cols);
    let kinds = [AlgoKind::TwoStep, AlgoKind::PersAlltoAll, AlgoKind::BrLin];
    // s chosen relative to p: the paper's table uses s=16 / s=24 at
    // p=256; scale both cases down for small --p values.
    let s_pow = (p / 16).max(2).next_power_of_two().min(p);
    let s_odd = (s_pow + s_pow / 2).min(p);
    let s_values = [s_pow, s_odd];

    // The full (s × algorithm) grid, executed concurrently.
    let machine = &machine;
    let grid: Vec<Experiment> = s_values
        .iter()
        .flat_map(|&s| {
            kinds.iter().map(move |&kind| Experiment {
                machine,
                dist: SourceDist::Equal,
                s,
                msg_len: 1024,
                kind,
            })
        })
        .collect();
    let runner = SweepRunner::new();
    let t0 = Instant::now();
    let outcomes = runner.run_experiments(&grid);
    let wall = t0.elapsed();

    for (si, &s) in s_values.iter().enumerate() {
        let pow = if s.is_power_of_two() {
            "s = 2^l"
        } else {
            "s != 2^l"
        };
        println!("== p={p} ({rows}x{cols}), equal distribution, s={s} ({pow}), L=1K ==");
        let mut table_rows = Vec::new();
        for (ki, &kind) in kinds.iter().enumerate() {
            let out = &outcomes[si * kinds.len() + ki];
            assert!(out.verified);
            let mut row = figure2_row(kind.name(), &out.stats);
            if kind == AlgoKind::BrLin {
                row.algorithm = format!("Br_Lin, {pow}");
            }
            table_rows.push(row);
        }
        println!("{}", format_table(&table_rows));
    }

    println!("paper's asymptotic forms for comparison (equal distribution):");
    println!("  2-Step        congestion O(s)  wait O(1)      #send/rec O(p)      av_msg O(sL)       av_act O(p/log p)");
    println!("  PersAlltoAll  congestion O(1)  wait O(1)      #send/rec O(p)      av_msg O(L)        av_act O(p)");
    println!("  Br_Lin s=2^l  congestion O(1)  wait O(log p)  #send/rec O(log p)  av_msg O(sL)       av_act O(p/log p + s log s/log p)");
    println!("  Br_Lin s!=2^l congestion O(1)  wait O(log p)  #send/rec O(log p)  av_msg O(sL/log p) av_act O(p log s/log p)");
    eprintln!(
        "[sweep] {} grid points on {} workers in {:.3}s",
        grid.len(),
        runner.workers(),
        wall.as_secs_f64()
    );
}

//! Figure 2: algorithm- and distribution-dependent parameters
//! (congestion, wait, #send/rec, av_msg_lgth, av_act_proc) for 2-Step,
//! PersAlltoAll and Br_Lin on the equal distribution.
//!
//! The paper tabulates asymptotic bounds for p = 2^k assuming message
//! length L; here the same parameters are *measured* from per-iteration
//! statistics on a 16×16 machine (p = 256), once with s a power of two
//! (the paper's slow case for Br_Lin) and once without.

use mpp_model::Machine;
use stp_core::metrics::{figure2_row, format_table};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(16, 16);
    let kinds = [AlgoKind::TwoStep, AlgoKind::PersAlltoAll, AlgoKind::BrLin];

    for s in [16usize, 24] {
        let pow = if s.is_power_of_two() { "s = 2^l" } else { "s != 2^l" };
        println!("== p=256, equal distribution, s={s} ({pow}), L=1K ==");
        let mut rows = Vec::new();
        for kind in kinds {
            let exp = Experiment {
                machine: &machine,
                dist: SourceDist::Equal,
                s,
                msg_len: 1024,
                kind,
            };
            let out = exp.run();
            assert!(out.verified);
            let mut row = figure2_row(kind.name(), &out.stats);
            if kind == AlgoKind::BrLin {
                row.algorithm = format!("Br_Lin, {pow}");
            }
            rows.push(row);
        }
        println!("{}", format_table(&rows));
    }

    println!("paper's asymptotic forms for comparison (equal distribution):");
    println!("  2-Step        congestion O(s)  wait O(1)      #send/rec O(p)      av_msg O(sL)       av_act O(p/log p)");
    println!("  PersAlltoAll  congestion O(1)  wait O(1)      #send/rec O(p)      av_msg O(L)        av_act O(p)");
    println!("  Br_Lin s=2^l  congestion O(1)  wait O(log p)  #send/rec O(log p)  av_msg O(sL)       av_act O(p/log p + s log s/log p)");
    println!("  Br_Lin s!=2^l congestion O(1)  wait O(log p)  #send/rec O(log p)  av_msg O(sL/log p) av_act O(p log s/log p)");
}

//! Figure 3: performance of all algorithms on a 10×10 Paragon; the
//! number of sources varies from 1 to 100, L = 4 KiB, equal
//! distribution. Includes the MPI builds of 2-Step and PersAlltoAll
//! (`MPI_AllGather`, `MPI_Alltoall`).

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, sweep_algorithms_parallel};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(10, 10);
    let kinds = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::MpiAllGather,
        AlgoKind::MpiAlltoall,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::BrXyDim,
    ];
    let ss: Vec<f64> = (0..=20)
        .map(|i| if i == 0 { 1.0 } else { (i * 5) as f64 })
        .collect();
    let series =
        sweep_algorithms_parallel(&SweepRunner::new(), &kinds, &ss, machine.p(), |k, s| {
            run_ms(&machine, k, SourceDist::Equal, s as usize, 4096)
        });
    print_figure(
        "Figure 3: 10x10 Paragon, L=4K, equal distribution, time (ms) vs s",
        "s",
        &series,
    );
}

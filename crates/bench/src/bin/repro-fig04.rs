//! Figure 4: performance on a 10×10 Paragon; L varies from 32 bytes to
//! 16 KiB, s = 30, right diagonal distribution.

use mpp_model::Machine;
use stp_bench::{length_sweep, print_figure, run_ms, sweep_algorithms_parallel};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(10, 10);
    let kinds = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::BrXyDim,
    ];
    let lens: Vec<f64> = length_sweep().iter().map(|&l| l as f64).collect();
    let series =
        sweep_algorithms_parallel(&SweepRunner::new(), &kinds, &lens, machine.p(), |k, len| {
            run_ms(&machine, k, SourceDist::DiagRight, 30, len as usize)
        });
    print_figure(
        "Figure 4: 10x10 Paragon, s=30, right diagonal, time (ms) vs L (bytes)",
        "L",
        &series,
    );
}

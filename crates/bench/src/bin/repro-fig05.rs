//! Figure 5: performance on Paragons of 4 to 256 processors;
//! L = 1 KiB, approximately √p sources, right diagonal distribution.

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, sweep_algorithms_parallel};
use stp_core::prelude::*;

fn main() {
    let sizes = [2usize, 4, 6, 8, 10, 12, 14, 16]; // square side: p = side²
    let kinds = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::BrXyDim,
    ];
    let xs: Vec<f64> = sizes.iter().map(|&n| (n * n) as f64).collect();
    // Weight by the largest machine in the sweep: every grid point may
    // spawn up to 256 rank threads.
    let max_p = 16 * 16;
    let series = sweep_algorithms_parallel(&SweepRunner::new(), &kinds, &xs, max_p, |k, p| {
        let side = (p as usize).isqrt();
        let machine = Machine::paragon(side, side);
        run_ms(&machine, k, SourceDist::DiagRight, side, 1024)
    });
    print_figure(
        "Figure 5: Paragon, L=1K, s=sqrt(p), right diagonal, time (ms) vs p",
        "p",
        &series,
    );
}

//! Figure 6: performance of the three merge-based algorithms on a 10×10
//! Paragon; L = 2 KiB, s = 30, across source distributions.

use mpp_model::Machine;
use stp_bench::run_ms;
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(10, 10);
    let kinds = [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::BrXyDim];
    println!("# Figure 6: 10x10 Paragon, L=2K, s=30, time (ms) per distribution");
    print!("dist");
    for k in kinds {
        print!(",{}", k.name());
    }
    println!();
    for dist in SourceDist::paper_set() {
        print!("{}", dist.name());
        for k in kinds {
            print!(",{:.4}", run_ms(&machine, k, dist.clone(), 30, 2048));
        }
        println!();
    }
}

//! Figure 7: performance of the three merge-based algorithms on a 10×10
//! Paragon with the right diagonal distribution when the *total* message
//! volume is fixed at 80 KiB and the number of sources varies — the
//! paper's demonstration that spreading the data over more sources is
//! faster.

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, sweep_algorithms_parallel};
use stp_core::prelude::*;

const TOTAL: usize = 80 * 1024;

fn main() {
    let machine = Machine::paragon(10, 10);
    let kinds = [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::BrXyDim];
    let ss = [5.0, 10.0, 20.0, 40.0, 80.0];
    let series =
        sweep_algorithms_parallel(&SweepRunner::new(), &kinds, &ss, machine.p(), |k, s| {
            let s = s as usize;
            run_ms(&machine, k, SourceDist::DiagRight, s, TOTAL / s)
        });
    print_figure(
        "Figure 7: 10x10 Paragon, right diagonal, total sL=80K fixed, time (ms) vs s",
        "s",
        &series,
    );
}

//! Figure 8: performance of `Br_Lin` on a 120-node Paragon when the
//! machine dimensions vary; equal distribution, L = 4 KiB, three source
//! counts. Demonstrates that the *same* distribution is good or bad
//! depending on the mesh dimensions (the paper's s=15-faster-than-s=8
//! anomaly comes from where the equal distribution lands on each shape).

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, Series};
use stp_core::prelude::*;

fn main() {
    let shapes = [(2usize, 60usize), (4, 30), (6, 20), (8, 15), (10, 12)];
    let source_counts = [8usize, 15, 60];
    let mut series: Vec<Series> = Vec::new();
    for &s in &source_counts {
        let mut points = Vec::new();
        for (i, &(r, c)) in shapes.iter().enumerate() {
            let machine = Machine::paragon(r, c);
            let ms = run_ms(&machine, AlgoKind::BrLin, SourceDist::Equal, s, 4096);
            points.push((i as f64, ms));
        }
        series.push(Series {
            label: format!("s={s}"),
            points,
        });
    }
    println!("# shapes: 0=2x60 1=4x30 2=6x20 3=8x15 4=10x12");
    print_figure(
        "Figure 8: Br_Lin on 120-node Paragon, equal distribution, L=4K, time (ms) vs shape",
        "shape",
        &series,
    );
}

//! Figure 9: percentage difference between `Repos_xy_source` and
//! `Br_xy_source` on a 16×16 Paragon; L = 6 KiB, varying the number of
//! sources, on four input distributions (cross, square block, equal,
//! band). Negative values mean repositioning is *faster*.

use mpp_model::Machine;
use stp_bench::{pct_diff, print_figure, run_ms, Series};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(16, 16);
    let dists = [
        SourceDist::Cross,
        SourceDist::SquareBlock,
        SourceDist::Equal,
        SourceDist::Band,
    ];
    let ss = [16usize, 50, 75, 100, 128, 150, 192];
    let mut series = Vec::new();
    for dist in dists {
        let mut points = Vec::new();
        for &s in &ss {
            let plain = run_ms(&machine, AlgoKind::BrXySource, dist.clone(), s, 6 * 1024);
            let repos = run_ms(&machine, AlgoKind::ReposXySource, dist.clone(), s, 6 * 1024);
            points.push((s as f64, pct_diff(repos, plain)));
        }
        series.push(Series {
            label: dist.name().to_string(),
            points,
        });
    }
    print_figure(
        "Figure 9: 16x16 Paragon, L=6K: % difference Repos_xy_source vs Br_xy_source (negative = repositioning wins)",
        "s",
        &series,
    );
}

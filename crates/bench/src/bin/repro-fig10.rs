//! Figure 10: percentage difference between `Repos_xy_source` and
//! `Br_xy_source` on a 16×16 Paragon; s = 75, varying the message
//! length, on four input distributions. Negative = repositioning wins.

use mpp_model::Machine;
use stp_bench::{pct_diff, print_figure, run_ms, Series};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(16, 16);
    let dists = [
        SourceDist::Cross,
        SourceDist::SquareBlock,
        SourceDist::Equal,
        SourceDist::Band,
    ];
    let lens = [256usize, 512, 1024, 2048, 4096, 6144, 8192, 16384];
    let mut series = Vec::new();
    for dist in dists {
        let mut points = Vec::new();
        for &len in &lens {
            let plain = run_ms(&machine, AlgoKind::BrXySource, dist.clone(), 75, len);
            let repos = run_ms(&machine, AlgoKind::ReposXySource, dist.clone(), 75, len);
            points.push((len as f64, pct_diff(repos, plain)));
        }
        series.push(Series {
            label: dist.name().to_string(),
            points,
        });
    }
    print_figure(
        "Figure 10: 16x16 Paragon, s=75: % difference Repos_xy_source vs Br_xy_source vs L (negative = repositioning wins)",
        "L",
        &series,
    );
}

//! Figure 11: scalability of `MPI_AllGather` on the T3D under different
//! source distributions.
//!
//! (a) machine size varies (16..256 virtual processors) with s = 32 and
//!     the total message volume fixed at 128 KiB;
//! (b) problem size varies on p = 128 with L = 16 KiB.

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, Series};
use stp_core::prelude::*;

const SEED: u64 = 42;

fn dists() -> Vec<SourceDist> {
    vec![
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::SquareBlock,
        SourceDist::Cross,
    ]
}

fn main() {
    // (a) varying machine size, s=32, total = 128K (L = 4K).
    let ps = [64usize, 128, 256];
    let mut series_a = Vec::new();
    for dist in dists() {
        let mut points = Vec::new();
        for &p in &ps {
            let machine = Machine::t3d(p, SEED);
            let ms = run_ms(
                &machine,
                AlgoKind::MpiAllGather,
                dist.clone(),
                32,
                128 * 1024 / 32,
            );
            points.push((p as f64, ms));
        }
        series_a.push(Series {
            label: dist.name().to_string(),
            points,
        });
    }
    print_figure(
        "Figure 11a: T3D MPI_AllGather, s=32, total 128K, time (ms) vs p",
        "p",
        &series_a,
    );

    // (b) p = 128, L = 16K, varying the number of sources (problem size).
    let machine = Machine::t3d(128, SEED);
    let ss = [4usize, 8, 16, 32, 64, 128];
    let mut series_b = Vec::new();
    for dist in dists() {
        let mut points = Vec::new();
        for &s in &ss {
            let ms = run_ms(&machine, AlgoKind::MpiAllGather, dist.clone(), s, 16 * 1024);
            points.push((s as f64, ms));
        }
        series_b.push(Series {
            label: dist.name().to_string(),
            points,
        });
    }
    print_figure(
        "Figure 11b: T3D p=128 MPI_AllGather, L=16K, time (ms) vs s",
        "s",
        &series_b,
    );
}

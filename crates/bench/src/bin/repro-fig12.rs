//! Figure 12: `MPI_AllGather` on a 128-processor T3D with the total
//! message volume fixed at 128 KiB while the number of sources varies,
//! under different source distributions. Reproduces two claims: more
//! sources for the same volume is faster (up to the s→p deterioration),
//! and the equal distribution tends to win for s ≤ p/4.

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, Series};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::t3d(128, 42);
    let dists = [
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::SquareBlock,
        SourceDist::Cross,
    ];
    let ss = [4usize, 8, 16, 32, 64, 128];
    let mut series = Vec::new();
    for dist in dists {
        let mut points = Vec::new();
        for &s in &ss {
            let ms = run_ms(
                &machine,
                AlgoKind::MpiAllGather,
                dist.clone(),
                s,
                128 * 1024 / s,
            );
            points.push((s as f64, ms));
        }
        series.push(Series {
            label: dist.name().to_string(),
            points,
        });
    }
    print_figure(
        "Figure 12: T3D p=128, MPI_AllGather, total 128K fixed, time (ms) vs s",
        "s",
        &series,
    );
}

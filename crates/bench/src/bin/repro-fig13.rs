//! Figure 13: three algorithms on a 128-processor T3D, L = 4 KiB.
//!
//! (a) the number of sources varies from 5 to 128, equal distribution;
//! (b) different source distributions at s = 40.
//!
//! The paper's headline: the ranking *flips* relative to the Paragon —
//! `MPI_Alltoall` wins (no combining, minimal waiting), `Br_Lin` loses
//! to its combining and wait costs.

use mpp_model::Machine;
use stp_bench::{print_figure, run_ms, sweep_algorithms_parallel};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::t3d(128, 42);
    let kinds = [
        AlgoKind::MpiAllGather,
        AlgoKind::MpiAlltoall,
        AlgoKind::BrLin,
    ];

    // (a) s sweep, equal distribution.
    let ss = [5.0, 10.0, 20.0, 40.0, 64.0, 96.0, 128.0];
    let series =
        sweep_algorithms_parallel(&SweepRunner::new(), &kinds, &ss, machine.p(), |k, s| {
            run_ms(&machine, k, SourceDist::Equal, s as usize, 4096)
        });
    print_figure(
        "Figure 13a: T3D p=128, L=4K, equal distribution, time (ms) vs s",
        "s",
        &series,
    );

    // (b) distributions at s = 40.
    println!("# Figure 13b: T3D p=128, L=4K, s=40, time (ms) per distribution");
    print!("dist");
    for k in kinds {
        print!(",{}", k.name());
    }
    println!();
    for dist in [
        SourceDist::Row,
        SourceDist::Column,
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::SquareBlock,
        SourceDist::Cross,
        SourceDist::Random { seed: 7 },
    ] {
        print!("{}", dist.name());
        for k in kinds {
            print!(",{:.4}", run_ms(&machine, k, dist.clone(), 40, 4096));
        }
        println!();
    }
}

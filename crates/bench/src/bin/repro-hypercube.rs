//! Extension: s-to-p broadcasting on a hypercube MPP.
//!
//! The paper's related work is largely hypercube-based (Johnsson & Ho,
//! Bokhari, Lan et al.); this binary runs the paper's algorithm suite on
//! an nCUBE-2-class hypercube to see which Paragon conclusions carry
//! over to a richer topology (log-diameter, one channel per dimension).

use mpp_model::Machine;
use stp_bench::run_ms;
use stp_core::prelude::*;

fn main() {
    let machine = Machine::hypercube(6); // 64 nodes
    let kinds = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::ReposXySource,
    ];
    println!("# Hypercube-64 (nCUBE-2 class), L=4K, equal distribution");
    print!("s");
    for k in kinds {
        print!(",{}", k.name());
    }
    println!();
    for s in [1usize, 8, 16, 32, 64] {
        print!("{s}");
        for k in kinds {
            print!(",{:.4}", run_ms(&machine, k, SourceDist::Equal, s, 4096));
        }
        println!();
    }

    println!("\n# distributions at s=16, L=4K");
    print!("dist");
    for k in kinds {
        print!(",{}", k.name());
    }
    println!();
    for dist in SourceDist::paper_set() {
        print!("{}", dist.name());
        for k in kinds {
            print!(",{:.4}", run_ms(&machine, k, dist.clone(), 16, 4096));
        }
        println!();
    }
}

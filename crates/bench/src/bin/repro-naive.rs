//! §2 (text result): the coordination-free approach — every source
//! running its own independent one-to-all broadcast — "leads to poor
//! performance due to arising congestion and the large number of
//! messages in the system". Measures it against the merge algorithms on
//! both machines.

use mpp_model::Machine;
use stp_bench::run_ms;
use stp_core::prelude::*;

fn main() {
    let paragon = Machine::paragon(10, 10);
    let t3d = Machine::t3d(128, 42);
    let kinds = [
        AlgoKind::NaiveIndependent,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
    ];

    println!("# 10x10 Paragon, L=4K, equal distribution (ms)");
    print!("s");
    for k in kinds {
        print!(",{}", k.name());
    }
    println!();
    for s in [5usize, 15, 30, 60, 100] {
        print!("{s}");
        for k in kinds {
            print!(",{:.4}", run_ms(&paragon, k, SourceDist::Equal, s, 4096));
        }
        println!();
    }

    println!("\n# T3D p=128, L=4K, equal distribution (ms)");
    print!("s");
    for k in kinds {
        print!(",{}", k.name());
    }
    println!();
    for s in [5usize, 20, 40, 96] {
        print!("{s}");
        for k in kinds {
            print!(",{:.4}", run_ms(&t3d, k, SourceDist::Equal, s, 4096));
        }
        println!();
    }
}

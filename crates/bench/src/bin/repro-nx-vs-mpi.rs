//! §5 (text result): "We have compiled and run all algorithms on the
//! Paragon under MPI environment. We have observed a performance loss of
//! 2 to 5% in every MPI implementation." Runs every algorithm under both
//! library flavours on the Figure-3 workload and reports the loss.

use mpp_model::{LibraryKind, Machine};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(10, 10);
    let kinds = [
        AlgoKind::TwoStep,
        AlgoKind::PersAlltoAll,
        AlgoKind::BrLin,
        AlgoKind::BrXySource,
        AlgoKind::BrXyDim,
        AlgoKind::ReposXySource,
    ];
    println!("# NX vs MPI on a 10x10 Paragon, equal distribution, s=30, L=4K");
    println!("algorithm,nx_ms,mpi_ms,loss_pct");
    for kind in kinds {
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 30,
            msg_len: 4096,
            kind,
        };
        let nx = exp.run_with_lib(LibraryKind::Nx).expect("run failed");
        let mpi = exp.run_with_lib(LibraryKind::Mpi).expect("run failed");
        assert!(nx.verified && mpi.verified);
        let loss = (mpi.makespan_ns as f64 - nx.makespan_ns as f64) / nx.makespan_ns as f64 * 100.0;
        println!(
            "{},{:.4},{:.4},{:.2}",
            kind.name(),
            nx.makespan_ms(),
            mpi.makespan_ms(),
            loss
        );
    }
}

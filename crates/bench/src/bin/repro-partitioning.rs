//! §5.2 (text result, no figure number): the partitioning approach
//! "hardly ever gives a better performance than repositioning alone" on
//! the Paragon — the final inter-group exchange of large messages
//! dominates. Compares `Br_xy_source`, `Repos_xy_source` and
//! `Part_xy_source` on a 16×16 Paragon.

use mpp_model::{LibraryKind, Machine};
use mpp_runtime::{run_simulated, Communicator};
use stp_bench::{print_figure, run_ms, sweep_algorithms_parallel};
use stp_core::algorithms::PartRecursive;
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(16, 16);
    let kinds = [
        AlgoKind::BrXySource,
        AlgoKind::ReposXySource,
        AlgoKind::PartXySource,
    ];

    let runner = SweepRunner::new();
    let ss = [16.0, 50.0, 75.0, 100.0, 150.0, 192.0];
    let series = sweep_algorithms_parallel(&runner, &kinds, &ss, machine.p(), |k, s| {
        run_ms(&machine, k, SourceDist::Cross, s as usize, 6 * 1024)
    });
    print_figure(
        "Partitioning: 16x16 Paragon, cross distribution, L=6K, time (ms) vs s",
        "s",
        &series,
    );

    let lens = [1024.0, 2048.0, 4096.0, 8192.0, 16384.0];
    let series = sweep_algorithms_parallel(&runner, &kinds, &lens, machine.p(), |k, len| {
        run_ms(&machine, k, SourceDist::SquareBlock, 75, len as usize)
    });
    print_figure(
        "Partitioning: 16x16 Paragon, square block, s=75, time (ms) vs L",
        "L",
        &series,
    );

    // Extension: does *deeper* recursive partitioning ever pay? (No —
    // the merge rounds of growing combined messages dominate harder.)
    let shape = machine.shape;
    let depth_ms = |depth: usize| {
        let alg = PartRecursive::new(BrXySource, depth, "PartRec");
        let sources = SourceDist::Cross.place(shape, 75);
        let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), 6 * 1024));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await.len()
        });
        assert!(out.results.iter().all(|&n| n == 75));
        out.makespan_ns as f64 / 1e6
    };
    println!("# Extension: recursive partitioning depth sweep (cross, s=75, L=6K)");
    println!("depth,ms");
    println!(
        "0 (Repos),{:.4}",
        run_ms(
            &machine,
            AlgoKind::ReposXySource,
            SourceDist::Cross,
            75,
            6 * 1024
        )
    );
    for depth in 1..=4 {
        println!("{depth},{:.4}", depth_ms(depth));
    }
}

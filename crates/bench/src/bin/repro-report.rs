//! Render the regenerated figure data (`results/*.txt`, produced by
//! `scripts/repro-all.sh`) into SVG charts plus a REPORT.md index —
//! the paper's figures as figures again.
//!
//! Numeric sweeps become line charts (log-x for the message-length
//! sweeps), categorical tables become grouped horizontal bars. Each
//! chart links back to its CSV (the accessible table view).

use std::fs;
use std::path::Path;

use stp_bench::plot::{parse_csv_blocks, Chart};

/// Files to render, with whether their x axis is exponential.
const FILES: &[(&str, bool)] = &[
    ("fig03", false),
    ("fig04", true),
    ("fig05", false),
    ("fig06", false),
    ("fig07", false),
    ("fig08", false),
    ("fig09", false),
    ("fig10", true),
    ("fig11", false),
    ("fig12", false),
    ("fig13", false),
    ("partitioning", false),
    ("nx-vs-mpi", false),
    ("varlen", false),
    ("dissem", false),
    ("hypercube", false),
    ("naive", false),
    ("contention", false),
];

fn main() {
    let results = Path::new("results");
    if !results.exists() {
        eprintln!("results/ not found — run scripts/repro-all.sh first");
        std::process::exit(1);
    }

    let mut report = String::from(
        "# Figure report\n\nRendered from the CSV outputs in this directory \
         (regenerate both with `scripts/repro-all.sh` then `repro-report`).\n\
         Each SVG's underlying numbers are in the `.txt` file of the same \
         name — the table view for the charts.\n\n",
    );
    let mut rendered = 0;

    for &(name, log_x) in FILES {
        let path = results.join(format!("{name}.txt"));
        let Ok(text) = fs::read_to_string(&path) else {
            eprintln!("skipping {name}: no {path:?}");
            continue;
        };
        let blocks = parse_csv_blocks(&text);
        if blocks.is_empty() {
            eprintln!("skipping {name}: no CSV blocks");
            continue;
        }
        for (i, block) in blocks.iter().enumerate() {
            let suffix = if blocks.len() > 1 {
                format!("-{}", i + 1)
            } else {
                String::new()
            };
            let svg_name = format!("{name}{suffix}.svg");
            let svg = if block.numeric_x() {
                let chart = Chart {
                    title: block.title.clone(),
                    x_label: block.x_name.clone(),
                    y_label: "time (ms)".into(),
                    series: block.to_series(),
                    log_x,
                };
                chart.to_svg()
            } else {
                Chart::to_svg_bars(
                    &block.row_keys,
                    &block.to_bar_series(),
                    &block.title,
                    "time (ms)",
                )
            };
            fs::write(results.join(&svg_name), svg).expect("write svg");
            report.push_str(&format!(
                "## {}\n\n![{name}]({svg_name})  \n[data]({name}.txt)\n\n",
                block.title
            ));
            rendered += 1;
        }
    }

    fs::write(results.join("REPORT.md"), report).expect("write report");
    println!("rendered {rendered} charts into results/ (+ REPORT.md)");
}

//! Message-level traces of two contrasting algorithms — a diagnostic
//! view of *why* the paper's results hold: 2-Step's ladder of serialized
//! arrivals at P₀ versus Br_Lin's balanced pairwise exchanges.

use mpp_model::{LibraryKind, Machine};
use mpp_runtime::{run_simulated_traced, Communicator};
use mpp_sim::{render_timeline, summarize};
use stp_core::prelude::*;

fn main() {
    let machine = Machine::paragon(4, 4);
    let shape = machine.shape;
    let sources = SourceDist::Equal.place(shape, 8);

    for kind in [AlgoKind::TwoStep, AlgoKind::BrLin] {
        let alg = kind.build();
        let out = run_simulated_traced(&machine, LibraryKind::Nx, async |comm| {
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), 1024));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await.len()
        });
        let summary = summarize(&out.trace);
        println!(
            "== {} on 4x4 Paragon, s=8, L=1K: {} msgs, {} KiB, {:.3} ms, stalled {:.3} ms ==",
            kind.name(),
            summary.messages,
            summary.bytes / 1024,
            out.makespan_ms(),
            summary.stalled_ns as f64 / 1e6,
        );
        println!("{}", render_timeline(&out.trace, machine.p(), 72));
    }
}

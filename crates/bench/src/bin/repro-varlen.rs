//! §5 (text result): "In our experiments, using different length
//! messages did not influence the performance of the algorithms
//! significantly. In particular, for a given algorithm, a good
//! distribution remains a good distribution when the length of messages
//! varies."
//!
//! Compares uniform-length runs against mixed-length runs with the same
//! total volume, across distributions, and checks that the good/poor
//! ordering is preserved.

use mpp_model::Machine;
use stp_core::prelude::*;
use stp_core::runner::run_sources;

fn main() {
    let machine = Machine::paragon(10, 10);
    let s = 30;
    let uniform_len = 4096usize;

    println!("# 10x10 Paragon, s=30, Br_xy_source: uniform 4K vs mixed lengths (same total)");
    println!("dist,uniform_ms,mixed_ms,delta_pct");
    let mut uniform_order = Vec::new();
    let mut mixed_order = Vec::new();
    for dist in SourceDist::paper_set() {
        let sources = dist.place(machine.shape, s);
        let uniform = run_sources(
            &machine,
            mpp_model::LibraryKind::Nx,
            &sources,
            &|src| payload_for(src, uniform_len),
            AlgoKind::BrXySource,
        )
        .expect("run failed");
        // Mixed: alternate 2K / 4K / 6K by source index — same total.
        let mixed_len = |src: usize| match src % 3 {
            0 => 2048,
            1 => 4096,
            _ => 6144,
        };
        let mixed = run_sources(
            &machine,
            mpp_model::LibraryKind::Nx,
            &sources,
            &|src| payload_for(src, mixed_len(src)),
            AlgoKind::BrXySource,
        )
        .expect("run failed");
        assert!(uniform.verified && mixed.verified);
        let delta = (mixed.makespan_ms() - uniform.makespan_ms()) / uniform.makespan_ms() * 100.0;
        println!(
            "{},{:.4},{:.4},{:+.1}",
            dist.name(),
            uniform.makespan_ms(),
            mixed.makespan_ms(),
            delta
        );
        uniform_order.push((dist.name(), uniform.makespan_ns));
        mixed_order.push((dist.name(), mixed.makespan_ns));
    }
    uniform_order.sort_by_key(|&(_, t)| t);
    mixed_order.sort_by_key(|&(_, t)| t);
    let same_ranking = uniform_order
        .iter()
        .map(|&(n, _)| n)
        .eq(mixed_order.iter().map(|&(n, _)| n));
    println!(
        "\ndistribution ranking preserved under mixed lengths: {}",
        if same_ranking {
            "yes"
        } else {
            "mostly (see rows above)"
        }
    );
}

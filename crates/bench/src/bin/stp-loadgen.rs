//! `stp-loadgen` — replay a zipfian planning workload against a
//! running `stp serve` daemon and report serving-path latency.
//!
//! ```text
//! stp-loadgen --addr 127.0.0.1:7411 [--requests N] [--conns C]
//!             [--universe U] [--zipf S] [--chaos PCT] [--seed N]
//!             [--json FILE]
//! ```
//!
//! The generator draws `--requests` requests from a universe of
//! `--universe` distinct grid points (machine × distribution × s × L ×
//! ports) under a zipfian rank distribution (`--zipf`, default 1.0):
//! like a real planning service, a few hot shapes dominate and a long
//! tail stays cold. `--chaos PCT` salts the stream with malformed
//! lines and deliberately panicking plan requests — the daemon must
//! answer each with an error response and keep serving.
//!
//! Latencies are host wall-clock (the one place wall time is the
//! measurement, not the simulation's virtual time — field names say
//! `_us` and the JSON record carries `"unit":"host_wall_us"`). Cached
//! and cold responses are classified by the daemon's own `"cached"`
//! flag, so the p50/p95/p99 split shows exactly what the
//! content-addressed cache buys.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Instant;

/// SplitMix64 — deterministic, seedable, no external crates.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The request-template universe: distinct grid points, hottest first
/// (rank 0 is the most popular under the zipfian draw).
fn build_universe(n: usize) -> Vec<String> {
    let machines = [
        ("paragon", 10, 10),
        ("paragon", 4, 4),
        ("paragon", 8, 4),
        ("paragon", 16, 16),
        ("t3d", 0, 0), // p taken from the s loop below
    ];
    let dists = ["row", "equal", "cross", "band", "diag_right", "column"];
    let lens = [1024usize, 4096, 16384, 256];
    let ports = [1usize, 5];
    let mut out = Vec::with_capacity(n);
    'fill: for &len in &lens {
        for &(machine, rows, cols) in &machines {
            for &port in &ports {
                for &dist in &dists {
                    if out.len() >= n {
                        break 'fill;
                    }
                    let (shape, p) = if machine == "t3d" {
                        ("\"p\":128".to_string(), 128)
                    } else {
                        (format!("\"rows\":{rows},\"cols\":{cols}"), rows * cols)
                    };
                    let s = (p / 3).max(2);
                    out.push(format!(
                        "{{\"machine\":\"{machine}\",{shape},\"ports\":{port},\"dist\":\"{dist}\",\"s\":{s},\"L\":{len},\"algo\":\"auto\"}}"
                    ));
                }
            }
        }
    }
    out
}

/// Zipfian CDF over `n` ranks with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

enum Conn {
    Tcp(BufReader<TcpStream>, TcpStream),
    Unix(BufReader<UnixStream>, UnixStream),
}

impl Conn {
    fn open(addr: &str) -> std::io::Result<Conn> {
        if let Some(path) = addr
            .strip_prefix("unix:")
            .or_else(|| addr.starts_with('/').then_some(addr))
        {
            let stream = UnixStream::connect(path)?;
            Ok(Conn::Unix(BufReader::new(stream.try_clone()?), stream))
        } else {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(Conn::Tcp(BufReader::new(stream.try_clone()?), stream))
        }
    }

    /// Send one line, read one response line.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        let mut response = String::new();
        match self {
            Conn::Tcp(reader, writer) => {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                reader.read_line(&mut response)?;
            }
            Conn::Unix(reader, writer) => {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                reader.read_line(&mut response)?;
            }
        }
        Ok(response)
    }
}

#[derive(Default)]
struct Tally {
    warm_us: Vec<u64>,
    cold_us: Vec<u64>,
    errors: usize,
    quarantined: usize,
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn worker(
    addr: &str,
    requests: usize,
    universe: &[String],
    cdf: &[f64],
    chaos_pct: f64,
    seed: u64,
) -> std::io::Result<Tally> {
    let mut conn = Conn::open(addr)?;
    let mut rng = SplitMix64(seed);
    let mut tally = Tally::default();
    for i in 0..requests {
        let chaos = chaos_pct > 0.0 && rng.unit() * 100.0 < chaos_pct;
        let line: &str = if chaos {
            // Alternate malformed input, a bad field, and a genuinely
            // panicking plan — the three failure surfaces.
            match i % 3 {
                0 => "this is not json",
                1 => "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"s\":4,\"algo\":\"nope\"}",
                _ => {
                    "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"equal\",\"s\":2,\
                     \"L\":64,\"algo\":\"chaos:panic\"}"
                }
            }
        } else {
            let u = rng.unit();
            let rank = cdf.partition_point(|&c| c < u).min(universe.len() - 1);
            &universe[rank]
        };
        let t0 = Instant::now();
        let response = conn.round_trip(line)?;
        let us = t0.elapsed().as_micros() as u64;
        if response.contains("\"status\":\"ok\"") {
            if response.contains("\"cached\":true") {
                tally.warm_us.push(us);
            } else {
                tally.cold_us.push(us);
            }
        } else {
            tally.errors += 1;
            if response.contains("\"quarantined\":true") {
                tally.quarantined += 1;
            }
        }
    }
    Ok(tally)
}

fn usage() -> ! {
    eprintln!("usage: stp-loadgen --addr HOST:PORT|unix:PATH [--requests N] [--conns C]");
    eprintln!("                   [--universe U] [--zipf S] [--chaos PCT] [--seed N]");
    eprintln!("                   [--json FILE]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let addr = get("--addr").unwrap_or_else(|| usage());
    let requests: usize = get("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let conns: usize = get("--conns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .clamp(1, 64);
    let universe_n: usize = get("--universe")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1);
    let zipf: f64 = get("--zipf").and_then(|v| v.parse().ok()).unwrap_or(1.0);
    let chaos_pct: f64 = get("--chaos").and_then(|v| v.parse().ok()).unwrap_or(0.0);
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);

    let universe = build_universe(universe_n);
    let cdf = zipf_cdf(universe.len(), zipf);

    let t0 = Instant::now();
    let per_conn = requests.div_ceil(conns);
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let (addr, universe, cdf) = (&addr, &universe, &cdf);
                let n = per_conn.min(requests.saturating_sub(c * per_conn));
                scope.spawn(move || {
                    worker(addr, n, universe, cdf, chaos_pct, seed ^ (c as u64) << 32)
                        .unwrap_or_else(|e| {
                            eprintln!("stp-loadgen: connection {c}: {e}");
                            std::process::exit(1);
                        })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let mut warm: Vec<u64> = Vec::new();
    let mut cold: Vec<u64> = Vec::new();
    let (mut errors, mut quarantined) = (0usize, 0usize);
    for t in tallies {
        warm.extend(t.warm_us);
        cold.extend(t.cold_us);
        errors += t.errors;
        quarantined += t.quarantined;
    }
    warm.sort_unstable();
    cold.sort_unstable();
    let total = warm.len() + cold.len() + errors;
    let hit_rate = if warm.len() + cold.len() > 0 {
        warm.len() as f64 / (warm.len() + cold.len()) as f64
    } else {
        0.0
    };

    // The daemon's own counters + peak RSS, over a fresh connection.
    let peak_rss_kb = Conn::open(&addr)
        .and_then(|mut c| c.round_trip("{\"cmd\":\"stats\"}"))
        .ok()
        .and_then(|stats| {
            let tail = stats.split("\"peak_rss_kb\":").nth(1)?;
            tail.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse::<u64>()
                .ok()
        })
        .unwrap_or(0);

    println!(
        "{total} requests over {conns} connection(s) in {wall_s:.2}s ({:.0} req/s)",
        total as f64 / wall_s.max(1e-9)
    );
    println!(
        "cache: {} hits / {} cold ({:.1}% hit rate)   errors: {errors} ({quarantined} quarantined)",
        warm.len(),
        cold.len(),
        hit_rate * 100.0
    );
    println!(
        "warm  p50 {:>7} us   p95 {:>7} us   p99 {:>7} us",
        percentile(&warm, 50.0),
        percentile(&warm, 95.0),
        percentile(&warm, 99.0)
    );
    println!(
        "cold  p50 {:>7} us   p95 {:>7} us   p99 {:>7} us",
        percentile(&cold, 50.0),
        percentile(&cold, 95.0),
        percentile(&cold, 99.0)
    );
    println!("daemon peak RSS: {peak_rss_kb} kB");

    if let Some(path) = get("--json") {
        // One BENCH-style record. Every latency field is HOST wall
        // time in microseconds — these are serving-path numbers and
        // must never be mistaken for the simulator's virtual times.
        let record = format!(
            "{{\"id\":\"serve_loadgen\",\"unit\":\"host_wall_us\",\"requests\":{total},\
             \"conns\":{conns},\"universe\":{},\"zipf\":{zipf},\"chaos_pct\":{chaos_pct},\
             \"hits\":{},\"cold\":{},\"hit_rate\":{hit_rate:.4},\
             \"warm_p50_us\":{},\"warm_p95_us\":{},\"warm_p99_us\":{},\
             \"cold_p50_us\":{},\"cold_p95_us\":{},\"cold_p99_us\":{},\
             \"errors\":{errors},\"quarantined\":{quarantined},\
             \"wall_s\":{wall_s:.3},\"daemon_peak_rss_kb\":{peak_rss_kb}}}",
            universe.len(),
            warm.len(),
            cold.len(),
            percentile(&warm, 50.0),
            percentile(&warm, 95.0),
            percentile(&warm, 99.0),
            percentile(&cold, 50.0),
            percentile(&cold, 95.0),
            percentile(&cold, 99.0),
        );
        std::fs::write(&path, &record).expect("write JSON record");
        eprintln!("[loadgen] record written to {path}");
    }
}

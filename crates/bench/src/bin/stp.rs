//! `stp` — command-line driver for one-off experiments.
//!
//! ```text
//! stp --machine paragon --rows 10 --cols 10 --algo br_xy_source \
//!     --dist cross --s 30 --len 4096 [--lib mpi] [--metrics] [--trace]
//! stp --machine t3d --p 128 --algo mpi_alltoall --dist equal --s 40 --len 4096
//! stp --machine paragon --algo two_step --dist equal --s 30 --sweep-len 32,1024,16384
//! stp lint [--quick] [--fixtures] [--json FILE] [--max-link-load N]
//! stp --list
//! ```
//!
//! `stp lint` records the symbolic communication schedule of every
//! algorithm over the full distribution × mesh matrix and runs the
//! `stp-analyzer` static checks (deadlock, unmatched sends, match
//! ambiguity, payload leaks, link contention) on each; `--fixtures`
//! instead checks that the seeded-bug fixtures are all caught. Exits
//! non-zero on any finding or missed fixture — the CI gate.
//!
//! `--sweep-len` runs the same experiment at several message lengths;
//! the points are independent simulations and execute concurrently on a
//! [`SweepRunner`] (`STP_SWEEP_WORKERS` / `STP_SWEEP_RANK_BUDGET` apply).

use mpp_model::{FaultPlan, LibraryKind, Machine};
use mpp_runtime::{run_simulated_with, Communicator, SimConfig};
use mpp_sim::{render_timeline, summarize};
use stp_core::metrics::{figure2_row, format_table};
use stp_core::prelude::*;
use stp_core::runner::run_sources_faulty;

fn usage() -> ! {
    eprintln!("usage: stp --machine <paragon|t3d> [--rows R --cols C | --p P]");
    eprintln!("           --algo <name> --dist <name> --s <n> --len <bytes>");
    eprintln!("           [--lib <nx|mpi>] [--seed <n>] [--metrics] [--trace] [--predict]");
    eprintln!("           [--sweep-len L1,L2,...]   (parallel sweep over message lengths)");
    eprintln!("           [--exec coop|threaded]    (simulation executor; default coop)");
    eprintln!("           [--faults SPEC]           (inject faults, e.g.");
    eprintln!("                                      'seed=7,drop=1/64,retry=4:500' or");
    eprintln!("                                      'link=3-4@1000..,crash=5@2000')");
    eprintln!("       stp lint [--quick] [--fixtures] [--json FILE] [--max-link-load N]");
    eprintln!("                [--exec coop|threaded] [--faults SPEC]");
    eprintln!("       stp --list       (show algorithm and distribution names)");
    std::process::exit(2);
}

/// Parse the `--faults` spec (shared by `stp run` and `stp lint`).
fn parse_faults_flag(spec: Option<String>) -> Option<FaultPlan> {
    spec.map(|spec| match FaultPlan::parse(&spec) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("--faults: {e}");
            usage()
        }
    })
}

use stp_bench::{parse_algo, parse_dist};

/// `stp lint`: the static schedule-analysis gate.
fn run_lint(args: &[String]) -> ! {
    use stp_analyzer::{fixtures_to_json, lint_fixtures, lint_matrix, LintConfig};

    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let json_path = get("--json");
    stp_analyzer::hush_expected_panics();

    if has("--fixtures") {
        let verdicts = lint_fixtures();
        let failed = verdicts.iter().filter(|v| !v.pass).count();
        for v in &verdicts {
            let detected: Vec<&str> = v.detected.iter().map(|k| k.name()).collect();
            println!(
                "fixture {:<22} expected {:<16} detected [{}]  {}",
                v.name,
                v.expected.name(),
                detected.join(", "),
                if v.pass { "ok" } else { "MISSED" }
            );
        }
        if let Some(path) = json_path {
            std::fs::write(&path, fixtures_to_json(&verdicts)).expect("write JSON report");
            eprintln!("[lint] report written to {path}");
        }
        println!("{} fixture(s), {} missed", verdicts.len(), failed);
        std::process::exit(if failed > 0 { 1 } else { 0 });
    }

    let mut config = if has("--quick") {
        LintConfig::quick()
    } else {
        LintConfig::default()
    };
    config.max_link_load = get("--max-link-load").and_then(|v| v.parse().ok());
    config.faults = parse_faults_flag(get("--faults"));
    let t0 = std::time::Instant::now();
    let entries = lint_matrix(&config);
    let wall = t0.elapsed();
    let dirty: Vec<_> = entries.iter().filter(|e| !e.findings.is_empty()).collect();
    for e in &dirty {
        for f in &e.findings {
            println!(
                "{} / {} on {}x{} s={}: [{}] {}",
                e.algo,
                e.dist,
                e.rows,
                e.cols,
                e.s,
                f.kind.name(),
                f.detail
            );
        }
    }
    let findings: usize = dirty.iter().map(|e| e.findings.len()).sum();
    let opaque = entries.iter().filter(|e| e.opaque_payloads).count();
    let exec = mpp_sim::ExecMode::from_env();
    println!(
        "linted {} schedules in {:.1}s on the {} executor: {findings} finding(s), {opaque} with unattributable payloads",
        entries.len(),
        wall.as_secs_f64(),
        exec.name()
    );
    if config.faults.is_some() {
        let drops: usize = entries.iter().map(|e| e.dropped_attempts).sum();
        println!("fault plan active: {drops} transmission attempt(s) dropped across the matrix");
    }
    if let Some(path) = json_path {
        let report = stp_analyzer::lint_report_json(&entries, exec.name(), wall.as_secs_f64());
        std::fs::write(&path, report).expect("write JSON report");
        eprintln!("[lint] report written to {path}");
    }
    std::process::exit(if findings > 0 { 1 } else { 0 });
}

/// Apply `--exec coop|threaded` by exporting `STP_EXEC` before any
/// simulation starts — every later `ExecMode::from_env()` (SweepRunner,
/// SimConfig::default) then agrees with the flag.
fn apply_exec_flag(args: &[String]) {
    let Some(i) = args.iter().position(|a| a == "--exec") else {
        return;
    };
    match args.get(i + 1).map(String::as_str) {
        Some("coop") | Some("cooperative") => std::env::set_var("STP_EXEC", "coop"),
        Some("threaded") | Some("threads") => std::env::set_var("STP_EXEC", "threaded"),
        other => {
            eprintln!("--exec wants coop|threaded, got {other:?}");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    apply_exec_flag(&args);
    if args.first().map(String::as_str) == Some("lint") {
        run_lint(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        println!("algorithms:");
        for k in AlgoKind::all() {
            println!("  {}", k.name());
        }
        println!(
            "distributions: row column equal diag_right diag_left band cross square_block random"
        );
        return;
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    let machine_kind = get("--machine").unwrap_or_else(|| usage());
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let machine = match machine_kind.as_str() {
        "paragon" => {
            let rows: usize = get("--rows").and_then(|v| v.parse().ok()).unwrap_or(10);
            let cols: usize = get("--cols").and_then(|v| v.parse().ok()).unwrap_or(10);
            Machine::paragon(rows, cols)
        }
        "t3d" => {
            let p: usize = get("--p").and_then(|v| v.parse().ok()).unwrap_or(128);
            Machine::t3d(p, seed)
        }
        other => {
            eprintln!("unknown machine '{other}'");
            usage()
        }
    };

    let algo_name = get("--algo").unwrap_or_else(|| usage());
    let Some(kind) = parse_algo(&algo_name) else {
        eprintln!("unknown algorithm '{algo_name}' (try --list)");
        usage()
    };
    let dist_name = get("--dist").unwrap_or_else(|| usage());
    let Some(dist) = parse_dist(&dist_name, seed) else {
        eprintln!("unknown distribution '{dist_name}' (try --list)");
        usage()
    };
    let s: usize = get("--s")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let len: usize = get("--len").and_then(|v| v.parse().ok()).unwrap_or(4096);
    let lib = match get("--lib").as_deref() {
        Some("mpi") => LibraryKind::Mpi,
        Some("nx") | None => kind.default_lib(),
        Some(other) => {
            eprintln!("unknown library '{other}'");
            usage()
        }
    };

    let faults = parse_faults_flag(get("--faults"));
    let sources = dist.place(machine.shape, s);
    println!(
        "machine {}  p={}  algo {}  dist {}({s})  L={len}B  lib {}",
        machine.name,
        machine.p(),
        kind.name(),
        dist.name(),
        lib.name()
    );

    if has("--predict") {
        match stp_core::predict::estimate_ms(&machine, kind, s, len) {
            Some(ms) => println!("analytic (contention-free) estimate: {ms:.3} ms"),
            None => println!("no closed-form estimate for this algorithm"),
        }
    }

    if let Some(spec) = get("--sweep-len") {
        let lens: Vec<usize> = spec
            .split(',')
            .filter_map(|v| v.trim().parse().ok())
            .collect();
        if lens.is_empty() {
            eprintln!("--sweep-len wants a comma-separated list of byte lengths");
            usage()
        }
        let machine = &machine;
        let grid: Vec<Experiment> = lens
            .iter()
            .map(|&msg_len| Experiment {
                machine,
                dist: dist.clone(),
                s,
                msg_len,
                kind,
            })
            .collect();
        let runner = SweepRunner::new();
        let t0 = std::time::Instant::now();
        let outcomes = match &faults {
            Some(plan) => runner.map(grid, |e| e.machine.p(), |e| e.run_with_faults(plan)),
            None => runner.run_experiments(&grid),
        };
        let wall = t0.elapsed();
        println!("L,ms,verified");
        for (len, out) in lens.iter().zip(&outcomes) {
            println!("{len},{:.4},{}", out.makespan_ms(), out.verified);
        }
        eprintln!(
            "[sweep] {} lengths on {} workers in {:.3}s",
            lens.len(),
            runner.workers(),
            wall.as_secs_f64()
        );
        return;
    }

    if has("--trace") {
        let shape = machine.shape;
        let alg = kind.build();
        let config = SimConfig {
            lib,
            trace: true,
            faults: faults.clone(),
            ..SimConfig::default()
        };
        let out = run_simulated_with(&machine, &config, async |comm| {
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await.len() == sources.len()
        });
        assert!(out.results.iter().all(|&ok| ok), "verification failed");
        let sum = summarize(&out.trace);
        println!(
            "time {:.3} ms   messages {}   bytes {}   stalled {:.3} ms",
            out.makespan_ms(),
            sum.messages,
            sum.bytes,
            sum.stalled_ns as f64 / 1e6
        );
        println!("{}", render_timeline(&out.trace, machine.p().min(32), 72));
        return;
    }

    let copy_before = mpp_sim::copy_metrics();
    let out = run_sources_faulty(
        &machine,
        lib,
        &sources,
        &|src| payload_for(src, len),
        kind,
        faults.as_ref(),
    );
    println!(
        "time {:.3} ms   verified {}   contention stalls {} ({:.3} ms)",
        out.makespan_ms(),
        out.verified,
        out.contention_events,
        out.contention_ns as f64 / 1e6
    );
    if faults.is_some() {
        let retransmits: u64 = out.stats.iter().map(|s| s.retransmits).sum();
        let dropped: u64 = out.stats.iter().map(|s| s.dropped).sum();
        let rerouted: u64 = out.stats.iter().map(|s| s.rerouted_hops).sum();
        let detour_ns: u64 = out.stats.iter().map(|s| s.detour_ns).sum();
        println!(
            "faults: {retransmits} retransmit(s)   {dropped} message(s) lost   \
             {rerouted} detour hop(s) (+{:.3} ms)",
            detour_ns as f64 / 1e6
        );
    }
    if has("--copy-stats") {
        // One JSON record of host-side copy accounting: comm-layer
        // copies (zero on the rope path) plus real copies inside
        // `Payload` itself, against the virtual traffic volume.
        // `scripts/bench-smoke.sh` appends this to BENCH_sweep.json.
        let delta = mpp_sim::copy_metrics().since(&copy_before);
        let comm_copied: u64 = out.stats.iter().map(|s| s.bytes_copied).sum();
        let comm_allocs: u64 = out.stats.iter().map(|s| s.allocs).sum();
        let traffic: u64 = out.stats.iter().map(|s| s.total_bytes()).sum();
        println!(
            "{{\"id\":\"copy_stats/{}/s{s}/L{len}\",\"comm_bytes_copied\":{comm_copied},\
             \"comm_allocs\":{comm_allocs},\"payload_bytes_copied\":{},\
             \"payload_allocs\":{},\"traffic_bytes\":{traffic}}}",
            kind.name(),
            delta.bytes_copied,
            delta.allocs
        );
    }
    if has("--metrics") {
        let row = figure2_row(kind.name(), &out.stats);
        println!("\n{}", format_table(&[row]));
        if let Some(q) = stp_core::quality::placement_quality(machine.shape, &sources, kind) {
            println!("placement quality for {}: {q:.2}", kind.name());
        }
    }
}

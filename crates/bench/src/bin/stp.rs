//! `stp` — command-line driver for one-off experiments.
//!
//! ```text
//! stp --machine paragon --rows 10 --cols 10 --algo br_xy_source \
//!     --dist cross --s 30 --len 4096 [--lib mpi] [--metrics] [--trace]
//! stp --machine t3d --p 128 --algo mpi_alltoall --dist equal --s 40 --len 4096
//! stp --machine paragon --algo two_step --dist equal --s 30 --sweep-len 32,1024,16384
//! stp lint [--quick] [--fixtures] [--json FILE] [--max-link-load N]
//!          [--perf] [--baseline FILE] [--write-baseline FILE] [--sarif FILE]
//!          [--chaos] [--checkpoint FILE] [--resume] [--deadline-ms N]
//! stp sweep [--quick] [--len BYTES] [--json FILE] [--chaos]
//!           [--checkpoint FILE] [--resume] [--deadline-ms N]
//! stp --list
//! ```
//!
//! `stp lint` records the symbolic communication schedule of every
//! algorithm over the full distribution × mesh matrix and runs the
//! `stp-analyzer` static checks (deadlock, unmatched sends, match
//! ambiguity, payload leaks, link contention) on each; `--fixtures`
//! instead checks that the seeded-bug fixtures are all caught. Exits
//! non-zero on any finding or missed fixture — the CI gate.
//!
//! `--perf` additionally replays every schedule through the static cost
//! engine (`stp-analyzer::cost`) and runs the performance lints on top:
//! idle ports, serialization hotspots, contention-dominated critical
//! paths, redundant transmissions, and distance from the α–β lower
//! bound. Cost-model conformance (static replay == kernel virtual time,
//! exactly) is always checked when the engine runs; a divergence is an
//! Error and can never be baselined. `--baseline FILE` suppresses the
//! accepted Warn/Info findings listed in FILE; `--write-baseline FILE`
//! captures the current sweep's Warn/Info findings as the new baseline;
//! `--sarif FILE` writes the findings as a SARIF 2.1.0 log (suppressed
//! findings are marked, not dropped).
//!
//! `stp sweep` runs the experiment grid (makespans instead of schedule
//! analysis) under the supervised runner. Both sweeps accept `--chaos`
//! (inject a deliberately panicking and a deliberately deadlocking
//! algorithm — every healthy point must still finish, the bad ones are
//! quarantined into the failure report), `--deadline-ms` (wall-clock
//! budget; unfinished points are skipped, not failed) and
//! `--checkpoint`/`--resume` (persist finished points after each grid
//! point; a resumed sweep replays them verbatim and re-runs nothing,
//! producing a byte-identical report).
//!
//! `--sweep-len` runs the same experiment at several message lengths;
//! the points are independent simulations and execute concurrently on a
//! [`SweepRunner`] (`STP_SWEEP_WORKERS` / `STP_SWEEP_RANK_BUDGET` apply).

use mpp_model::{FaultPlan, LibraryKind, Machine};
use mpp_runtime::{run_simulated_with, Communicator, SimConfig};
use mpp_sim::{render_timeline, summarize};
use stp_core::metrics::{figure2_row, format_table};
use stp_core::prelude::*;
use stp_core::runner::run_sources_faulty;

fn usage() -> ! {
    eprintln!("usage: stp --machine <paragon|t3d> [--rows R --cols C | --p P]");
    eprintln!("           --algo <name> --dist <name> --s <n> --len <bytes>");
    eprintln!("           [--lib <nx|mpi>] [--seed <n>] [--metrics] [--trace] [--predict]");
    eprintln!("           [--ports K]               (ports per node; overrides the machine's");
    eprintln!("                                      default, e.g. a 5-port Paragon)");
    eprintln!("           [--sweep-len L1,L2,...]   (parallel sweep over message lengths)");
    eprintln!("           [--exec coop|threaded]    (simulation executor; default coop)");
    eprintln!("           [--faults SPEC]           (inject faults, e.g.");
    eprintln!("                                      'seed=7,drop=1/64,retry=4:500' or");
    eprintln!("                                      'link=3-4@1000..,crash=5@2000')");
    eprintln!("       stp lint [--quick] [--fixtures] [--json FILE] [--max-link-load N]");
    eprintln!("                [--perf]                  (cost engine + performance lints)");
    eprintln!("                [--baseline FILE]         (suppress accepted Warn/Info findings)");
    eprintln!("                [--write-baseline FILE]   (capture current findings as baseline)");
    eprintln!("                [--sarif FILE]            (write SARIF 2.1.0 report)");
    eprintln!("                [--exec coop|threaded] [--faults SPEC] [--chaos]");
    eprintln!("                [--checkpoint FILE] [--resume] [--deadline-ms N]");
    eprintln!("       stp sweep [--quick] [--len BYTES] [--json FILE] [--exec coop|threaded]");
    eprintln!("                 [--faults SPEC] [--chaos] [--checkpoint FILE] [--resume]");
    eprintln!("                 [--deadline-ms N]");
    eprintln!("       stp serve [--addr HOST:PORT|unix:PATH] [--cache FILE] [--cache-cap N]");
    eprintln!("                 [--workers N] [--deadline-ms N]");
    eprintln!("                 (long-running planning daemon; newline-delimited JSON");
    eprintln!("                  requests, content-addressed plan cache — see README)");
    eprintln!("       stp --list       (show algorithm and distribution names)");
    std::process::exit(2);
}

/// Parse the `--faults` spec (shared by `stp run` and `stp lint`).
fn parse_faults_flag(spec: Option<String>) -> Option<FaultPlan> {
    spec.map(|spec| match FaultPlan::parse(&spec) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("--faults: {e}");
            usage()
        }
    })
}

use stp_bench::{parse_algo, parse_dist};

/// `stp lint`: the static schedule-analysis gate.
fn run_lint(args: &[String]) -> ! {
    use stp_analyzer::{fixtures_to_json, lint_fixtures, lint_matrix, LintConfig};

    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let json_path = get("--json");
    stp_analyzer::hush_expected_panics();

    if has("--fixtures") {
        let verdicts = lint_fixtures();
        let failed = verdicts.iter().filter(|v| !v.pass).count();
        for v in &verdicts {
            let detected: Vec<&str> = v.detected.iter().map(|k| k.name()).collect();
            println!(
                "fixture {:<22} expected {:<16} detected [{}]  {}",
                v.name,
                v.expected.name(),
                detected.join(", "),
                if v.pass { "ok" } else { "MISSED" }
            );
        }
        if let Some(path) = json_path {
            std::fs::write(&path, fixtures_to_json(&verdicts)).expect("write JSON report");
            eprintln!("[lint] report written to {path}");
        }
        println!("{} fixture(s), {} missed", verdicts.len(), failed);
        std::process::exit(if failed > 0 { 1 } else { 0 });
    }

    let mut config = if has("--quick") {
        LintConfig::quick()
    } else {
        LintConfig::default()
    };
    config.max_link_load = get("--max-link-load").and_then(|v| v.parse().ok());
    config.faults = parse_faults_flag(get("--faults"));
    config.chaos = has("--chaos");
    config.perf = has("--perf");
    let baseline = get("--baseline").map(|path| load_baseline(&path));
    let sarif_path = get("--sarif");
    let write_baseline = get("--write-baseline");

    // Any supervision flag routes through the supervised sweep; the
    // plain path stays for the legacy wall-clock report format.
    let supervised = config.chaos
        || has("--resume")
        || get("--checkpoint").is_some()
        || get("--deadline-ms").is_some();
    if supervised {
        run_lint_supervised(
            &config,
            &get,
            &has,
            json_path.as_deref(),
            baseline.as_ref(),
            sarif_path.as_deref(),
            write_baseline.as_deref(),
        );
    }

    let t0 = std::time::Instant::now();
    let entries = lint_matrix(&config);
    let wall = t0.elapsed();
    let (findings, baselined) = print_lint_findings(&entries, baseline.as_ref());
    let opaque = entries.iter().filter(|e| e.opaque_payloads).count();
    let exec = mpp_sim::ExecMode::from_env();
    println!(
        "linted {} schedules in {:.1}s on the {} executor: {findings} finding(s), {baselined} baselined, {opaque} with unattributable payloads",
        entries.len(),
        wall.as_secs_f64(),
        exec.name()
    );
    if config.faults.is_some() {
        let drops: usize = entries.iter().map(|e| e.dropped_attempts).sum();
        println!("fault plan active: {drops} transmission attempt(s) dropped across the matrix");
    }
    if let Some(path) = json_path {
        let report = stp_analyzer::lint_report_json(&entries, exec.name(), wall.as_secs_f64());
        std::fs::write(&path, report).expect("write JSON report");
        eprintln!("[lint] report written to {path}");
    }
    let bad = write_lint_artifacts(
        &entries,
        baseline.as_ref(),
        sarif_path.as_deref(),
        write_baseline.as_deref(),
        findings,
    );
    std::process::exit(if bad { 1 } else { 0 });
}

/// Read and parse a `--baseline` file, exiting with usage status on
/// failure — a malformed baseline must not silently un-suppress.
fn load_baseline(path: &str) -> stp_analyzer::Baseline {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("stp: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    stp_analyzer::Baseline::parse(&text).unwrap_or_else(|e| {
        eprintln!("stp: bad baseline {path}: {e}");
        std::process::exit(2);
    })
}

/// Write the `--sarif` / `--write-baseline` artifacts and decide the
/// gate: with `--write-baseline` only Error-severity findings fail (the
/// Warn/Info set was just accepted into the new baseline); otherwise any
/// unsuppressed finding fails.
fn write_lint_artifacts(
    entries: &[stp_analyzer::LintEntry],
    baseline: Option<&stp_analyzer::Baseline>,
    sarif_path: Option<&str>,
    write_baseline: Option<&str>,
    unsuppressed: usize,
) -> bool {
    if let Some(path) = sarif_path {
        std::fs::write(path, stp_analyzer::sarif_report(entries, baseline))
            .expect("write SARIF report");
        eprintln!("[lint] SARIF written to {path}");
    }
    if let Some(path) = write_baseline {
        let captured = stp_analyzer::Baseline::from_entries(entries);
        std::fs::write(path, captured.to_json()).expect("write baseline");
        eprintln!(
            "[lint] baseline with {} accepted finding(s) written to {path}",
            captured.suppress.len()
        );
        let errors = entries
            .iter()
            .flat_map(|e| &e.findings)
            .filter(|f| f.severity() == stp_analyzer::Severity::Error)
            .count();
        errors > 0
    } else {
        unsuppressed > 0
    }
}

/// Print every unsuppressed finding of the lint entries; returns
/// `(unsuppressed, baselined)` counts.
fn print_lint_findings(
    entries: &[stp_analyzer::LintEntry],
    baseline: Option<&stp_analyzer::Baseline>,
) -> (usize, usize) {
    let mut findings = 0;
    let mut baselined = 0;
    for e in entries.iter().filter(|e| !e.findings.is_empty()) {
        for f in &e.findings {
            if baseline.is_some_and(|b| b.suppresses(e, f)) {
                baselined += 1;
                continue;
            }
            println!(
                "{} / {} on {}x{} s={}: [{}/{}] {}",
                e.algo,
                e.dist,
                e.rows,
                e.cols,
                e.s,
                f.kind.name(),
                f.severity().name(),
                f.detail
            );
            findings += 1;
        }
    }
    (findings, baselined)
}

/// Resolve the `--checkpoint`/`--resume` pair into an open checkpoint
/// store (shared by `stp lint` and `stp sweep`). Without `--resume` any
/// previous progress file is discarded so the sweep starts fresh.
fn open_checkpoint(
    get: &dyn Fn(&str) -> Option<String>,
    has: &dyn Fn(&str) -> bool,
    default_path: &str,
    sig: &str,
) -> Option<stp_core::checkpoint::CheckpointFile> {
    let path = get("--checkpoint");
    if path.is_none() && !has("--resume") {
        return None;
    }
    let path = path.unwrap_or_else(|| default_path.to_string());
    if !has("--resume") {
        let _ = std::fs::remove_file(&path);
    }
    let cp = stp_core::checkpoint::CheckpointFile::open(&path, sig).unwrap_or_else(|e| {
        eprintln!("stp: cannot open checkpoint {path}: {e}");
        std::process::exit(2);
    });
    if cp.completed() > 0 {
        eprintln!(
            "[resume] {} finished point(s) found in {path}; replaying them verbatim",
            cp.completed()
        );
    }
    Some(cp)
}

/// Build the sweep supervision options from the CLI flags (on top of
/// `STP_SWEEP_DEADLINE_MS` / `STP_WATCHDOG_EVENTS` from the env).
fn supervise_opts(get: &dyn Fn(&str) -> Option<String>) -> stp_core::supervise::SuperviseOpts {
    let mut opts = stp_core::supervise::SuperviseOpts::from_env();
    if let Some(ms) = get("--deadline-ms").and_then(|v| v.parse().ok()) {
        opts = opts.with_deadline_ms(ms);
    }
    opts
}

/// `stp lint` under the supervised runner: chaos containment,
/// deadline skips, checkpoint/resume.
fn run_lint_supervised(
    config: &stp_analyzer::LintConfig,
    get: &dyn Fn(&str) -> Option<String>,
    has: &dyn Fn(&str) -> bool,
    json_path: Option<&str>,
    baseline: Option<&stp_analyzer::Baseline>,
    sarif_path: Option<&str>,
    write_baseline: Option<&str>,
) -> ! {
    use stp_analyzer::{lint_matrix_supervised, lint_sig, supervised_report_json};

    let exec = SweepRunner::new().exec();
    let sig = lint_sig(config, exec);
    let opts = supervise_opts(get);
    let checkpoint = open_checkpoint(get, has, "stp-lint.ckpt.json", &sig);
    let sweep = lint_matrix_supervised(config, &opts, checkpoint.as_ref());

    let (findings, baselined) = print_lint_findings(&sweep.entries, baseline);
    for f in &sweep.failures {
        println!(
            "FAILED {} after {} attempt(s): {}",
            f.id, f.attempts, f.error
        );
    }
    for id in &sweep.skipped {
        println!("SKIPPED {id} (cancelled before it ran)");
    }
    println!(
        "linted {}/{} schedules on the {} executor: {findings} finding(s), {baselined} baselined, \
         {} failed point(s), {} skipped, {} replayed from checkpoint",
        sweep.entries.len(),
        sweep.total,
        exec.name(),
        sweep.failures.len(),
        sweep.skipped.len(),
        sweep.resumed
    );
    if let Some(path) = json_path {
        std::fs::write(path, supervised_report_json(&sweep, exec.name()))
            .expect("write JSON report");
        eprintln!("[lint] report written to {path}");
    }
    let bad_findings = write_lint_artifacts(
        &sweep.entries,
        baseline,
        sarif_path,
        write_baseline,
        findings,
    );
    let bad = bad_findings || !sweep.failures.is_empty() || !sweep.skipped.is_empty();
    std::process::exit(if bad { 1 } else { 0 });
}

/// `stp sweep`: the experiment grid (makespans, not schedule analysis)
/// under the supervised runner. Each finished point yields one
/// deterministic JSON record — virtual time only, no wall-clock — so a
/// resumed sweep's report is byte-identical to an uninterrupted one.
fn run_sweep(args: &[String]) -> ! {
    use stp_core::algorithms::StpAlgorithm;
    use stp_core::runner::{try_run_alg_controlled, try_run_sources_controlled, RunControl};
    use stp_core::supervise::{chaos_algorithms, PointStatus};

    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);
    stp_analyzer::hush_expected_panics();

    let shapes: Vec<(usize, usize)> = if has("--quick") {
        vec![(4, 4), (8, 3)]
    } else {
        vec![(4, 4), (8, 4), (16, 16), (8, 3)]
    };
    let msg_len: usize = get("--len").and_then(|v| v.parse().ok()).unwrap_or(1024);
    let faults = parse_faults_flag(get("--faults"));
    let chaos = has("--chaos");

    enum SweepAlg {
        Kind(AlgoKind),
        Chaos(&'static str, fn() -> Box<dyn StpAlgorithm>),
    }
    struct Point {
        machine: Machine,
        dist: SourceDist,
        s: usize,
        alg: SweepAlg,
    }
    let dists = [
        SourceDist::Row,
        SourceDist::Column,
        SourceDist::Equal,
        SourceDist::DiagRight,
        SourceDist::DiagLeft,
        SourceDist::Band,
        SourceDist::Cross,
        SourceDist::SquareBlock,
    ];
    let mut points = Vec::new();
    for &(rows, cols) in &shapes {
        let machine = Machine::paragon(rows, cols);
        let p = machine.p();
        let sparse = (p / 4).max(2).min(p);
        let counts = if sparse == p {
            vec![p]
        } else {
            vec![sparse, p]
        };
        for dist in &dists {
            for &s in &counts {
                for &kind in AlgoKind::all() {
                    points.push(Point {
                        machine: machine.clone(),
                        dist: dist.clone(),
                        s,
                        alg: SweepAlg::Kind(kind),
                    });
                }
            }
        }
    }
    if chaos {
        let (rows, cols) = shapes[0];
        for (name, build) in chaos_algorithms() {
            points.push(Point {
                machine: Machine::paragon(rows, cols),
                dist: SourceDist::Equal,
                s: 2,
                alg: SweepAlg::Chaos(name, build),
            });
        }
    }
    let ids: Vec<String> = points
        .iter()
        .map(|pt| {
            let name = match &pt.alg {
                SweepAlg::Kind(kind) => kind.name(),
                SweepAlg::Chaos(name, _) => name,
            };
            format!(
                "{}/{}/{}x{}/s{}",
                name,
                pt.dist.name(),
                pt.machine.shape.rows,
                pt.machine.shape.cols,
                pt.s
            )
        })
        .collect();

    let runner = SweepRunner::new();
    let exec = runner.exec();
    let sig = format!(
        "sweep:v1:exec={}:shapes={shapes:?}:len={msg_len}:faults={faults:?}:chaos={chaos}",
        exec.name()
    );
    let opts = supervise_opts(&get);
    let checkpoint = open_checkpoint(&get, &has, "stp-sweep.ckpt.json", &sig);

    // Replay checkpointed records verbatim; run only the rest.
    let mut slots: Vec<Option<PointStatus<String>>> = Vec::with_capacity(points.len());
    let mut to_run = Vec::new();
    let mut run_ids = Vec::new();
    let mut resumed = 0usize;
    for (point, id) in points.into_iter().zip(&ids) {
        match checkpoint.as_ref().and_then(|cp| cp.get(id)) {
            Some(record) => {
                resumed += 1;
                slots.push(Some(PointStatus::Done(record)));
            }
            None => {
                slots.push(None);
                run_ids.push(id.clone());
                to_run.push(point);
            }
        }
    }

    let total = slots.len();
    let faults = &faults;
    let run_ids = &run_ids;
    let checkpoint_ref = checkpoint.as_ref();
    let statuses = runner.map_supervised(
        to_run,
        |pt| match exec {
            mpp_runtime::ExecMode::Cooperative => 1,
            mpp_runtime::ExecMode::Threaded => pt.machine.p(),
        },
        |pt| {
            let sources = pt.dist.place(pt.machine.shape, pt.s);
            let payload_of = move |src: usize| payload_for(src, msg_len);
            let control = RunControl {
                faults: faults.clone(),
                budget: opts.budget.clone(),
                cancel: Some(opts.cancel.clone()),
                exec: None,
            };
            let name;
            let out = match &pt.alg {
                SweepAlg::Kind(kind) => {
                    name = kind.name();
                    try_run_sources_controlled(
                        &pt.machine,
                        kind.default_lib(),
                        &sources,
                        &payload_of,
                        *kind,
                        &control,
                    )?
                }
                SweepAlg::Chaos(chaos_name, build) => {
                    name = chaos_name;
                    let alg = build();
                    try_run_alg_controlled(
                        &pt.machine,
                        LibraryKind::Nx,
                        &sources,
                        &payload_of,
                        alg.as_ref(),
                        &control,
                    )?
                }
            };
            // Virtual quantities only — this record must be identical
            // whether the point ran now or replayed from a checkpoint.
            Ok(format!(
                "{{\"id\":\"{}/{}/{}x{}/s{}\",\"makespan_ns\":{},\"verified\":{},\"contention_ns\":{}}}",
                name,
                pt.dist.name(),
                pt.machine.shape.rows,
                pt.machine.shape.cols,
                pt.s,
                out.makespan_ns,
                out.verified,
                out.contention_ns
            ))
        },
        &opts,
        |index, status| {
            if let (Some(cp), PointStatus::Done(record)) = (checkpoint_ref, status) {
                cp.record(&run_ids[index], record);
            }
        },
    );

    let mut statuses = statuses.into_iter();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            *slot = Some(statuses.next().expect("one status per un-cached point"));
        }
    }

    let mut records = Vec::new();
    let mut failures = Vec::new();
    let mut skipped = Vec::new();
    for (slot, id) in slots.into_iter().zip(ids) {
        match slot.expect("every slot filled") {
            PointStatus::Done(record) => records.push(record),
            PointStatus::Failed { attempts, error } => failures.push((id, attempts, error)),
            PointStatus::Skipped => skipped.push(id),
        }
    }
    let unverified = records
        .iter()
        .filter(|r| r.contains("\"verified\":false"))
        .count();
    for (id, attempts, error) in &failures {
        println!("FAILED {id} after {attempts} attempt(s): {error}");
    }
    for id in &skipped {
        println!("SKIPPED {id} (cancelled before it ran)");
    }
    println!(
        "swept {}/{total} points on the {} executor: {unverified} unverified, \
         {} failed, {} skipped, {resumed} replayed from checkpoint",
        records.len(),
        exec.name(),
        failures.len(),
        skipped.len()
    );
    if let Some(path) = get("--json") {
        let failures_json: Vec<String> = failures
            .iter()
            .map(|(id, attempts, error)| {
                format!(
                    "{{\"id\":\"{id}\",\"attempts\":{attempts},\"error\":\"{}\"}}",
                    error.replace('\\', "\\\\").replace('"', "\\\"")
                )
            })
            .collect();
        let skipped_json: Vec<String> = skipped.iter().map(|id| format!("\"{id}\"")).collect();
        let report = format!(
            "{{\"executor\":\"{}\",\"points\":{total},\"failures\":[{}],\"skipped\":[{}],\"records\":[\n  {}\n]}}",
            exec.name(),
            failures_json.join(","),
            skipped_json.join(","),
            records.join(",\n  ")
        );
        std::fs::write(&path, report).expect("write JSON report");
        eprintln!("[sweep] report written to {path}");
    }
    let bad = unverified > 0 || !failures.is_empty() || !skipped.is_empty();
    std::process::exit(if bad { 1 } else { 0 });
}

/// The serve daemon's lint hook: run the analyzer's single-point lint
/// over the plan's exact grid point and hand the report JSON back to
/// `stp-core` (which cannot depend on `stp-analyzer` itself). Shares
/// the simulated schedule's determinism, so equal plan-cache keys give
/// byte-identical reports.
fn serve_lint_hook() -> Box<stp_core::serve::LintFn> {
    Box::new(|spec| {
        let stp_core::serve::PlanAlgo::Kind(kind) = &spec.algo else {
            return Err("lint is not available for chaos fixtures".to_string());
        };
        let control = stp_core::runner::RunControl {
            faults: spec.faults.clone(),
            exec: Some(spec.exec),
            ..Default::default()
        };
        let entry = stp_analyzer::lint_point(
            &spec.machine,
            &spec.dist,
            spec.s,
            spec.msg_len,
            *kind,
            None,
            false,
            &control,
        )
        .map_err(|e| e.to_string())?;
        Ok(stp_analyzer::entry_to_json(&entry))
    })
}

/// `stp serve`: the long-running broadcast-planning daemon.
fn run_serve(args: &[String]) -> ! {
    use stp_core::serve::{arm_signal_shutdown, ServeConfig, Server};

    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    // Chaos requests are a supported part of the serving mix — their
    // deliberate panics must not spam the daemon's stderr.
    stp_analyzer::hush_expected_panics();

    let mut config = ServeConfig::from_env();
    if let Some(addr) = get("--addr") {
        config.addr = addr;
    }
    if let Some(path) = get("--cache") {
        config.cache_path = Some(path.into());
    }
    if let Some(cap) = get("--cache-cap").and_then(|v| v.parse().ok()) {
        config.cache_cap = std::cmp::max(cap, 1);
    }
    if let Some(workers) = get("--workers").and_then(|v| v.parse::<usize>().ok()) {
        config.workers = workers.clamp(1, 64);
    }
    if let Some(ms) = get("--deadline-ms").and_then(|v| v.parse::<u64>().ok()) {
        config.deadline = std::time::Duration::from_millis(ms.max(1));
    }

    let server = Server::bind(&config, Some(serve_lint_hook())).unwrap_or_else(|e| {
        eprintln!("stp serve: cannot bind {}: {e}", config.addr);
        std::process::exit(1);
    });
    arm_signal_shutdown(&server.shutdown_flag());
    // One parseable readiness line on stdout — serve-smoke and loadgen
    // wait for it (and read back the real port when --addr used :0).
    println!("stp serve: listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "stp serve: {} worker(s), cache cap {}, cache file {}, default deadline {}ms, {} executor",
        config.workers,
        config.cache_cap,
        config
            .cache_path
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "(memory only)".to_string()),
        config.deadline.as_millis(),
        config.exec.name(),
    );
    match server.run() {
        Ok(stats) => {
            eprintln!("stp serve: clean shutdown; final stats {stats}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("stp serve: {e}");
            std::process::exit(1);
        }
    }
}

/// Apply `--exec coop|threaded` by exporting `STP_EXEC` before any
/// simulation starts — every later `ExecMode::from_env()` (SweepRunner,
/// SimConfig::default) then agrees with the flag.
fn apply_exec_flag(args: &[String]) {
    let Some(i) = args.iter().position(|a| a == "--exec") else {
        return;
    };
    match args.get(i + 1).map(String::as_str) {
        Some("coop") | Some("cooperative") => std::env::set_var("STP_EXEC", "coop"),
        Some("threaded") | Some("threads") => std::env::set_var("STP_EXEC", "threaded"),
        other => {
            eprintln!("--exec wants coop|threaded, got {other:?}");
            usage()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    apply_exec_flag(&args);
    // The daemon is deliberately lenient about a malformed `STP_EXEC`
    // (warns once, runs cooperative — a typo'd deploy must not kill
    // it), so dispatch it before the hard CLI-level validation below.
    if args.first().map(String::as_str) == Some("serve") {
        run_serve(&args[1..]);
    }
    // One-shot commands fail fast instead: a typo'd `STP_EXEC` means
    // the run would not measure what the user asked for.
    if let Err(e) = mpp_runtime::ExecMode::try_from_env() {
        eprintln!("stp: {e}");
        std::process::exit(2);
    }
    if args.first().map(String::as_str) == Some("lint") {
        run_lint(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        println!("algorithms:");
        for k in AlgoKind::all() {
            println!("  {}", k.name());
        }
        println!(
            "distributions: row column equal diag_right diag_left band cross square_block random"
        );
        return;
    }
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    let machine_kind = get("--machine").unwrap_or_else(|| usage());
    let seed: u64 = get("--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let mut machine = match machine_kind.as_str() {
        "paragon" => {
            let rows: usize = get("--rows").and_then(|v| v.parse().ok()).unwrap_or(10);
            let cols: usize = get("--cols").and_then(|v| v.parse().ok()).unwrap_or(10);
            Machine::paragon(rows, cols)
        }
        "t3d" => {
            let p: usize = get("--p").and_then(|v| v.parse().ok()).unwrap_or(128);
            Machine::t3d(p, seed)
        }
        other => {
            eprintln!("unknown machine '{other}'");
            usage()
        }
    };
    if let Some(v) = get("--ports") {
        match v.parse::<usize>() {
            Ok(k) if k > 0 => machine.params = machine.params.clone().with_ports(k),
            _ => {
                eprintln!("--ports wants a positive port count, got '{v}'");
                usage()
            }
        }
    }

    let algo_name = get("--algo").unwrap_or_else(|| usage());
    let Some(kind) = parse_algo(&algo_name) else {
        eprintln!("unknown algorithm '{algo_name}' (try --list)");
        usage()
    };
    let dist_name = get("--dist").unwrap_or_else(|| usage());
    let Some(dist) = parse_dist(&dist_name, seed) else {
        eprintln!("unknown distribution '{dist_name}' (try --list)");
        usage()
    };
    let s: usize = get("--s")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let len: usize = get("--len").and_then(|v| v.parse().ok()).unwrap_or(4096);
    let lib = match get("--lib").as_deref() {
        Some("mpi") => LibraryKind::Mpi,
        Some("nx") | None => kind.default_lib(),
        Some(other) => {
            eprintln!("unknown library '{other}'");
            usage()
        }
    };

    let faults = parse_faults_flag(get("--faults"));
    let sources = dist.place(machine.shape, s);
    println!(
        "machine {}  p={}  algo {}  dist {}({s})  L={len}B  lib {}",
        machine.name,
        machine.p(),
        kind.name(),
        dist.name(),
        lib.name()
    );

    if has("--predict") {
        match stp_core::predict::estimate_ms(&machine, kind, s, len) {
            Some(ms) => println!("analytic (contention-free) estimate: {ms:.3} ms"),
            None => println!("no closed-form estimate for this algorithm"),
        }
    }

    if let Some(spec) = get("--sweep-len") {
        let lens: Vec<usize> = spec
            .split(',')
            .filter_map(|v| v.trim().parse().ok())
            .collect();
        if lens.is_empty() {
            eprintln!("--sweep-len wants a comma-separated list of byte lengths");
            usage()
        }
        let machine = &machine;
        let grid: Vec<Experiment> = lens
            .iter()
            .map(|&msg_len| Experiment {
                machine,
                dist: dist.clone(),
                s,
                msg_len,
                kind,
            })
            .collect();
        let runner = SweepRunner::new();
        let t0 = std::time::Instant::now();
        let outcomes = match &faults {
            Some(plan) => runner.map(
                grid,
                |e| e.machine.p(),
                |e| {
                    e.run_with_faults(plan)
                        .unwrap_or_else(|err| panic!("{err}"))
                },
            ),
            None => runner.run_experiments(&grid),
        };
        let wall = t0.elapsed();
        println!("L,ms,verified");
        for (len, out) in lens.iter().zip(&outcomes) {
            println!("{len},{:.4},{}", out.makespan_ms(), out.verified);
        }
        eprintln!(
            "[sweep] {} lengths on {} workers in {:.3}s",
            lens.len(),
            runner.workers(),
            wall.as_secs_f64()
        );
        return;
    }

    if has("--trace") {
        let shape = machine.shape;
        let alg = kind.build();
        let config = SimConfig {
            lib,
            trace: true,
            faults: faults.clone(),
            ..SimConfig::default()
        };
        let out = run_simulated_with(&machine, &config, async |comm| {
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await.len() == sources.len()
        });
        assert!(out.results.iter().all(|&ok| ok), "verification failed");
        let sum = summarize(&out.trace);
        println!(
            "time {:.3} ms   messages {}   bytes {}   stalled {:.3} ms",
            out.makespan_ms(),
            sum.messages,
            sum.bytes,
            sum.stalled_ns as f64 / 1e6
        );
        println!("{}", render_timeline(&out.trace, machine.p().min(32), 72));
        return;
    }

    let copy_before = mpp_sim::copy_metrics();
    let out = run_sources_faulty(
        &machine,
        lib,
        &sources,
        &|src| payload_for(src, len),
        kind,
        faults.as_ref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("stp: {e}");
        std::process::exit(1);
    });
    println!(
        "time {:.3} ms   verified {}   contention stalls {} ({:.3} ms)",
        out.makespan_ms(),
        out.verified,
        out.contention_events,
        out.contention_ns as f64 / 1e6
    );
    if faults.is_some() {
        let retransmits: u64 = out.stats.iter().map(|s| s.retransmits).sum();
        let dropped: u64 = out.stats.iter().map(|s| s.dropped).sum();
        let rerouted: u64 = out.stats.iter().map(|s| s.rerouted_hops).sum();
        let detour_ns: u64 = out.stats.iter().map(|s| s.detour_ns).sum();
        println!(
            "faults: {retransmits} retransmit(s)   {dropped} message(s) lost   \
             {rerouted} detour hop(s) (+{:.3} ms)",
            detour_ns as f64 / 1e6
        );
    }
    if has("--copy-stats") {
        // One JSON record of host-side copy accounting: comm-layer
        // copies (zero on the rope path) plus real copies inside
        // `Payload` itself, against the virtual traffic volume.
        // `scripts/bench-smoke.sh` appends this to BENCH_sweep.json.
        let delta = mpp_sim::copy_metrics().since(&copy_before);
        let comm_copied: u64 = out.stats.iter().map(|s| s.bytes_copied).sum();
        let comm_allocs: u64 = out.stats.iter().map(|s| s.allocs).sum();
        let traffic: u64 = out.stats.iter().map(|s| s.total_bytes()).sum();
        println!(
            "{{\"id\":\"copy_stats/{}/s{s}/L{len}\",\"comm_bytes_copied\":{comm_copied},\
             \"comm_allocs\":{comm_allocs},\"payload_bytes_copied\":{},\
             \"payload_allocs\":{},\"traffic_bytes\":{traffic}}}",
            kind.name(),
            delta.bytes_copied,
            delta.allocs
        );
    }
    if has("--metrics") {
        let row = figure2_row(kind.name(), &out.stats);
        println!("\n{}", format_table(&[row]));
        if let Some(q) = stp_core::quality::placement_quality(machine.shape, &sources, kind) {
            println!("placement quality for {}: {q:.2}", kind.name());
        }
    }
}

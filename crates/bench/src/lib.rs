//! Shared infrastructure for the figure-regeneration binaries and the
//! Criterion benches: experiment grids, CSV/ASCII table output.

pub mod plot;

use mpp_model::Machine;
use stp_core::prelude::*;

/// Run one algorithm/distribution/size point and return milliseconds.
pub fn run_ms(
    machine: &Machine,
    kind: AlgoKind,
    dist: SourceDist,
    s: usize,
    msg_len: usize,
) -> f64 {
    let exp = Experiment {
        machine,
        dist,
        s,
        msg_len,
        kind,
    };
    let out = exp.run().unwrap_or_else(|e| panic!("{e}"));
    assert!(
        out.verified,
        "{} failed verification (s={s}, L={msg_len})",
        kind.name()
    );
    out.makespan_ms()
}

/// [`run_ms`] with an explicit executor, regardless of `STP_EXEC` —
/// the `sweep_engine` benches race the cooperative kernel against the
/// threaded trap/grant backend on the same grid point.
pub fn run_ms_exec(
    machine: &Machine,
    kind: AlgoKind,
    dist: SourceDist,
    s: usize,
    msg_len: usize,
    exec: mpp_runtime::ExecMode,
) -> f64 {
    use mpp_runtime::{run_simulated_with, Communicator, SimConfig};
    let sources = dist.place(machine.shape, s);
    let alg = kind.build();
    let shape = machine.shape;
    let config = SimConfig {
        lib: kind.default_lib(),
        exec,
        ..SimConfig::default()
    };
    let out = run_simulated_with(machine, &config, async |comm| {
        let payload = sources
            .binary_search(&comm.rank())
            .is_ok()
            .then(|| payload_for(comm.rank(), msg_len));
        let ctx = StpCtx {
            shape,
            sources: &sources,
            payload: payload.as_deref(),
        };
        alg.run(comm, &ctx).await.len() == sources.len()
    });
    assert!(
        out.results.iter().all(|&ok| ok),
        "{} failed verification (s={s}, L={msg_len}, exec={})",
        kind.name(),
        exec.name()
    );
    out.makespan_ns as f64 / 1e6
}

/// A labelled series (one curve of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (algorithm or distribution name).
    pub label: String,
    /// (x, milliseconds) points.
    pub points: Vec<(f64, f64)>,
}

/// Print a figure as a CSV-compatible table: the x column plus one
/// column per series.
pub fn print_figure(title: &str, x_name: &str, series: &[Series]) {
    println!("# {title}");
    print!("{x_name}");
    for s in series {
        print!(",{}", s.label);
    }
    println!();
    let n = series.first().map_or(0, |s| s.points.len());
    for i in 0..n {
        print!("{}", series[0].points[i].0);
        for s in series {
            print!(",{:.4}", s.points[i].1);
        }
        println!();
    }
    println!();
}

/// Percentage difference `(a - b) / b * 100` (used by Figures 9 and 10:
/// positive = `a` slower than `b`).
pub fn pct_diff(a_ms: f64, b_ms: f64) -> f64 {
    (a_ms - b_ms) / b_ms * 100.0
}

/// Sweep a parameter for several algorithms, producing one series per
/// algorithm: `point(kind, x)` must return milliseconds.
pub fn sweep_algorithms<F>(kinds: &[AlgoKind], xs: &[f64], mut point: F) -> Vec<Series>
where
    F: FnMut(AlgoKind, f64) -> f64,
{
    kinds
        .iter()
        .map(|&k| Series {
            label: k.name().to_string(),
            points: xs.iter().map(|&x| (x, point(k, x))).collect(),
        })
        .collect()
}

/// Parallel counterpart of [`sweep_algorithms`]: the whole
/// (algorithm × x) grid is executed concurrently on a [`SweepRunner`].
/// `weight` is the rank-thread cost of one grid point (the machine's
/// `p`). Virtual-time results are identical to the sequential sweep —
/// each point is an independent deterministic simulation — so series
/// come back in the same order with the same values, just sooner.
pub fn sweep_algorithms_parallel<F>(
    runner: &SweepRunner,
    kinds: &[AlgoKind],
    xs: &[f64],
    weight: usize,
    point: F,
) -> Vec<Series>
where
    F: Fn(AlgoKind, f64) -> f64 + Sync,
{
    let grid: Vec<(AlgoKind, f64)> = kinds
        .iter()
        .flat_map(|&k| xs.iter().map(move |&x| (k, x)))
        .collect();
    let ms = runner.map(grid, |_| weight, |(k, x)| point(k, x));
    kinds
        .iter()
        .enumerate()
        .map(|(ki, &k)| Series {
            label: k.name().to_string(),
            points: xs
                .iter()
                .enumerate()
                .map(|(xi, &x)| (x, ms[ki * xs.len() + xi]))
                .collect(),
        })
        .collect()
}

/// Sweep a parameter for several distributions, one series each.
pub fn sweep_distributions<F>(dists: &[SourceDist], xs: &[f64], mut point: F) -> Vec<Series>
where
    F: FnMut(&SourceDist, f64) -> f64,
{
    dists
        .iter()
        .map(|d| Series {
            label: d.name().to_string(),
            points: xs.iter().map(|&x| (x, point(d, x))).collect(),
        })
        .collect()
}

/// The paper's Paragon message-size sweep: 32 B to 16 KiB.
pub fn length_sweep() -> Vec<usize> {
    vec![32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
}

/// Parse an algorithm name as used by the `stp` CLI (delegates to
/// [`AlgoKind::parse`], which the serve request path shares).
pub fn parse_algo(name: &str) -> Option<AlgoKind> {
    AlgoKind::parse(name)
}

/// Parse a distribution name (long or paper-abbreviated) for the CLI
/// (delegates to [`SourceDist::parse`]).
pub fn parse_dist(name: &str, seed: u64) -> Option<SourceDist> {
    SourceDist::parse(name, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_names_roundtrip() {
        for &k in AlgoKind::all() {
            assert_eq!(parse_algo(k.name()), Some(k), "{}", k.name());
            // lowercase with underscores also works
            let mangled = k.name().to_lowercase().replace(['-', ' '], "_");
            assert_eq!(parse_algo(&mangled), Some(k), "{mangled}");
        }
        assert_eq!(parse_algo("no_such_algorithm"), None);
    }

    #[test]
    fn dist_names_parse() {
        assert_eq!(parse_dist("cross", 0), Some(SourceDist::Cross));
        assert_eq!(parse_dist("Sq", 0), Some(SourceDist::SquareBlock));
        assert_eq!(parse_dist("rand", 7), Some(SourceDist::Random { seed: 7 }));
        assert_eq!(parse_dist("nope", 0), None);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        use mpp_model::Machine;
        let machine = Machine::paragon(4, 4);
        let kinds = [AlgoKind::TwoStep, AlgoKind::BrLin];
        let xs = [64.0, 256.0];
        let point = |k: AlgoKind, x: f64| run_ms(&machine, k, SourceDist::Equal, 4, x as usize);
        let seq = sweep_algorithms(&kinds, &xs, point);
        let par = sweep_algorithms_parallel(
            &SweepRunner::sequential().with_workers(4),
            &kinds,
            &xs,
            machine.p(),
            point,
        );
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.points, b.points, "{}", a.label);
        }
    }

    #[test]
    fn pct_diff_signs() {
        assert!(pct_diff(11.0, 10.0) > 0.0);
        assert!(pct_diff(9.0, 10.0) < 0.0);
        assert_eq!(pct_diff(10.0, 10.0), 0.0);
    }

    #[test]
    fn length_sweep_covers_paper_range() {
        let l = length_sweep();
        assert_eq!(*l.first().unwrap(), 32);
        assert_eq!(*l.last().unwrap(), 16384);
    }
}

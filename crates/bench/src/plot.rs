//! Static SVG renderer for the figure data — turns the `results/*.txt`
//! CSV blocks into line/bar charts so the paper's figures exist as
//! figures again.
//!
//! Design follows the data-viz method: form first (line for parameter
//! sweeps, horizontal bars for categorical comparisons), a validated
//! categorical palette in fixed slot order (never cycled), thin marks
//! (2 px lines, small round markers, 4 px rounded bar data-ends), one
//! y-axis anchored at zero, recessive grid, text in text tokens (never
//! the series color), a legend whenever there are ≥ 2 series plus
//! direct end-labels when ≤ 4. Three palette slots sit below 3:1
//! contrast on the light surface, so charts always ship alongside the
//! CSV table view (the relief rule).

use crate::Series;

/// Categorical palette, light mode, fixed slot order (validated: worst
/// adjacent CVD ΔE 24.2; aqua/yellow/magenta carry the contrast WARN —
/// relieved by direct labels + the CSV table view).
const PALETTE: [&str; 8] = [
    "#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7", "#e34948", "#e87ba4", "#eb6834",
];
const SURFACE: &str = "#fcfcfb";
const GRID: &str = "#e5e4e0";
const TEXT_PRIMARY: &str = "#0b0b0b";
const TEXT_SECONDARY: &str = "#52514e";

const W: f64 = 720.0;
const H: f64 = 440.0;
const ML: f64 = 64.0; // left margin (y labels)
const MR: f64 = 150.0; // right margin (legend)
const MT: f64 = 44.0; // top (title)
const MB: f64 = 52.0; // bottom (x labels)

/// A chart specification rendered to standalone SVG.
pub struct Chart {
    /// Chart title (plain text).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// One entry per series, palette slots assigned in order.
    pub series: Vec<Series>,
    /// Use a log₂ x-axis (message-length sweeps).
    pub log_x: bool,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// "Nice" tick step ≈ range/5.
fn nice_step(range: f64) -> f64 {
    if range <= 0.0 {
        return 1.0;
    }
    let raw = range / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let n = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    n * mag
}

fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        let s = format!("{v:.1}");
        s.strip_suffix(".0").unwrap_or(&s).to_string()
    } else {
        format!("{v:.2}")
    }
}

impl Chart {
    /// Render a line chart (the default for parameter sweeps).
    pub fn to_svg(&self) -> String {
        let mut out = self.open_svg();
        let plot_w = W - ML - MR;
        let plot_h = H - MT - MB;

        // Data ranges. y is anchored at 0 (magnitude encoding).
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| self.tx(x)))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, y)| y))
            .collect();
        if xs.is_empty() {
            out.push_str("</svg>\n");
            return out;
        }
        let (x_min, x_max) = (
            xs.iter().cloned().fold(f64::MAX, f64::min),
            xs.iter().cloned().fold(f64::MIN, f64::max),
        );
        let y_min = ys.iter().cloned().fold(f64::MAX, f64::min).min(0.0);
        let y_max = ys.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
        let x_span = (x_max - x_min).max(1e-9);
        let y_span = (y_max - y_min).max(1e-9);
        let px = |x: f64| ML + (x - x_min) / x_span * plot_w;
        let py = |y: f64| MT + plot_h - (y - y_min) / y_span * plot_h;

        // Recessive horizontal grid + y tick labels.
        let step = nice_step(y_span);
        let mut t = (y_min / step).ceil() * step;
        while t <= y_max + 1e-9 {
            let y = py(t);
            out.push_str(&format!(
                "<line x1='{ML}' y1='{y:.1}' x2='{:.1}' y2='{y:.1}' stroke='{GRID}' stroke-width='1'/>\n",
                ML + plot_w
            ));
            out.push_str(&format!(
                "<text x='{:.1}' y='{:.1}' font-size='11' fill='{TEXT_SECONDARY}' text-anchor='end'>{}</text>\n",
                ML - 8.0,
                y + 4.0,
                fmt(t)
            ));
            t += step;
        }

        // x ticks: at the data points when few, else nice steps.
        let mut tick_xs: Vec<f64> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default();
        tick_xs.dedup();
        if tick_xs.len() > 9 {
            let every = tick_xs.len().div_ceil(9);
            tick_xs = tick_xs.into_iter().step_by(every).collect();
        }
        for &x in &tick_xs {
            let xx = px(self.tx(x));
            out.push_str(&format!(
                "<line x1='{xx:.1}' y1='{:.1}' x2='{xx:.1}' y2='{:.1}' stroke='{GRID}' stroke-width='1'/>\n",
                MT + plot_h,
                MT + plot_h + 4.0
            ));
            out.push_str(&format!(
                "<text x='{xx:.1}' y='{:.1}' font-size='11' fill='{TEXT_SECONDARY}' text-anchor='middle'>{}</text>\n",
                MT + plot_h + 18.0,
                fmt(x)
            ));
        }

        // Series: 2px lines, small markers with native tooltips.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: String = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(self.tx(x)), py(y)))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "<polyline points='{pts}' fill='none' stroke='{color}' stroke-width='2' stroke-linejoin='round'/>\n"
            ));
            for &(x, y) in &s.points {
                out.push_str(&format!(
                    "<circle cx='{:.1}' cy='{:.1}' r='3.5' fill='{color}' stroke='{SURFACE}' stroke-width='2'><title>{}: {} @ {}</title></circle>\n",
                    px(self.tx(x)),
                    py(y),
                    esc(&s.label),
                    fmt(y),
                    fmt(x)
                ));
            }
            // Direct end-label when few series (relief for low-contrast slots).
            if self.series.len() <= 4 {
                if let Some(&(x, y)) = s.points.last() {
                    out.push_str(&format!(
                        "<text x='{:.1}' y='{:.1}' font-size='11' fill='{TEXT_PRIMARY}'>{}</text>\n",
                        px(self.tx(x)) + 8.0,
                        py(y) + 4.0,
                        esc(&s.label)
                    ));
                }
            }
        }

        self.axes_legend(&mut out, plot_w, plot_h);
        out.push_str("</svg>\n");
        out
    }

    /// Render a grouped horizontal bar chart (categorical x).
    pub fn to_svg_bars(
        categories: &[String],
        series: &[Series],
        title: &str,
        x_label: &str,
    ) -> String {
        let chart = Chart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: String::new(),
            series: series.to_vec(),
            log_x: false,
        };
        let mut out = chart.open_svg();
        let plot_w = W - ML - MR;
        let plot_h = H - MT - MB;
        let v_max = series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, v)| v))
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let n_groups = categories.len().max(1);
        let n_series = series.len().max(1);
        let group_h = plot_h / n_groups as f64;
        let bar_h = ((group_h - 8.0) / n_series as f64 - 2.0).clamp(4.0, 18.0);

        // Vertical grid + value ticks.
        let step = nice_step(v_max);
        let mut t = 0.0;
        while t <= v_max + 1e-9 {
            let x = ML + t / v_max * plot_w;
            out.push_str(&format!(
                "<line x1='{x:.1}' y1='{MT}' x2='{x:.1}' y2='{:.1}' stroke='{GRID}' stroke-width='1'/>\n",
                MT + plot_h
            ));
            out.push_str(&format!(
                "<text x='{x:.1}' y='{:.1}' font-size='11' fill='{TEXT_SECONDARY}' text-anchor='middle'>{}</text>\n",
                MT + plot_h + 18.0,
                fmt(t)
            ));
            t += step;
        }

        for (g, cat) in categories.iter().enumerate() {
            let gy = MT + g as f64 * group_h;
            out.push_str(&format!(
                "<text x='{:.1}' y='{:.1}' font-size='11' fill='{TEXT_PRIMARY}' text-anchor='end'>{}</text>\n",
                ML - 8.0,
                gy + group_h / 2.0 + 4.0,
                esc(cat)
            ));
            for (i, s) in series.iter().enumerate() {
                let Some(&(_, v)) = s.points.get(g) else {
                    continue;
                };
                let color = PALETTE[i % PALETTE.len()];
                let w = (v / v_max * plot_w).max(1.0);
                let y = gy + 4.0 + i as f64 * (bar_h + 2.0);
                // 4px rounded data-end, square at the baseline.
                out.push_str(&format!(
                    "<path d='M{ML} {y:.1} h{:.1} a4 4 0 0 1 4 4 v{:.1} a4 4 0 0 1 -4 4 h-{:.1} z' fill='{color}'><title>{}: {}</title></path>\n",
                    (w - 4.0).max(0.0),
                    (bar_h - 8.0).max(0.0),
                    (w - 4.0).max(0.0),
                    esc(&s.label),
                    fmt(v)
                ));
                // Direct value label in text ink.
                out.push_str(&format!(
                    "<text x='{:.1}' y='{:.1}' font-size='10' fill='{TEXT_SECONDARY}'>{}</text>\n",
                    ML + w + 6.0,
                    y + bar_h / 2.0 + 3.5,
                    fmt(v)
                ));
            }
        }

        chart.axes_legend(&mut out, plot_w, plot_h);
        out.push_str("</svg>\n");
        out
    }

    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(1e-9).log2()
        } else {
            x
        }
    }

    fn open_svg(&self) -> String {
        let mut out = format!(
            "<svg xmlns='http://www.w3.org/2000/svg' width='{W}' height='{H}' viewBox='0 0 {W} {H}' font-family='system-ui, sans-serif'>\n"
        );
        out.push_str(&format!(
            "<rect width='{W}' height='{H}' fill='{SURFACE}'/>\n"
        ));
        out.push_str(&format!(
            "<text x='{ML}' y='24' font-size='13' font-weight='600' fill='{TEXT_PRIMARY}'>{}</text>\n",
            esc(&self.title)
        ));
        out
    }

    fn axes_legend(&self, out: &mut String, plot_w: f64, plot_h: f64) {
        // Axis lines (recessive).
        out.push_str(&format!(
            "<line x1='{ML}' y1='{MT}' x2='{ML}' y2='{:.1}' stroke='{GRID}' stroke-width='1'/>\n",
            MT + plot_h
        ));
        out.push_str(&format!(
            "<line x1='{ML}' y1='{:.1}' x2='{:.1}' y2='{:.1}' stroke='{TEXT_SECONDARY}' stroke-width='1'/>\n",
            MT + plot_h,
            ML + plot_w,
            MT + plot_h
        ));
        // Axis titles.
        out.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-size='11' fill='{TEXT_SECONDARY}' text-anchor='middle'>{}</text>\n",
            ML + plot_w / 2.0,
            H - 14.0,
            esc(&self.x_label)
        ));
        if !self.y_label.is_empty() {
            out.push_str(&format!(
                "<text x='16' y='{:.1}' font-size='11' fill='{TEXT_SECONDARY}' transform='rotate(-90 16 {:.1})' text-anchor='middle'>{}</text>\n",
                MT + plot_h / 2.0,
                MT + plot_h / 2.0,
                esc(&self.y_label)
            ));
        }
        // Legend (always for ≥2 series).
        if self.series.len() >= 2 {
            let lx = ML + plot_w + 16.0;
            for (i, s) in self.series.iter().enumerate() {
                let y = MT + 10.0 + i as f64 * 20.0;
                let color = PALETTE[i % PALETTE.len()];
                out.push_str(&format!(
                    "<rect x='{lx:.1}' y='{:.1}' width='12' height='12' rx='3' fill='{color}'/>\n",
                    y - 9.0
                ));
                out.push_str(&format!(
                    "<text x='{:.1}' y='{y:.1}' font-size='11' fill='{TEXT_PRIMARY}'>{}</text>\n",
                    lx + 18.0,
                    esc(&s.label)
                ));
            }
        }
    }
}

/// One parsed CSV block from a `results/*.txt` file.
#[derive(Debug, Clone)]
pub struct CsvBlock {
    /// The `# ...` title line.
    pub title: String,
    /// First header column (x-axis name).
    pub x_name: String,
    /// Series labels (remaining header columns).
    pub labels: Vec<String>,
    /// Row keys (numeric or categorical).
    pub row_keys: Vec<String>,
    /// `values[row][series]`.
    pub values: Vec<Vec<f64>>,
}

impl CsvBlock {
    /// Whether every row key parses as a number (line chart vs bars).
    pub fn numeric_x(&self) -> bool {
        self.row_keys.iter().all(|k| k.parse::<f64>().is_ok())
    }

    /// Convert to chart series (numeric x only).
    pub fn to_series(&self) -> Vec<Series> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, label)| Series {
                label: label.clone(),
                points: self
                    .row_keys
                    .iter()
                    .zip(&self.values)
                    .map(|(k, row)| (k.parse::<f64>().unwrap_or(0.0), row[i]))
                    .collect(),
            })
            .collect()
    }

    /// Convert to bar-chart series (one point per category, x = index).
    pub fn to_bar_series(&self) -> Vec<Series> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, label)| Series {
                label: label.clone(),
                points: self
                    .values
                    .iter()
                    .enumerate()
                    .map(|(g, row)| (g as f64, row[i]))
                    .collect(),
            })
            .collect()
    }
}

/// Parse the `print_figure` CSV format: one or more blocks, each a
/// `# title` line, a header row, then data rows. Non-CSV lines are
/// skipped. Returns the blocks found.
pub fn parse_csv_blocks(text: &str) -> Vec<CsvBlock> {
    let mut blocks = Vec::new();
    let mut title: Option<String> = None;
    let mut header: Option<Vec<String>> = None;
    let mut keys: Vec<String> = Vec::new();
    let mut values: Vec<Vec<f64>> = Vec::new();

    let mut flush = |title: &mut Option<String>,
                     header: &mut Option<Vec<String>>,
                     keys: &mut Vec<String>,
                     values: &mut Vec<Vec<f64>>| {
        if let (Some(t), Some(h)) = (title.take(), header.take()) {
            if !values.is_empty() && h.len() >= 2 {
                blocks.push(CsvBlock {
                    title: t,
                    x_name: h[0].clone(),
                    labels: h[1..].to_vec(),
                    row_keys: std::mem::take(keys),
                    values: std::mem::take(values),
                });
            }
        }
        keys.clear();
        values.clear();
    };

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            flush(&mut title, &mut header, &mut keys, &mut values);
            title = Some(rest.to_string());
            header = None;
            continue;
        }
        if title.is_none() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 2 {
            continue;
        }
        if header.is_none() {
            header = Some(cells.iter().map(|c| c.to_string()).collect());
            continue;
        }
        let parsed: Option<Vec<f64>> = cells[1..].iter().map(|c| c.parse::<f64>().ok()).collect();
        if let Some(row) = parsed {
            if row.len() == header.as_ref().unwrap().len() - 1 {
                keys.push(cells[0].to_string());
                values.push(row);
            }
        }
    }
    flush(&mut title, &mut header, &mut keys, &mut values);
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        Chart {
            title: "test".into(),
            x_label: "s".into(),
            y_label: "ms".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![(1.0, 2.0), (2.0, 4.0), (3.0, 3.0)],
                },
                Series {
                    label: "B".into(),
                    points: vec![(1.0, 1.0), (2.0, 1.5), (3.0, 5.0)],
                },
            ],
            log_x: false,
        }
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = sample_chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        // legend for >= 2 series
        assert!(svg.contains(">A</text>"));
        assert!(svg.contains(">B</text>"));
    }

    #[test]
    fn marks_stay_inside_viewport() {
        let svg = sample_chart().to_svg();
        for cap in svg.split("cx='").skip(1) {
            let x: f64 = cap.split('\'').next().unwrap().parse().unwrap();
            assert!((0.0..=W).contains(&x), "cx {x} outside viewport");
        }
        for cap in svg.split("cy='").skip(1) {
            let y: f64 = cap.split('\'').next().unwrap().parse().unwrap();
            assert!((0.0..=H).contains(&y), "cy {y} outside viewport");
        }
    }

    #[test]
    fn single_series_has_no_legend_box() {
        let chart = Chart {
            series: vec![Series {
                label: "only".into(),
                points: vec![(0.0, 1.0), (1.0, 2.0)],
            }],
            ..sample_chart()
        };
        let svg = chart.to_svg();
        assert_eq!(svg.matches("<rect").count(), 1, "only the surface rect");
    }

    #[test]
    fn log_axis_compresses_exponential_sweeps() {
        let chart = Chart {
            log_x: true,
            series: vec![Series {
                label: "L".into(),
                points: vec![(32.0, 1.0), (1024.0, 2.0), (16384.0, 3.0)],
            }],
            ..sample_chart()
        };
        let svg = chart.to_svg();
        // With log-x the midpoint (1024) sits near the visual middle.
        let xs: Vec<f64> = svg
            .split("cx='")
            .skip(1)
            .map(|c| c.split('\'').next().unwrap().parse().unwrap())
            .collect();
        let mid_frac = (xs[1] - xs[0]) / (xs[2] - xs[0]);
        assert!(
            (0.4..0.8).contains(&mid_frac),
            "log spacing broken: {mid_frac}"
        );
    }

    #[test]
    fn bar_chart_renders_categories() {
        let cats = vec!["R".to_string(), "Sq".to_string()];
        let series = vec![
            Series {
                label: "Br_Lin".into(),
                points: vec![(0.0, 4.0), (1.0, 4.1)],
            },
            Series {
                label: "Br_xy".into(),
                points: vec![(0.0, 3.4), (1.0, 3.9)],
            },
        ];
        let svg = Chart::to_svg_bars(&cats, &series, "bars", "ms");
        assert!(svg.contains(">R</text>"));
        assert!(svg.contains(">Sq</text>"));
        assert_eq!(svg.matches("<path").count(), 4);
    }

    #[test]
    fn csv_parser_reads_print_figure_output() {
        let text = "# Figure X: something\ns,A,B\n1,2.5,3.5\n2,4.0,1.0\n\n# Figure Y\ndist,Z\nR,1.0\nSq,2.0\n";
        let blocks = parse_csv_blocks(text);
        assert_eq!(blocks.len(), 2);
        assert!(blocks[0].numeric_x());
        assert_eq!(blocks[0].labels, vec!["A", "B"]);
        assert_eq!(blocks[0].values[1], vec![4.0, 1.0]);
        assert!(!blocks[1].numeric_x());
        assert_eq!(blocks[1].row_keys, vec!["R", "Sq"]);
    }

    #[test]
    fn csv_parser_skips_garbage() {
        let text = "random preamble\n# T\nx,y\nnot,a,row\n1,2\n";
        let blocks = parse_csv_blocks(text);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].values, vec![vec![2.0]]);
    }

    #[test]
    fn nice_steps_are_nice() {
        assert_eq!(nice_step(10.0), 2.0);
        assert_eq!(nice_step(100.0), 20.0);
        assert_eq!(nice_step(3.0), 1.0);
        assert_eq!(nice_step(0.5), 0.1);
    }
}

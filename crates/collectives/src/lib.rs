//! Baseline collective-communication operations.
//!
//! These are the "existing communication library" routines the paper
//! contrasts its algorithms against (§2): a direct gather, a one-to-all
//! broadcast using the recursive-halving pattern of `Br_Lin`, a
//! personalized all-to-all built from `p` pairwise permutations (the
//! XOR-schedule implementation of Hambrusch/Hameed/Khokhar, reference \[8\]),
//! plus a ring all-gather and a dissemination barrier used by extensions.
//!
//! All operations are written against
//! [`mpp_runtime::Communicator`] and therefore run both on
//! the timed simulator and on real threads.

use mpp_runtime::{Communicator, Message, Payload, Tag};

/// One-to-all broadcast over an ordered participant list, root at
/// position 0.
///
/// Uses the pattern the paper describes for 2-Step's broadcast phase:
/// view the participants as a linear array; the holder sends to the node
/// `⌈n/2⌉` positions away, then both halves recurse. `⌈log₂ n⌉` rounds.
///
/// Every participant must call this; `data` must be `Some` exactly at the
/// root. Returns the broadcast payload on every participant.
///
/// The payload travels as a shared-ownership [`Payload`] rope: each hold
/// point forwards the *same* buffer it received, so an `n`-participant
/// broadcast of `m` bytes copies `m` bytes at most once (when the root
/// hands in a borrowed slice) instead of `⌈log₂ n⌉` times.
///
/// # Panics
/// Panics if the calling rank is not in `order`, or if `data` presence
/// disagrees with the caller's position.
pub async fn bcast_from_first<P: Into<Payload>>(
    comm: &mut dyn Communicator,
    order: &[usize],
    data: Option<P>,
    tag_base: Tag,
) -> Payload {
    let me = comm.rank();
    let my_pos = order
        .iter()
        .position(|&r| r == me)
        .expect("caller not in bcast order");
    assert_eq!(
        my_pos == 0,
        data.is_some(),
        "exactly the root provides data"
    );

    let mut payload: Option<Payload> = data.map(Into::into);
    let mut lo = 0usize;
    let mut hi = order.len();
    let mut depth: Tag = 0;
    // Walk down the recursion tree along the segment containing `my_pos`.
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        if my_pos == lo {
            // Holder of this segment forwards to the second half. Cloning
            // a rope shares the underlying buffers — no byte copies.
            let buf = payload.clone().expect("segment holder must hold data");
            comm.send_payload(order[mid], tag_base + depth, buf);
            comm.next_iteration();
            hi = mid;
        } else if my_pos == mid {
            let msg = comm.recv(Some(order[lo]), Some(tag_base + depth)).await;
            payload = Some(msg.data);
            comm.next_iteration();
            lo = mid;
        } else if my_pos < mid {
            comm.next_iteration();
            hi = mid;
        } else {
            comm.next_iteration();
            lo = mid;
        }
        depth += 1;
    }
    payload.expect("broadcast did not reach this rank")
}

/// Direct gather: every rank in `senders` (except the root, if present)
/// sends its payload straight to `root`. This is the paper's 2-Step
/// gather — it deliberately concentrates `O(s)` congestion at the root.
///
/// Every rank in `senders` must pass `Some(payload)`; the root (whether or
/// not it is a sender) receives and returns all messages sorted by source
/// rank, other ranks return an empty vector.
pub async fn gather_direct(
    comm: &mut dyn Communicator,
    root: usize,
    senders: &[usize],
    my_payload: Option<&[u8]>,
    tag: Tag,
) -> Vec<Message> {
    let me = comm.rank();
    let am_sender = senders.contains(&me);
    assert_eq!(
        am_sender,
        my_payload.is_some(),
        "senders and only senders supply a payload"
    );

    if am_sender && me != root {
        comm.send(root, tag, my_payload.unwrap());
    }
    let mut out = Vec::new();
    if me == root {
        if let Some(p) = my_payload {
            out.push(Message {
                src: me,
                tag,
                data: Payload::from_slice(p),
            });
        }
        let expect = senders.iter().filter(|&&s| s != root).count();
        for _ in 0..expect {
            out.push(comm.recv(None, Some(tag)).await);
        }
        out.sort_by_key(|m| m.src);
    }
    out
}

/// Partner of `rank` in round `round` of the personalized-exchange
/// schedule over `p` ranks, as `(send_to, recv_from)`.
///
/// For power-of-two `p` this is the XOR schedule of reference \[8\]
/// (`rank ^ round`, self-inverse); otherwise a cyclic-shift schedule where
/// in round `i` rank `r` sends to `(r + i) mod p` and receives from
/// `(r - i) mod p`. Rounds run `1..p`; each round is a permutation, so
/// link load stays balanced.
pub fn exchange_partner(p: usize, round: usize, rank: usize) -> (usize, usize) {
    debug_assert!(round >= 1 && round < p && rank < p);
    if p.is_power_of_two() {
        let partner = rank ^ round;
        (partner, partner)
    } else {
        ((rank + round) % p, (rank + p - round) % p)
    }
}

/// Personalized all-to-all specialized to s-to-p broadcasting: ranks for
/// which `is_source` holds send their payload to every other rank over
/// `p-1` permutation rounds; everyone returns the received messages
/// (their own payload included for sources), sorted by source.
///
/// Non-sources "send null messages" in the paper's phrasing; here a null
/// message is simply skipped, which is what a real implementation does.
pub async fn personalized_from_sources(
    comm: &mut dyn Communicator,
    is_source: &dyn Fn(usize) -> bool,
    my_payload: Option<&[u8]>,
    tag: Tag,
) -> Vec<Message> {
    let p = comm.size();
    let me = comm.rank();
    assert_eq!(is_source(me), my_payload.is_some());

    // Convert the payload to a shared rope once; every round's send then
    // shares the same buffer instead of re-copying it.
    let rope = my_payload.map(Payload::from_slice);
    let mut out = Vec::new();
    if let Some(pay) = &rope {
        out.push(Message {
            src: me,
            tag,
            data: pay.clone(),
        });
    }
    for round in 1..p {
        let (to, from) = exchange_partner(p, round, me);
        if let Some(pay) = &rope {
            comm.send_payload(to, tag, pay.clone());
        }
        if is_source(from) {
            out.push(comm.recv(Some(from), Some(tag)).await);
        }
        comm.next_iteration();
    }
    out.sort_by_key(|m| m.src);
    out
}

/// Ring all-gather over an ordered participant list: after `n-1` rounds
/// every participant holds every participant's payload, sorted by rank.
/// Used by extension benchmarks as another library-style baseline.
pub async fn allgather_ring(
    comm: &mut dyn Communicator,
    order: &[usize],
    my_payload: &[u8],
    tag: Tag,
) -> Vec<Message> {
    let n = order.len();
    let me = comm.rank();
    let my_pos = order
        .iter()
        .position(|&r| r == me)
        .expect("caller not in allgather order");
    let mine = Payload::from_slice(my_payload);
    if n == 1 {
        return vec![Message {
            src: me,
            tag,
            data: mine,
        }];
    }
    let next = order[(my_pos + 1) % n];
    let prev = order[(my_pos + n - 1) % n];

    let mut out = vec![Message {
        src: me,
        tag,
        data: mine.clone(),
    }];
    // Round k delivers the payload originated by the participant k+1
    // positions behind us; `src` is rewritten from relayer to originator.
    // Each relay forwards the received rope as-is — no byte copies.
    let mut forward = mine;
    for k in 0..n - 1 {
        comm.send_payload(next, tag, forward.clone());
        let got = comm.recv(Some(prev), Some(tag)).await;
        forward = got.data.clone();
        let origin = order[(my_pos + n - 1 - k) % n];
        out.push(Message {
            src: origin,
            tag: got.tag,
            data: got.data,
        });
        comm.next_iteration();
    }
    out.sort_by_key(|m| m.src);
    out
}

/// Dissemination barrier implemented with real messages (an alternative
/// to the kernel's modelled barrier): `⌈log₂ p⌉` rounds; in round `k`
/// rank `r` signals `(r + 2^k) mod p` and waits for `(r - 2^k) mod p`.
pub async fn barrier_dissemination(comm: &mut dyn Communicator, tag: Tag) {
    let p = comm.size();
    let me = comm.rank();
    let mut step = 1usize;
    let mut round: Tag = 0;
    while step < p {
        let to = (me + step) % p;
        let from = (me + p - step) % p;
        comm.send(to, tag + round, &[]);
        comm.recv(Some(from), Some(tag + round)).await;
        step <<= 1;
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    #[test]
    fn bcast_reaches_everyone() {
        for p in [1usize, 2, 3, 5, 8, 13, 16] {
            let out = run_threads(p, async |comm| {
                let order: Vec<usize> = (0..comm.size()).collect();
                let data = (comm.rank() == 0).then(|| b"payload".to_vec());
                bcast_from_first(comm, &order, data, 100).await
            });
            for r in out.results {
                assert_eq!(r, b"payload");
            }
        }
    }

    #[test]
    fn bcast_respects_arbitrary_order() {
        let out = run_threads(6, async |comm| {
            let order = vec![3usize, 1, 4, 0, 5, 2];
            let data = (comm.rank() == 3).then(|| vec![9u8; 32]);
            bcast_from_first(comm, &order, data, 0).await
        });
        for r in out.results {
            assert_eq!(r, vec![9u8; 32]);
        }
    }

    #[test]
    fn gather_collects_sorted() {
        let out = run_threads(6, async |comm| {
            let senders = vec![1usize, 4, 5];
            let mine = senders
                .contains(&comm.rank())
                .then(|| vec![comm.rank() as u8]);
            gather_direct(comm, 0, &senders, mine.as_deref(), 7).await
        });
        let at_root = &out.results[0];
        assert_eq!(at_root.len(), 3);
        assert_eq!(
            at_root.iter().map(|m| m.src).collect::<Vec<_>>(),
            vec![1, 4, 5]
        );
        assert!(out.results[1].is_empty());
    }

    #[test]
    fn gather_with_root_as_sender() {
        let out = run_threads(4, async |comm| {
            let senders = vec![0usize, 2];
            let mine = senders
                .contains(&comm.rank())
                .then(|| vec![comm.rank() as u8 + 10]);
            gather_direct(comm, 0, &senders, mine.as_deref(), 1).await
        });
        let at_root = &out.results[0];
        assert_eq!(
            at_root.iter().map(|m| m.src).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(at_root[0].data, vec![10]);
    }

    #[test]
    fn exchange_schedule_is_permutation_every_round() {
        for p in [4usize, 7, 8, 10, 16] {
            for round in 1..p {
                let mut hit = vec![false; p];
                for rank in 0..p {
                    let (to, _) = exchange_partner(p, round, rank);
                    assert!(!hit[to], "p={p} round={round}: {to} targeted twice");
                    hit[to] = true;
                    assert_ne!(to, rank, "p={p} round={round}: self-partner");
                }
            }
        }
    }

    #[test]
    fn exchange_send_recv_partners_agree() {
        // If rank a sends to b in round i, then b must expect to receive
        // from a in round i.
        for p in [5usize, 8, 12] {
            for round in 1..p {
                for rank in 0..p {
                    let (to, _) = exchange_partner(p, round, rank);
                    let (_, from_of_to) = exchange_partner(p, round, to);
                    assert_eq!(from_of_to, rank, "p={p} round={round} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn personalized_delivers_all_source_payloads() {
        for p in [4usize, 6, 8] {
            let out = run_threads(p, async |comm| {
                let sources = [0usize, 2, 3];
                let is_src = |r: usize| sources.contains(&r);
                let mine = is_src(comm.rank()).then(|| vec![comm.rank() as u8; 16]);
                personalized_from_sources(comm, &is_src, mine.as_deref(), 50).await
            });
            for msgs in out.results {
                assert_eq!(
                    msgs.iter().map(|m| m.src).collect::<Vec<_>>(),
                    vec![0, 2, 3]
                );
                for m in msgs {
                    assert_eq!(m.data, vec![m.src as u8; 16]);
                }
            }
        }
    }

    #[test]
    fn allgather_ring_all_payloads() {
        let out = run_threads(5, async |comm| {
            let order: Vec<usize> = (0..comm.size()).collect();
            let payload = [comm.rank() as u8; 8];
            allgather_ring(comm, &order, &payload, 3).await
        });
        for msgs in out.results {
            assert_eq!(msgs.len(), 5);
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(m.src, i);
                assert_eq!(m.data, vec![i as u8; 8]);
            }
        }
    }

    #[test]
    fn allgather_single_rank() {
        let out = run_threads(1, async |comm| allgather_ring(comm, &[0], b"solo", 1).await);
        assert_eq!(out.results[0][0].data, b"solo");
    }

    #[test]
    fn dissemination_barrier_completes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let out = run_threads(7, async |comm| {
            count.fetch_add(1, Ordering::SeqCst);
            barrier_dissemination(comm, 900).await;
            count.load(Ordering::SeqCst)
        });
        assert!(out.results.iter().all(|&v| v == 7));
    }
}

/// Length-prefixed framing for a list of byte chunks (scatter payloads).
fn frame_chunks(chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + chunks.iter().map(|c| 4 + c.len()).sum::<usize>());
    out.extend_from_slice(&(chunks.len() as u32).to_le_bytes());
    for c in chunks {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    out
}

fn unframe_chunks(bytes: &[u8]) -> Vec<Vec<u8>> {
    let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = 4;
    for _ in 0..count {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        out.push(bytes[at..at + len].to_vec());
        at += len;
    }
    debug_assert_eq!(at, bytes.len(), "trailing bytes in chunk frame");
    out
}

/// Binomial scatter over an ordered participant list, root at position 0:
/// participant `i` ends with `chunks[i]`. The root provides one chunk per
/// participant; at each recursion step the segment holder forwards the
/// second half's chunks in one combined message, so the root sends
/// `⌈log₂ n⌉` messages instead of `n-1`.
pub async fn scatter_from_first(
    comm: &mut dyn Communicator,
    order: &[usize],
    chunks: Option<Vec<Vec<u8>>>,
    tag_base: Tag,
) -> Vec<u8> {
    let me = comm.rank();
    let my_pos = order
        .iter()
        .position(|&r| r == me)
        .expect("caller not in scatter order");
    assert_eq!(
        my_pos == 0,
        chunks.is_some(),
        "exactly the root provides chunks"
    );
    if let Some(c) = &chunks {
        assert_eq!(c.len(), order.len(), "one chunk per participant");
    }

    // Walk the same segment tree as `bcast_from_first`, but carry only
    // the chunks destined for the current segment.
    let mut mine: Option<Vec<Vec<u8>>> = chunks;
    let mut lo = 0usize;
    let mut hi = order.len();
    let mut depth: Tag = 0;
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        if my_pos == lo {
            let all = mine.as_mut().expect("segment holder must hold chunks");
            // Chunks are indexed relative to the current segment [lo, hi).
            let second_half = all.split_off(mid - lo);
            comm.send(order[mid], tag_base + depth, &frame_chunks(&second_half));
            hi = mid;
        } else if my_pos == mid {
            let msg = comm.recv(Some(order[lo]), Some(tag_base + depth)).await;
            mine = Some(unframe_chunks(&msg.data.contiguous()));
            lo = mid;
        } else if my_pos < mid {
            hi = mid;
        } else {
            lo = mid;
        }
        depth += 1;
        comm.next_iteration();
    }
    let mut v = mine.expect("scatter did not reach this rank");
    debug_assert_eq!(v.len(), 1);
    v.pop().unwrap()
}

/// An associative combining function for reductions.
pub type Combine<'a> = &'a dyn Fn(&[u8], &[u8]) -> Vec<u8>;

/// Binomial-tree reduction to the first participant: combines every
/// participant's contribution with the associative `combine` function.
/// Returns `Some(total)` at the root, `None` elsewhere.
pub async fn reduce_to_first(
    comm: &mut dyn Communicator,
    order: &[usize],
    my_contrib: &[u8],
    combine: Combine<'_>,
    tag_base: Tag,
) -> Option<Vec<u8>> {
    let me = comm.rank();
    let my_pos = order
        .iter()
        .position(|&r| r == me)
        .expect("caller not in reduce order");
    let mut acc = my_contrib.to_vec();

    // Process the segment tree bottom-up: mirror of bcast_from_first.
    // Collect the path of segments containing my_pos (root segment
    // first), then act deepest-first.
    let mut path = Vec::new();
    let (mut lo, mut hi) = (0usize, order.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        path.push((lo, mid, hi));
        if my_pos < mid {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    for (depth, &(lo, mid, _hi)) in path.iter().enumerate().rev() {
        let tag = tag_base + depth as Tag;
        if my_pos == mid {
            comm.send(order[lo], tag, &acc);
            comm.next_iteration();
            return None; // contribution handed up; done
        } else if my_pos == lo {
            let msg = comm.recv(Some(order[mid]), Some(tag)).await;
            acc = combine(&acc, &msg.data.contiguous());
            comm.next_iteration();
        }
    }
    (my_pos == 0).then_some(acc)
}

/// All-reduce: binomial reduction followed by a broadcast of the result.
pub async fn allreduce(
    comm: &mut dyn Communicator,
    order: &[usize],
    my_contrib: &[u8],
    combine: Combine<'_>,
    tag_base: Tag,
) -> Vec<u8> {
    let reduced = reduce_to_first(comm, order, my_contrib, combine, tag_base).await;
    bcast_from_first(comm, order, reduced, tag_base + 64)
        .await
        .to_vec()
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use mpp_runtime::run_threads;

    fn sum_u64(a: &[u8], b: &[u8]) -> Vec<u8> {
        let x = u64::from_le_bytes(a.try_into().unwrap());
        let y = u64::from_le_bytes(b.try_into().unwrap());
        (x + y).to_le_bytes().to_vec()
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        for p in [1usize, 2, 3, 5, 8, 11] {
            let out = run_threads(p, async |comm| {
                let order: Vec<usize> = (0..comm.size()).collect();
                let chunks = (comm.rank() == 0).then(|| {
                    (0..comm.size())
                        .map(|i| vec![i as u8; i + 1])
                        .collect::<Vec<_>>()
                });
                scatter_from_first(comm, &order, chunks, 400).await
            });
            for (rank, chunk) in out.results.iter().enumerate() {
                assert_eq!(chunk, &vec![rank as u8; rank + 1], "p={p} rank={rank}");
            }
        }
    }

    #[test]
    fn scatter_respects_arbitrary_order() {
        let out = run_threads(4, async |comm| {
            let order = vec![2usize, 0, 3, 1];
            let chunks = (comm.rank() == 2)
                .then(|| vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
            scatter_from_first(comm, &order, chunks, 0).await
        });
        assert_eq!(out.results[2], b"a");
        assert_eq!(out.results[0], b"b");
        assert_eq!(out.results[3], b"c");
        assert_eq!(out.results[1], b"d");
    }

    #[test]
    fn reduce_sums_everything_at_root() {
        for p in [1usize, 2, 3, 6, 9, 16] {
            let out = run_threads(p, async |comm| {
                let order: Vec<usize> = (0..comm.size()).collect();
                let contrib = (comm.rank() as u64 + 1).to_le_bytes();
                reduce_to_first(comm, &order, &contrib, &sum_u64, 500).await
            });
            let want = (p as u64) * (p as u64 + 1) / 2;
            let at_root = out.results[0].as_ref().expect("root gets the total");
            assert_eq!(
                u64::from_le_bytes(at_root[..].try_into().unwrap()),
                want,
                "p={p}"
            );
            for r in 1..p {
                assert!(out.results[r].is_none());
            }
        }
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        let out = run_threads(7, async |comm| {
            let order: Vec<usize> = (0..comm.size()).collect();
            let contrib = (comm.rank() as u64).to_le_bytes();
            allreduce(comm, &order, &contrib, &sum_u64, 600).await
        });
        for r in out.results {
            assert_eq!(u64::from_le_bytes(r[..].try_into().unwrap()), 21);
        }
    }

    #[test]
    fn chunk_framing_roundtrip() {
        let chunks = vec![vec![], vec![1], vec![2, 3, 4]];
        assert_eq!(unframe_chunks(&frame_chunks(&chunks)), chunks);
        assert_eq!(unframe_chunks(&frame_chunks(&[])), Vec::<Vec<u8>>::new());
    }
}

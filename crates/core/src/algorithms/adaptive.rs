//! Adaptive repositioning — the extension the paper leaves open.
//!
//! §3: "Whether it pays to perform the redistribution depends on the
//! quality of the initial distribution of sources. Our current
//! implementations do not check whether the initial distribution is
//! close to an ideal distribution and always reposition."
//!
//! [`ReposAdaptive`] performs that check: it scores the input placement
//! with [`crate::quality::placement_quality`] (a pure local computation
//! — every processor knows the source positions, so all ranks reach the
//! same decision without communication) and only repositions when the
//! score falls below a threshold.

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::{Repos, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;
use crate::quality::placement_quality;
use crate::runner::AlgoKind;

/// `Repos_<base>` with a quality gate.
#[derive(Debug, Clone, Copy)]
pub struct ReposAdaptive<A> {
    base: A,
    kind: AlgoKind,
    name: &'static str,
    /// Reposition only when the placement quality is below this.
    pub threshold: f64,
}

impl<A: StpAlgorithm + Copy> ReposAdaptive<A> {
    /// Wrap a base algorithm; `kind` identifies it for the quality
    /// metric. Default threshold 0.7 (see `quality` for the scale).
    pub fn new(base: A, kind: AlgoKind, name: &'static str) -> Self {
        ReposAdaptive {
            base,
            kind,
            name,
            threshold: 0.7,
        }
    }

    /// Would this input be repositioned?
    pub fn would_reposition(&self, shape: MeshShape, sources: &[usize]) -> bool {
        placement_quality(shape, sources, self.kind)
            .map(|q| q < self.threshold)
            .unwrap_or(false)
    }
}

impl<A: StpAlgorithm + Copy> StpAlgorithm for ReposAdaptive<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            if self.would_reposition(ctx.shape, ctx.sources) {
                Repos::new(self.base, self.name).run(comm, ctx).await
            } else {
                self.base.run(comm, ctx).await
            }
        })
    }

    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        self.base.ideal_sources(shape, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::Machine;
    use mpp_runtime::run_threads;

    use crate::algorithms::BrXySource;
    use crate::distribution::SourceDist;
    use crate::msgset::payload_for;
    use crate::runner::run_sources;

    fn adaptive() -> ReposAdaptive<BrXySource> {
        ReposAdaptive::new(BrXySource, AlgoKind::BrXySource, "ReposAdaptive_xy_source")
    }

    #[test]
    fn decision_differs_by_distribution() {
        let shape = MeshShape::new(16, 16);
        let alg = adaptive();
        let ideal = BrXySource.ideal_sources(shape, 48).unwrap();
        assert!(
            !alg.would_reposition(shape, &ideal),
            "ideal input must not be repositioned"
        );
        let sq = SourceDist::SquareBlock.place(shape, 49);
        assert!(
            alg.would_reposition(shape, &sq),
            "square block should trigger repositioning"
        );
    }

    #[test]
    fn correct_on_both_paths() {
        let shape = MeshShape::new(8, 8);
        let alg = adaptive();
        for dist in [SourceDist::SquareBlock, SourceDist::Row] {
            let sources = dist.place(shape, 16);
            let out = run_threads(shape.p(), async |comm| {
                let payload = sources
                    .binary_search(&comm.rank())
                    .is_ok()
                    .then(|| payload_for(comm.rank(), 64));
                let ctx = StpCtx {
                    shape,
                    sources: &sources,
                    payload: payload.as_deref(),
                };
                let set = alg.run(comm, &ctx).await;
                set.sources().collect::<Vec<_>>() == sources
            });
            assert!(out.results.iter().all(|&ok| ok), "{}", dist.name());
        }
    }

    #[test]
    fn adaptive_never_much_worse_than_both_fixed_choices() {
        // On a near-ideal input, adaptive ≈ plain (it skips the
        // permutation); on a poor input, adaptive ≈ repositioning.
        let machine = Machine::paragon(16, 16);
        let run = |kind: AlgoKind, dist: SourceDist| {
            let sources = dist.place(machine.shape, 75);
            run_sources(
                &machine,
                mpp_model::LibraryKind::Nx,
                &sources,
                &|src| payload_for(src, 6144),
                kind,
            )
            .expect("run failed")
            .makespan_ns as f64
        };
        // We can't run ReposAdaptive through AlgoKind (it's an
        // extension), so measure through the simulator directly.
        let shape = machine.shape;
        let alg = adaptive();
        let adaptive_ns = |dist: SourceDist| {
            let sources = dist.place(shape, 75);
            let out =
                mpp_runtime::run_simulated(&machine, mpp_model::LibraryKind::Nx, async |comm| {
                    let payload = sources
                        .binary_search(&comm.rank())
                        .is_ok()
                        .then(|| payload_for(comm.rank(), 6144));
                    let ctx = StpCtx {
                        shape,
                        sources: &sources,
                        payload: payload.as_deref(),
                    };
                    alg.run(comm, &ctx).await.len()
                });
            out.makespan_ns as f64
        };

        // Ideal-ish input: adaptive must avoid the repositioning cost.
        let plain_rows = run(AlgoKind::BrXySource, SourceDist::Row);
        let adapt_rows = adaptive_ns(SourceDist::Row);
        assert!(
            adapt_rows <= plain_rows * 1.02,
            "{adapt_rows} vs plain {plain_rows}"
        );

        // Hard input: adaptive must capture (most of) the repositioning
        // gain.
        let repos_cross = run(AlgoKind::ReposXySource, SourceDist::Cross);
        let adapt_cross = adaptive_ns(SourceDist::Cross);
        assert!(
            adapt_cross <= repos_cross * 1.05,
            "{adapt_cross} vs repos {repos_cross}"
        );
    }
}

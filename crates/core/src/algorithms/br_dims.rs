//! Extension: `Br_dims` — the `Br_xy_*` idea on an N-dimensional
//! logical grid.
//!
//! The paper's dimension-at-a-time algorithms are defined for 2-D
//! meshes; machines like the T3D are physically 3-D, and nothing in the
//! construction is specific to two dimensions: process one grid
//! dimension at a time, invoking `Br_Lin` within each line of that
//! dimension; after dimension `d`, every processor holds the union of
//! its (d+1)-dimensional slice. Dimensions are ordered by the
//! `Br_xy_source` rule generalized: ascending maximum source count per
//! line (spread the smallest messages first).

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator, Tag};

use crate::algorithms::{br_lin_over, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Tag base; each dimension phase gets its own range.
const TAG: Tag = 5_000;

/// An N-dimensional logical grid over ranks `0..extents.product()`,
/// row-major with the *last* dimension fastest (matches `MeshShape`
/// when `extents = [rows, cols]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridShape {
    /// Extent of each dimension (all ≥ 1).
    pub extents: Vec<usize>,
}

impl GridShape {
    /// Construct; panics on empty or zero extents.
    pub fn new(extents: Vec<usize>) -> Self {
        assert!(
            !extents.is_empty() && extents.iter().all(|&e| e > 0),
            "bad grid {extents:?}"
        );
        GridShape { extents }
    }

    /// Total ranks.
    pub fn p(&self) -> usize {
        self.extents.iter().product()
    }

    /// Coordinates of a rank.
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        let mut c = vec![0; self.extents.len()];
        let mut rest = rank;
        for d in (0..self.extents.len()).rev() {
            c[d] = rest % self.extents[d];
            rest /= self.extents[d];
        }
        debug_assert_eq!(rest, 0);
        c
    }

    /// Rank of coordinates.
    pub fn rank(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.extents.len());
        coords.iter().zip(&self.extents).fold(0, |acc, (&c, &e)| {
            debug_assert!(c < e);
            acc * e + c
        })
    }

    /// The ranks of the grid line through `coords` along dimension `d`.
    pub fn line(&self, coords: &[usize], d: usize) -> Vec<usize> {
        let mut c = coords.to_vec();
        (0..self.extents[d])
            .map(|i| {
                c[d] = i;
                self.rank(&c)
            })
            .collect()
    }

    /// A natural 3-D factorization of `p` (for T3D-style grids).
    pub fn cube_for(p: usize) -> Self {
        match mpp_model::Topology::torus_for(p) {
            mpp_model::Topology::Torus3D { dx, dy, dz } => GridShape::new(vec![dz, dy, dx]),
            _ => unreachable!(),
        }
    }
}

/// `Br_dims`: dimension-at-a-time broadcasting on an N-d logical grid.
#[derive(Debug, Clone)]
pub struct BrDims {
    /// The logical grid (its `p` must equal the communicator size).
    pub grid: GridShape,
}

impl BrDims {
    /// On the given grid.
    pub fn new(grid: GridShape) -> Self {
        BrDims { grid }
    }

    /// Order dimensions by ascending maximum source count per line
    /// (the `Br_xy_source` rule generalized).
    fn dim_order(&self, sources: &[usize]) -> Vec<usize> {
        let n = self.grid.extents.len();
        let mut max_per_dim = vec![0usize; n];
        for d in 0..n {
            // Count sources per line of dimension d: key = coords with
            // dimension d removed.
            let mut counts = std::collections::HashMap::new();
            for &s in sources {
                let mut c = self.grid.coords(s);
                c[d] = 0;
                *counts.entry(c).or_insert(0usize) += 1;
            }
            max_per_dim[d] = counts.values().copied().max().unwrap_or(0);
        }
        let mut order: Vec<usize> = (0..n).collect();
        // Ascending max count; ties towards the longer dimension (more
        // parallelism early), then index for determinism.
        order.sort_by_key(|&d| (max_per_dim[d], usize::MAX - self.grid.extents[d], d));
        order
    }
}

impl StpAlgorithm for BrDims {
    fn name(&self) -> &'static str {
        "Br_dims"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            assert_eq!(
                self.grid.p(),
                comm.size(),
                "grid does not match communicator"
            );
            let me = comm.rank();
            let my_coords = self.grid.coords(me);
            let n = self.grid.extents.len();

            let mut set = match ctx.payload {
                Some(p) => MessageSet::single(me, p),
                None => MessageSet::new(),
            };

            // A rank "has" messages before phase k iff its processed-dims
            // slice contains a source; track with a slice-key set.
            let order = self.dim_order(ctx.sources);
            let mut processed: Vec<usize> = Vec::new();
            for (phase, &d) in order.iter().enumerate() {
                let line = self.grid.line(&my_coords, d);
                let has: Vec<bool> = line
                    .iter()
                    .map(|&r| {
                        // Before phase d, r holds messages iff some source
                        // matches r on every dimension not yet processed
                        // (including d itself — only the processed slices
                        // have been unioned so far).
                        let rc = self.grid.coords(r);
                        ctx.sources.iter().any(|&s| {
                            let sc = self.grid.coords(s);
                            (0..n).all(|dd| processed.contains(&dd) || sc[dd] == rc[dd])
                        })
                    })
                    .collect();
                br_lin_over(comm, &line, &has, &mut set, TAG + (phase as Tag) * 64).await;
                processed.push(d);
            }
            set
        })
    }

    fn ideal_sources(&self, _shape: MeshShape, _s: usize) -> Option<Vec<usize>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(grid: GridShape, sources: Vec<usize>, len: usize) {
        let p = grid.p();
        // The 2-D StpCtx shape is only used for validation bookkeeping.
        let shape = MeshShape::near_square(p);
        let alg = BrDims::new(grid);
        let out = run_threads(p, async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, len));
            }
        }
    }

    #[test]
    fn grid_coords_roundtrip() {
        let g = GridShape::new(vec![2, 3, 4]);
        assert_eq!(g.p(), 24);
        for r in 0..24 {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
        // last dimension fastest
        assert_eq!(g.coords(1), vec![0, 0, 1]);
        assert_eq!(g.coords(4), vec![0, 1, 0]);
    }

    #[test]
    fn lines_cover_dimension() {
        let g = GridShape::new(vec![2, 3]);
        assert_eq!(g.line(&[1, 0], 1), vec![3, 4, 5]);
        assert_eq!(g.line(&[0, 2], 0), vec![2, 5]);
    }

    #[test]
    fn three_d_grid_broadcast() {
        check(GridShape::new(vec![2, 3, 4]), vec![0, 7, 13, 23], 32);
    }

    #[test]
    fn one_d_grid_is_br_lin() {
        check(GridShape::new(vec![8]), vec![2, 5], 16);
    }

    #[test]
    fn two_d_matches_xy_semantics() {
        check(GridShape::new(vec![4, 4]), vec![1, 6, 11], 16);
    }

    #[test]
    fn four_d_hypercubeish() {
        check(GridShape::new(vec![2, 2, 2, 2]), vec![0, 15], 8);
    }

    #[test]
    fn cube_for_factorizes() {
        let g = GridShape::cube_for(64);
        assert_eq!(g.p(), 64);
        assert_eq!(g.extents.len(), 3);
    }

    #[test]
    fn all_sources_3d() {
        check(GridShape::new(vec![2, 2, 3]), (0..12).collect(), 8);
    }
}

//! `Br_Lin` (paper §2): recursive pairing on a linear processor order.

use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::{br_lin_over, tags, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Linear orders `Br_Lin` can use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinearOrder {
    /// Snake-like (boustrophedon) row-major order — the paper's choice on
    /// meshes, keeping linear neighbours physically adjacent.
    #[default]
    Snake,
    /// Plain row-major rank order — what one would use on a machine with
    /// uncontrollable placement (T3D).
    RowMajor,
}

/// Algorithm `Br_Lin`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrLin {
    /// The linear order used for pairing.
    pub order: LinearOrder,
}

impl BrLin {
    /// `Br_Lin` with the snake order (the paper's mesh configuration).
    pub fn new() -> Self {
        BrLin::default()
    }

    /// `Br_Lin` with plain rank order.
    pub fn row_major() -> Self {
        BrLin {
            order: LinearOrder::RowMajor,
        }
    }
}

impl StpAlgorithm for BrLin {
    fn name(&self) -> &'static str {
        "Br_Lin"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let order: Vec<usize> = match self.order {
                LinearOrder::Snake => ctx.shape.snake_order(),
                LinearOrder::RowMajor => (0..ctx.shape.p()).collect(),
            };
            let has: Vec<bool> = order.iter().map(|&r| ctx.is_source(r)).collect();
            let mut set = match ctx.payload {
                Some(p) => MessageSet::single(comm.rank(), p),
                None => MessageSet::new(),
            };
            br_lin_over(comm, &order, &has, &mut set, tags::BR_LIN).await;
            set
        })
    }

    fn ideal_sources(&self, shape: mpp_model::MeshShape, s: usize) -> Option<Vec<usize>> {
        // Paper §4: the left diagonal is "one of the ideal distributions
        // for Br_Lin" and the least sensitive to machine size.
        Some(crate::ideal::ideal_left_diagonal(shape, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::MeshShape;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, len: usize, alg: BrLin) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(
                    set.get(s).unwrap(),
                    payload_for(s, len),
                    "rank {rank} src {s}"
                );
            }
        }
    }

    #[test]
    fn single_source_square() {
        check(MeshShape::new(4, 4), vec![5], 64, BrLin::new());
    }

    #[test]
    fn many_sources_square() {
        check(
            MeshShape::new(4, 4),
            vec![0, 3, 7, 12, 15],
            16,
            BrLin::new(),
        );
    }

    #[test]
    fn all_sources() {
        let shape = MeshShape::new(3, 3);
        check(shape, (0..9).collect(), 8, BrLin::new());
    }

    #[test]
    fn odd_mesh_row_major() {
        check(MeshShape::new(3, 5), vec![2, 7, 14], 32, BrLin::row_major());
    }

    #[test]
    fn odd_mesh_snake() {
        check(MeshShape::new(5, 3), vec![0, 8], 32, BrLin::new());
    }

    #[test]
    fn zero_length_payloads() {
        check(MeshShape::new(2, 4), vec![1, 6], 0, BrLin::new());
    }
}

//! `Br_xy_source` and `Br_xy_dim` (paper §2): broadcast one mesh
//! dimension at a time, invoking `Br_Lin` within each row/column.
//!
//! The two algorithms differ only in how the first dimension is chosen:
//!
//! * `Br_xy_source`: the dimension with the *smaller maximum source
//!   count* goes first (`max_r < max_c` → rows first) — this grows the
//!   number of active processors as fast as possible while keeping
//!   message sizes small.
//! * `Br_xy_dim`: rows first iff `r ≥ c`, ignoring source positions.

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator, Tag};

use crate::algorithms::{br_lin_over, tags, StpAlgorithm, StpCtx};
use crate::distribution::{col_counts, row_counts};
use crate::msgset::MessageSet;

/// Which dimension is processed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimOrder {
    /// `Br_Lin` within each row, then within each column.
    RowsFirst,
    /// `Br_Lin` within each column, then within each row.
    ColsFirst,
}

/// A (sub-)mesh an xy-broadcast runs on: a logical shape plus the global
/// rank at each row-major position. The identity plan covers the whole
/// machine; the partitioning algorithms build plans for machine halves.
#[derive(Debug, Clone)]
pub struct XyPlan {
    /// Shape of this (sub-)mesh.
    pub shape: MeshShape,
    /// Global rank at each row-major position; `ranks.len() == shape.p()`.
    pub ranks: Vec<usize>,
}

impl XyPlan {
    /// The whole machine as one plan.
    pub fn identity(shape: MeshShape) -> Self {
        XyPlan {
            shape,
            ranks: (0..shape.p()).collect(),
        }
    }

    /// Plan position of a global rank.
    pub fn pos_of(&self, rank: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == rank)
    }

    /// Global ranks of one plan row, left to right.
    pub fn row_order(&self, row: usize) -> Vec<usize> {
        (0..self.shape.cols)
            .map(|c| self.ranks[self.shape.rank(row, c)])
            .collect()
    }

    /// Global ranks of one plan column, top to bottom.
    pub fn col_order(&self, col: usize) -> Vec<usize> {
        (0..self.shape.rows)
            .map(|r| self.ranks[self.shape.rank(r, col)])
            .collect()
    }
}

/// Decide the `Br_xy_source` dimension order for a source placement.
///
/// `max_r` is the maximum number of sources in any row, `max_c` in any
/// column; rows go first when `max_r < max_c` (fewer sources per row →
/// smaller messages entering the second phase).
pub fn source_dim_order(shape: MeshShape, sources_pos: &[usize]) -> DimOrder {
    let max_r = row_counts(shape, sources_pos)
        .into_iter()
        .max()
        .unwrap_or(0);
    let max_c = col_counts(shape, sources_pos)
        .into_iter()
        .max()
        .unwrap_or(0);
    if max_r < max_c {
        DimOrder::RowsFirst
    } else {
        DimOrder::ColsFirst
    }
}

/// Decide the `Br_xy_dim` dimension order from the mesh shape alone.
pub fn shape_dim_order(shape: MeshShape) -> DimOrder {
    if shape.rows >= shape.cols {
        DimOrder::RowsFirst
    } else {
        DimOrder::ColsFirst
    }
}

/// Run a two-phase xy broadcast on a plan. `sources_pos` are *plan
/// positions* (row-major indices into `plan.ranks`) of the sources;
/// `set` is this rank's current holdings (must agree with membership).
///
/// Exposed for the partitioning algorithms, which run it on machine
/// halves.
pub(crate) async fn run_xy_on_plan(
    comm: &mut dyn Communicator,
    plan: &XyPlan,
    sources_pos: &[usize],
    order: DimOrder,
    set: &mut MessageSet,
    tag_phase1: Tag,
    tag_phase2: Tag,
) {
    let me = comm.rank();
    let my_pos = plan.pos_of(me).expect("rank not in xy plan");
    let (my_row, my_col) = plan.shape.coords(my_pos);
    let is_source_pos = |pos: usize| sources_pos.binary_search(&pos).is_ok();

    let rows_hit: Vec<bool> = {
        let mut v = vec![false; plan.shape.rows];
        for &sp in sources_pos {
            v[plan.shape.coords(sp).0] = true;
        }
        v
    };
    let cols_hit: Vec<bool> = {
        let mut v = vec![false; plan.shape.cols];
        for &sp in sources_pos {
            v[plan.shape.coords(sp).1] = true;
        }
        v
    };

    match order {
        DimOrder::RowsFirst => {
            // Phase 1: Br_Lin within my row.
            let row_order = plan.row_order(my_row);
            let has: Vec<bool> = (0..plan.shape.cols)
                .map(|c| is_source_pos(plan.shape.rank(my_row, c)))
                .collect();
            br_lin_over(comm, &row_order, &has, set, tag_phase1).await;
            // Phase 2: Br_Lin within my column; a position holds messages
            // iff its row contained any source.
            let col_order = plan.col_order(my_col);
            br_lin_over(comm, &col_order, &rows_hit, set, tag_phase2).await;
        }
        DimOrder::ColsFirst => {
            let col_order = plan.col_order(my_col);
            let has: Vec<bool> = (0..plan.shape.rows)
                .map(|r| is_source_pos(plan.shape.rank(r, my_col)))
                .collect();
            br_lin_over(comm, &col_order, &has, set, tag_phase1).await;
            let row_order = plan.row_order(my_row);
            br_lin_over(comm, &row_order, &cols_hit, set, tag_phase2).await;
        }
    }
}

/// Algorithm `Br_xy_source`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrXySource;

impl StpAlgorithm for BrXySource {
    fn name(&self) -> &'static str {
        "Br_xy_source"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let plan = XyPlan::identity(ctx.shape);
            let order = source_dim_order(ctx.shape, ctx.sources);
            let mut set = match ctx.payload {
                Some(p) => MessageSet::single(comm.rank(), p),
                None => MessageSet::new(),
            };
            run_xy_on_plan(
                comm,
                &plan,
                ctx.sources,
                order,
                &mut set,
                tags::BR_LIN,
                tags::BR_XY_PHASE2,
            )
            .await;
            set
        })
    }

    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        // Paper §5.2: a row distribution with ideally positioned rows.
        Some(crate::ideal::ideal_rows(shape, s))
    }
}

/// Algorithm `Br_xy_dim`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrXyDim;

impl StpAlgorithm for BrXyDim {
    fn name(&self) -> &'static str {
        "Br_xy_dim"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let plan = XyPlan::identity(ctx.shape);
            let order = shape_dim_order(ctx.shape);
            let mut set = match ctx.payload {
                Some(p) => MessageSet::single(comm.rank(), p),
                None => MessageSet::new(),
            };
            run_xy_on_plan(
                comm,
                &plan,
                ctx.sources,
                order,
                &mut set,
                tags::BR_LIN,
                tags::BR_XY_PHASE2,
            )
            .await;
            set
        })
    }

    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        Some(crate::ideal::ideal_rows(shape, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    use crate::distribution::SourceDist;
    use crate::msgset::payload_for;

    fn check<A: StpAlgorithm>(alg: A, shape: MeshShape, sources: Vec<usize>, len: usize) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, len));
            }
        }
    }

    #[test]
    fn xy_source_row_distribution() {
        let shape = MeshShape::new(4, 5);
        let sources = SourceDist::Row.place(shape, 10);
        check(BrXySource, shape, sources, 16);
    }

    #[test]
    fn xy_source_column_distribution() {
        let shape = MeshShape::new(4, 5);
        let sources = SourceDist::Column.place(shape, 8);
        check(BrXySource, shape, sources, 16);
    }

    #[test]
    fn xy_source_square_block() {
        let shape = MeshShape::new(5, 5);
        let sources = SourceDist::SquareBlock.place(shape, 9);
        check(BrXySource, shape, sources, 8);
    }

    #[test]
    fn xy_dim_cross() {
        let shape = MeshShape::new(5, 6);
        let sources = SourceDist::Cross.place(shape, 12);
        check(BrXyDim, shape, sources, 8);
    }

    #[test]
    fn xy_single_source_and_full() {
        let shape = MeshShape::new(3, 4);
        check(BrXySource, shape, vec![7], 4);
        check(BrXyDim, shape, (0..12).collect(), 4);
    }

    #[test]
    fn dim_order_decision_matches_paper_rule() {
        // Sources in a few columns, each column full: rows have few
        // sources each, columns have many -> rows first.
        let shape = MeshShape::new(4, 6);
        let sources = SourceDist::Column.place(shape, 8); // 2 full columns
        assert_eq!(source_dim_order(shape, &sources), DimOrder::RowsFirst);
        // Row distribution: max_r = c = 6 > max_c = rows hit -> cols...
        let row_sources = SourceDist::Row.place(shape, 6); // one full row
        assert_eq!(source_dim_order(shape, &row_sources), DimOrder::ColsFirst);
    }

    #[test]
    fn shape_order_rule() {
        assert_eq!(shape_dim_order(MeshShape::new(6, 4)), DimOrder::RowsFirst);
        assert_eq!(shape_dim_order(MeshShape::new(4, 6)), DimOrder::ColsFirst);
        assert_eq!(shape_dim_order(MeshShape::new(5, 5)), DimOrder::RowsFirst);
    }
}

//! Extension: dissemination (Bruck-style) all-gather as an s-to-p
//! broadcast.
//!
//! `⌈log₂ p⌉` rounds on any machine size: in round `k`, rank `r` sends
//! its *entire current set* to `(r + 2^k) mod p` and receives from
//! `(r - 2^k) mod p`. After all rounds every rank holds every source's
//! message.
//!
//! This is not one of the paper's algorithms — it is the algorithm a
//! modern MPI would use for `MPI_Allgatherv`, and it is included to
//! answer the one Figure-13a claim our 2-Step-shaped `MPI_AllGather`
//! model cannot reproduce: the convergence of AllGather towards
//! Alltoall as `s → p`. Run `repro-dissem` to see that a
//! dissemination-based allgather (especially with zero-copy block
//! placement, [`DissemAllGather::zero_copy`]) converges and even beats
//! Alltoall — evidence that Cray's library simply did not use it.

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::{StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Tag base for the dissemination rounds.
const TAG: u32 = 3_600;

/// Dissemination all-gather (extension algorithm).
#[derive(Debug, Clone, Copy)]
pub struct DissemAllGather {
    /// Whether receiving ranks pay the memcpy combining cost. A library
    /// writing blocks directly into a pre-allocated result buffer avoids
    /// it; a generic implementation (like `Br_Lin`'s) pays it.
    pub charge_combining: bool,
}

impl DissemAllGather {
    /// Combining cost charged (comparable to `Br_Lin`).
    pub fn new() -> Self {
        DissemAllGather {
            charge_combining: true,
        }
    }

    /// Zero-copy block placement (the MPI-library ideal).
    pub fn zero_copy() -> Self {
        DissemAllGather {
            charge_combining: false,
        }
    }
}

impl Default for DissemAllGather {
    fn default() -> Self {
        DissemAllGather::new()
    }
}

impl StpAlgorithm for DissemAllGather {
    fn name(&self) -> &'static str {
        if self.charge_combining {
            "DissemAllGather"
        } else {
            "DissemAllGather (zero-copy)"
        }
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let p = comm.size();
            let me = comm.rank();
            let mut set = match ctx.payload {
                Some(pl) => MessageSet::single(me, pl),
                None => MessageSet::new(),
            };

            // Track which sources each rank holds per round (pure function of
            // the source set, so both partners agree on whether a message
            // flows without extra synchronization).
            let mut holdings: Vec<Vec<bool>> = (0..p)
                .map(|r| (0..p).map(|src| r == src && ctx.is_source(src)).collect())
                .collect();

            let mut step = 1usize;
            let mut round: u32 = 0;
            while step < p {
                let to = (me + step) % p;
                let from = (me + p - step) % p;
                let i_send = holdings[me].iter().any(|&h| h);
                let sender_has = holdings[from].iter().any(|&h| h);
                if i_send {
                    comm.send_payload(to, TAG + round, set.to_payload());
                }
                if sender_has {
                    let msg = comm.recv(Some(from), Some(TAG + round)).await;
                    if self.charge_combining {
                        comm.charge_memcpy(msg.data.len());
                    }
                    let other =
                        MessageSet::from_payload(&msg.data).expect("malformed dissemination");
                    set.merge(other);
                }
                // Advance the holdings model for every rank simultaneously.
                let snapshot = holdings.clone();
                for (r, row) in holdings.iter_mut().enumerate() {
                    let r_from = (r + p - step) % p;
                    for (src, held) in row.iter_mut().enumerate() {
                        if snapshot[r_from][src] {
                            *held = true;
                        }
                    }
                }
                comm.next_iteration();
                step <<= 1;
                round += 1;
            }
            set
        })
    }

    fn ideal_sources(&self, _shape: MeshShape, _s: usize) -> Option<Vec<usize>> {
        None // cyclic symmetry: every placement behaves alike up to skew
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, len: usize, alg: DissemAllGather) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, len));
            }
        }
    }

    #[test]
    fn power_of_two() {
        check(
            MeshShape::new(4, 4),
            vec![0, 5, 10, 15],
            32,
            DissemAllGather::new(),
        );
    }

    #[test]
    fn non_power_of_two() {
        check(
            MeshShape::new(3, 5),
            vec![2, 7, 14],
            32,
            DissemAllGather::new(),
        );
        check(MeshShape::new(3, 3), vec![4], 16, DissemAllGather::new());
    }

    #[test]
    fn zero_copy_variant() {
        check(
            MeshShape::new(2, 4),
            vec![1, 6],
            64,
            DissemAllGather::zero_copy(),
        );
    }

    #[test]
    fn zero_copy_charges_nothing() {
        let shape = MeshShape::new(4, 4);
        let sources = vec![0usize, 7];
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), 64));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            let _ = DissemAllGather::zero_copy().run(comm, &ctx).await;
            comm.stats().memcpy_bytes
        });
        assert!(out.results.iter().all(|&b| b == 0));
    }

    #[test]
    fn all_sources() {
        check(
            MeshShape::new(3, 4),
            (0..12).collect(),
            8,
            DissemAllGather::new(),
        );
    }
}

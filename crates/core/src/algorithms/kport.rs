//! The k-ported algorithm family: saturate every injection port.
//!
//! The paper's machines are multi-ported (the T3D couples six network
//! ports per node; `MachineParams::ports_per_node` models it), yet the
//! §2 algorithms issue one send at a time and leave k−1 ports idle.
//! This module stripes the broadcast across all k ports using the
//! [`Communicator::send_batch`] primitive: the whole batch pays a
//! single α_send and its members occupy distinct injection slots, so up
//! to k wire times overlap (cf. Träff's k-ported message combining,
//! arXiv:2008.12144, and Zhou et al.'s multi-lane collectives,
//! arXiv:1603.06809).
//!
//! Three algorithms:
//!
//! * [`KPortLin`] — sources are striped into k *lanes* by index mod k;
//!   each lane runs an independent `Br_Lin` recursive-pairing merge
//!   over its own link-class-aware mesh traversal (see `build_lane`:
//!   a two-phase row/column decomposition with alternating orientation
//!   and staggered rotation, so concurrent lanes drive complementary
//!   link classes at the bandwidth-heavy late levels). Per level a rank
//!   ships all its lanes' snapshots in one batch. With k = 1 this
//!   degenerates to single-lane `Br_Lin`.
//! * [`KPortScatter`] — gather at a root, stripe the bundle into k
//!   parts batch-scattered to k leaders, then a k-lane broadcast merge.
//! * [`KPortAlltoall`] — port-striped direct exchange: every source
//!   batch-sends its message to the other p−1 ranks in rotated order,
//!   k destinations per batch.

use mpp_runtime::{CommFuture, Communicator, Tag};
use mpp_sim::Payload;

use crate::algorithms::{tags, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Tags per level inside a lane tag block: lane index is added to
/// `tag_base + level · LANE_STRIDE`, so lane counts are capped at 16.
const LANE_STRIDE: usize = 16;

/// Largest lane count any k-ported algorithm uses (the tag encoding
/// reserves `LANE_STRIDE` tags per level).
pub const MAX_LANES: usize = LANE_STRIDE;

/// The lane count for a machine with `ports` injection slots per node:
/// one lane per port, capped by the tag encoding and the machine size.
fn lane_count(ports: usize, p: usize) -> usize {
    ports.min(MAX_LANES).min(p).max(1)
}

/// Linear order of lane `v`: a boustrophedon traversal of the mesh —
/// row-major for even `v`, column-major for odd `v` — rotated by
/// `⌊v/2⌋` positions.
///
/// The pairing schedule's distances *halve* as the merged sets double
/// (see [`crate::pattern`]), so the bandwidth-heavy late levels pair
/// positions at order-distance 1 and 2 — mesh *neighbours* under a
/// boustrophedon traversal. Lane geometry therefore decides whether
/// concurrent lanes fight for wires exactly where the messages are
/// fattest: row-major and column-major lanes drive disjoint link
/// classes (row links vs column links), and differently-rotated lanes
/// of the same class pair disjoint edges (even vs odd). A plain
/// rotation by `j·p/k` — the obvious choice — preserves adjacency and
/// puts every lane on the *same* row links at the final levels.
///
/// Lane 0 is always the plain snake order, so `KPort_Lin` at k = 1 is
/// exactly `Br_Lin`. Degenerate 1×n / n×1 meshes have one link class;
/// there every lane is the snake rotated by `v`.
pub(crate) fn lane_order(shape: mpp_model::MeshShape, v: usize) -> Vec<usize> {
    let p = shape.p();
    let (rows, cols) = (shape.rows, shape.cols);
    let (col_major, shift) = if rows > 1 && cols > 1 {
        (v % 2 == 1, v / 2)
    } else {
        (false, v)
    };
    let base: Vec<usize> = if col_major {
        let mut o = Vec::with_capacity(p);
        for c in 0..cols {
            for r0 in 0..rows {
                let r = if c % 2 == 0 { r0 } else { rows - 1 - r0 };
                o.push(r * cols + c);
            }
        }
        o
    } else {
        shape.snake_order()
    };
    let shift = shift % p;
    (0..p).map(|i| base[(i + shift) % p]).collect()
}

/// One merge segment of a k-ported lane: a linear order over a group of
/// ranks (the whole machine, or one row/column of it) plus the initial
/// has-flags along it. Both are pure functions of globally known data
/// (source positions, root, k), so every rank derives byte-identical
/// lanes — the same property that makes the `Br_Lin` schedule
/// precomputable. A lane is a *sequence* of segments run back to back
/// (e.g. row merge then column merge).
pub(crate) struct KportLane {
    /// `order[i]` is the rank at linear position `i`.
    pub order: Vec<usize>,
    /// Whether position `i` initially holds this lane's messages.
    pub has: Vec<bool>,
}

/// Build lane `j`'s merge segments for initial holders `holds`.
///
/// On a proper 2D mesh with k ≥ 2 a lane is the paper's two-phase xy
/// decomposition of `Br_Lin` — merge within rows, then within columns —
/// because phase locality is what keeps k lanes from fighting over
/// wires: a single 100-position linear merge ships its mid-level
/// messages across half the mesh, where every lane's routes overlap.
/// Odd lanes run the phases in the opposite orientation (columns
/// first), so at any instant half the lanes drive row links and half
/// drive column links — complementary link classes. `⌊j/2⌋` rotates the
/// in-line pairing so same-orientation lanes meet over different edges.
///
/// With k = 1 (or a degenerate 1×n mesh) the lane is a single
/// boustrophedon segment — `KPort_Lin` then *is* `Br_Lin`.
pub(crate) fn build_lane(
    shape: mpp_model::MeshShape,
    me: usize,
    j: usize,
    k: usize,
    holds: &dyn Fn(usize) -> bool,
) -> Vec<KportLane> {
    let (rows, cols) = (shape.rows, shape.cols);
    if k == 1 || rows < 2 || cols < 2 {
        let order = lane_order(shape, j);
        let has = order.iter().map(|&r| holds(r)).collect();
        return vec![KportLane { order, has }];
    }
    let rows_first = j.is_multiple_of(2);
    let shift = j / 2;
    let rotate = |v: Vec<usize>, by: usize| -> Vec<usize> {
        let n = v.len();
        (0..n).map(|i| v[(i + by) % n]).collect()
    };
    let (my_row, my_col) = shape.coords(me);
    let row_order = rotate((0..cols).map(|c| shape.rank(my_row, c)).collect(), shift);
    let col_order = rotate((0..rows).map(|r| shape.rank(r, my_col)).collect(), shift);
    // Lines of the first dimension that hold anything — the phase-2
    // has-flags (a line spreads internally in phase 1, so after it every
    // member of a holding line holds).
    let mut line_hit = vec![false; if rows_first { rows } else { cols }];
    for r in (0..shape.p()).filter(|&r| holds(r)) {
        let (row, col) = shape.coords(r);
        line_hit[if rows_first { row } else { col }] = true;
    }
    let (first, second) = if rows_first {
        (row_order, col_order)
    } else {
        (col_order, row_order)
    };
    let has1 = first.iter().map(|&r| holds(r)).collect();
    let has2 = second
        .iter()
        .map(|&r| {
            let (row, col) = shape.coords(r);
            line_hit[if rows_first { row } else { col }]
        })
        .collect();
    vec![
        KportLane {
            order: first,
            has: has1,
        },
        KportLane {
            order: second,
            has: has2,
        },
    ]
}

/// Run `lanes.len()` segmented `Br_Lin` merge patterns concurrently,
/// one message set per lane. All lanes advance level-locked over a
/// *global* level index (a lane's segments run back to back); within a
/// level a rank collects every lane's sends into a *single*
/// [`Communicator::send_batch`] (one α_send for up to k transmits,
/// fanned across the injection-port slots in declared order), then
/// drains the level's receives lane by lane. One `next_iteration` per
/// level, like `br_lin_over`.
pub(crate) async fn kport_merge(
    comm: &mut dyn Communicator,
    lanes: &[Vec<KportLane>],
    sets: &mut [MessageSet],
    tag_base: Tag,
) {
    debug_assert_eq!(lanes.len(), sets.len());
    debug_assert!(lanes.len() <= MAX_LANES, "lane tags would collide");
    struct Seg<'a> {
        seg: &'a KportLane,
        sched: std::sync::Arc<crate::pattern::BrLinSchedule>,
        my_pos: usize,
        start_level: usize,
    }
    let me = comm.rank();
    let mut segs: Vec<Vec<Seg>> = Vec::with_capacity(lanes.len());
    let mut levels = 0;
    for lane in lanes {
        let mut start = 0;
        let mut v = Vec::with_capacity(lane.len());
        for seg in lane {
            let my_pos = seg
                .order
                .iter()
                .position(|&r| r == me)
                .unwrap_or_else(|| panic!("rank {me} not in kport lane order"));
            let sched = crate::pattern::br_lin_schedule_shared(&seg.has);
            let start_level = start;
            start += sched.levels();
            v.push(Seg {
                seg,
                sched,
                my_pos,
                start_level,
            });
        }
        levels = levels.max(start);
        segs.push(v);
    }
    fn at_level<'s, 'a>(lane: &'s [Seg<'a>], level: usize) -> Option<&'s Seg<'a>> {
        lane.iter()
            .find(|s| level >= s.start_level && level < s.start_level + s.sched.levels())
    }
    for level in 0..levels {
        // Simultaneous semantics per lane: sends ship the pre-level
        // snapshot (a rope — header copy only).
        let mut batch: Vec<(usize, Tag, Payload)> = Vec::new();
        for (j, lane) in segs.iter().enumerate() {
            let Some(s) = at_level(lane, level) else {
                continue;
            };
            let ops = &s.sched.ops[level - s.start_level][s.my_pos];
            if ops.iter().any(|op| op.send) {
                let snapshot = sets[j].to_payload();
                let tag = tag_base + (level * LANE_STRIDE + j) as Tag;
                for op in ops.iter().filter(|op| op.send) {
                    batch.push((s.seg.order[op.peer], tag, snapshot.clone()));
                }
            }
        }
        if !batch.is_empty() {
            comm.send_batch(batch);
        }
        for (j, lane) in segs.iter().enumerate() {
            let Some(s) = at_level(lane, level) else {
                continue;
            };
            let tag = tag_base + (level * LANE_STRIDE + j) as Tag;
            let ops = &s.sched.ops[level - s.start_level][s.my_pos];
            for op in ops.iter().filter(|op| op.recv) {
                let msg = comm.recv(Some(s.seg.order[op.peer]), Some(tag)).await;
                comm.charge_memcpy(msg.data.len());
                let other =
                    MessageSet::from_payload(&msg.data).expect("malformed message set on the wire");
                sets[j].merge(other);
            }
        }
        comm.next_iteration();
    }
}

/// `KPort_Lin`: k source-striped `Br_Lin` lanes over link-disjoint mesh
/// traversals, one batched transmit per rank per level.
#[derive(Debug, Clone, Copy, Default)]
pub struct KPortLin;

impl StpAlgorithm for KPortLin {
    fn name(&self) -> &'static str {
        "KPort_Lin"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let p = ctx.shape.p();
            let me = comm.rank();
            let k = lane_count(comm.ports(), p);
            // Lane of a source = its index in the sorted source list,
            // mod k; lane j's merge segments come from [`build_lane`] so
            // concurrent lanes drive complementary link classes.
            let lane_of = |r: usize| ctx.sources.binary_search(&r).ok().map(|i| i % k);
            let lanes: Vec<Vec<KportLane>> = (0..k)
                .map(|j| build_lane(ctx.shape, me, j, k, &|r| lane_of(r) == Some(j)))
                .collect();
            let mut sets: Vec<MessageSet> = (0..k)
                .map(|j| match ctx.payload {
                    Some(pl) if lane_of(me) == Some(j) => MessageSet::single(me, pl),
                    _ => MessageSet::new(),
                })
                .collect();
            kport_merge(comm, &lanes, &mut sets, tags::KPORT).await;
            let mut result = MessageSet::new();
            for s in sets {
                result.merge(s);
            }
            result
        })
    }

    fn ideal_sources(&self, shape: mpp_model::MeshShape, s: usize) -> Option<Vec<usize>> {
        // Lane 0 is a plain Br_Lin; the left diagonal stays a good
        // anchor for all rotations of it.
        Some(crate::ideal::ideal_left_diagonal(shape, s))
    }
}

/// `KPort_Scatter`: gather at the first source, stripe the gathered
/// bundle into k parts, batch-scatter them to k leaders in one α_send,
/// then broadcast each part down its own lane.
#[derive(Debug, Clone, Copy, Default)]
pub struct KPortScatter;

impl StpAlgorithm for KPortScatter {
    fn name(&self) -> &'static str {
        "KPort_Scatter"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let p = ctx.shape.p();
            let me = comm.rank();
            let s = ctx.s();
            let k = lane_count(comm.ports(), p);
            let root = ctx.sources[0];
            // Lane j holds the sources with index ≡ j (mod k); it is
            // inert when no source maps to it.
            let active = |j: usize| j < s;
            let leader = |j: usize| (root + j * p / k) % p;

            // Phase 1: direct gather at the root.
            let mut full = match ctx.payload {
                Some(pl) => MessageSet::single(me, pl),
                None => MessageSet::new(),
            };
            if me == root {
                for &src in ctx.sources.iter().filter(|&&r| r != root) {
                    let msg = comm.recv(Some(src), Some(tags::KPORT_SCATTER)).await;
                    comm.charge_memcpy(msg.data.len());
                    let other = MessageSet::from_payload(&msg.data)
                        .expect("malformed message set on the wire");
                    full.merge(other);
                }
            } else if ctx.payload.is_some() {
                comm.send_payload(root, tags::KPORT_SCATTER, full.to_payload());
            }
            comm.next_iteration();

            // Phase 2: the root stripes the bundle into k parts and
            // ships the non-local ones to their lane leaders in a
            // single batch — one α_send, k injection slots.
            let mut sets: Vec<MessageSet> = (0..k).map(|_| MessageSet::new()).collect();
            if me == root {
                let mut batch: Vec<(usize, Tag, Payload)> = Vec::new();
                for (j, set) in sets.iter_mut().enumerate() {
                    if !active(j) {
                        continue;
                    }
                    let mut part = MessageSet::new();
                    for (i, &src) in ctx.sources.iter().enumerate() {
                        if i % k == j {
                            let data = full.get(src).expect("gathered set is complete");
                            part.insert_payload(src, data.clone());
                        }
                    }
                    if leader(j) != root {
                        batch.push((leader(j), tags::KPORT_SCATTER + 1, part.to_payload()));
                    }
                    // The root co-holds every lane, halving lane depth.
                    *set = part;
                }
                if !batch.is_empty() {
                    comm.send_batch(batch);
                }
            } else {
                for (j, set) in sets.iter_mut().enumerate() {
                    if active(j) && leader(j) == me {
                        let msg = comm.recv(Some(root), Some(tags::KPORT_SCATTER + 1)).await;
                        comm.charge_memcpy(msg.data.len());
                        *set = MessageSet::from_payload(&msg.data)
                            .expect("malformed message set on the wire");
                    }
                }
            }
            comm.next_iteration();

            // Phase 3: k-lane broadcast merge; lane j starts at its
            // leader (and the root, which co-holds part j).
            let lanes: Vec<Vec<KportLane>> = (0..k)
                .map(|j| {
                    build_lane(ctx.shape, me, j, k, &|r| {
                        active(j) && (r == leader(j) || r == root)
                    })
                })
                .collect();
            kport_merge(
                comm,
                &lanes,
                &mut sets,
                tags::KPORT_SCATTER + LANE_STRIDE as Tag,
            )
            .await;
            let mut result = MessageSet::new();
            for set in sets {
                result.merge(set);
            }
            result
        })
    }
}

/// `KPort_Alltoall`: every source streams its message directly to all
/// other ranks, k destinations per batched transmit (rotated so
/// concurrent sources target disjoint ranks first).
#[derive(Debug, Clone, Copy, Default)]
pub struct KPortAlltoall;

impl StpAlgorithm for KPortAlltoall {
    fn name(&self) -> &'static str {
        "KPort_Alltoall"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let p = ctx.shape.p();
            let me = comm.rank();
            let k = lane_count(comm.ports(), p);
            let mut set = match ctx.payload {
                Some(pl) => MessageSet::single(me, pl),
                None => MessageSet::new(),
            };
            if ctx.payload.is_some() {
                let snapshot = set.to_payload();
                let dsts: Vec<usize> = (1..p).map(|d| (me + d) % p).collect();
                for chunk in dsts.chunks(k) {
                    let batch: Vec<(usize, Tag, Payload)> = chunk
                        .iter()
                        .map(|&dst| (dst, tags::KPORT_A2A, snapshot.clone()))
                        .collect();
                    comm.send_batch(batch);
                }
            }
            comm.next_iteration();
            for &src in ctx.sources.iter().filter(|&&r| r != me) {
                let msg = comm.recv(Some(src), Some(tags::KPORT_A2A)).await;
                comm.charge_memcpy(msg.data.len());
                let other =
                    MessageSet::from_payload(&msg.data).expect("malformed message set on the wire");
                set.merge(other);
            }
            comm.next_iteration();
            set
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::MeshShape;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, len: usize, alg: &dyn StpAlgorithm) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(
                    set.get(s).unwrap(),
                    payload_for(s, len),
                    "rank {rank} src {s}"
                );
            }
        }
    }

    // The threads backend reports 1 port, so these exercise the k = 1
    // degenerate path (and odd meshes / source counts); multi-port
    // behaviour is covered by the simulator-backed tests in
    // `tests/exec_equivalence.rs` and the analyzer conformance suite.

    #[test]
    fn kport_lin_delivers() {
        check(MeshShape::new(4, 4), vec![0, 3, 7, 12, 15], 32, &KPortLin);
        check(MeshShape::new(3, 5), vec![2, 7, 14], 16, &KPortLin);
        check(MeshShape::new(2, 2), vec![1], 8, &KPortLin);
    }

    #[test]
    fn kport_scatter_delivers() {
        check(
            MeshShape::new(4, 4),
            vec![0, 3, 7, 12, 15],
            32,
            &KPortScatter,
        );
        check(MeshShape::new(3, 5), vec![2, 7, 14], 16, &KPortScatter);
        check(MeshShape::new(2, 2), vec![3], 8, &KPortScatter);
    }

    #[test]
    fn kport_alltoall_delivers() {
        check(
            MeshShape::new(4, 4),
            vec![0, 3, 7, 12, 15],
            32,
            &KPortAlltoall,
        );
        check(MeshShape::new(3, 5), vec![2, 7, 14], 16, &KPortAlltoall);
        check(MeshShape::new(1, 7), (0..7).collect(), 8, &KPortAlltoall);
    }

    #[test]
    fn zero_length_payloads() {
        check(MeshShape::new(2, 4), vec![1, 6], 0, &KPortLin);
        check(MeshShape::new(2, 4), vec![1, 6], 0, &KPortScatter);
        check(MeshShape::new(2, 4), vec![1, 6], 0, &KPortAlltoall);
    }

    #[test]
    fn lane_count_clamps() {
        assert_eq!(lane_count(1, 16), 1);
        assert_eq!(lane_count(5, 16), 5);
        assert_eq!(lane_count(64, 16), 16);
        assert_eq!(lane_count(5, 3), 3);
        assert_eq!(lane_count(6, 100), 6);
    }
}

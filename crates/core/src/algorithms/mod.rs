//! The s-to-p broadcasting algorithms.
//!
//! Seven algorithms from the paper, all implementing [`StpAlgorithm`]:
//!
//! | paper name        | type                                   | module |
//! |-------------------|----------------------------------------|--------|
//! | `2-Step`          | gather + one-to-all broadcast          | [`two_step`] |
//! | `PersAlltoAll`    | personalized all-to-all exchange       | [`pers_alltoall`] |
//! | `Br_Lin`          | recursive pairing on a linear order    | [`br_lin`] |
//! | `Br_xy_source`    | dimension order by source counts       | [`br_xy`] |
//! | `Br_xy_dim`       | dimension order by mesh shape          | [`br_xy`] |
//! | `Repos_*`         | reposition to an ideal distribution    | [`repos`] |
//! | `Part_*`          | reposition + machine partitioning      | [`part`] |
//! | `KPort_*`         | k-ported batched lanes (extension)     | [`kport`] |
//!
//! `MPI_AllGather` and `MPI_Alltoall` in the paper's T3D plots are the
//! MPI builds of `2-Step` and `PersAlltoAll` respectively (paper §5.3);
//! in this reproduction that is expressed by running the same algorithm
//! under [`LibraryKind::Mpi`](mpp_model::LibraryKind).

pub mod adaptive;
pub mod br_dims;
pub mod br_lin;
pub mod br_xy;
pub mod dissem;
pub mod kport;
pub mod naive;
pub mod part;
pub mod pers_alltoall;
pub mod repos;
pub mod two_step;

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator, Tag};

use crate::msgset::MessageSet;

pub use adaptive::ReposAdaptive;
pub use br_dims::{BrDims, GridShape};
pub use br_lin::BrLin;
pub use br_xy::{BrXyDim, BrXySource, DimOrder};
pub use dissem::DissemAllGather;
pub use kport::{KPortAlltoall, KPortLin, KPortScatter};
pub use naive::NaiveIndependent;
pub use part::{Part, PartRecursive};
pub use pers_alltoall::PersAlltoAll;
pub use repos::Repos;
pub use two_step::TwoStep;

/// Everything one rank needs to know before an s-to-p broadcast starts.
///
/// Matching the paper's model: "every processor knows the position of the
/// source processors and the size of the messages when s-to-p
/// broadcasting starts".
pub struct StpCtx<'a> {
    /// The logical mesh.
    pub shape: MeshShape,
    /// Sorted source ranks (`s = sources.len()`).
    pub sources: &'a [usize],
    /// This rank's message — `Some` iff this rank is a source.
    pub payload: Option<&'a [u8]>,
}

impl StpCtx<'_> {
    /// Number of sources.
    pub fn s(&self) -> usize {
        self.sources.len()
    }

    /// Whether `rank` is a source.
    pub fn is_source(&self, rank: usize) -> bool {
        self.sources.binary_search(&rank).is_ok()
    }

    /// Sanity-check the context for the calling rank.
    pub fn validate(&self, comm: &dyn Communicator) {
        assert_eq!(
            self.shape.p(),
            comm.size(),
            "shape does not match communicator"
        );
        assert!(
            !self.sources.is_empty(),
            "s-to-p broadcasting needs at least one source"
        );
        assert!(
            self.sources.windows(2).all(|w| w[0] < w[1]),
            "sources must be sorted+unique"
        );
        assert!(
            *self.sources.last().unwrap() < comm.size(),
            "source out of range"
        );
        assert_eq!(
            self.is_source(comm.rank()),
            self.payload.is_some(),
            "rank {}: payload presence must match source membership",
            comm.rank()
        );
    }
}

/// An s-to-p broadcasting algorithm.
///
/// `run` is executed by *every* rank; on completion each rank holds the
/// complete [`MessageSet`] of all `s` source messages.
pub trait StpAlgorithm: Sync {
    /// Name as used in the paper ("Br_Lin", "2-Step", …).
    fn name(&self) -> &'static str;

    /// Execute the broadcast from this rank's perspective.
    ///
    /// Returns a boxed future so the trait stays object-safe: rank
    /// programs are resumable state machines on the simulator's
    /// cooperative executor, and suspend at every `recv`/`barrier`.
    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet>;

    /// An ideal source distribution of `s` sources for this algorithm on
    /// `shape`, as sorted row-major positions — the target the
    /// repositioning algorithms permute towards. `None` for algorithms
    /// whose performance does not depend on source positions enough for
    /// repositioning to be defined (2-Step, PersAlltoAll).
    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        let _ = (shape, s);
        None
    }
}

/// Tag bases: each phase owns a disjoint tag range so that concurrent
/// sub-broadcasts (rows, groups) can never cross-match. Levels are added
/// to the base.
pub(crate) mod tags {
    use mpp_runtime::Tag;
    /// `Br_Lin` iterations (also used inside rows/columns/groups).
    pub const BR_LIN: Tag = 1_000;
    /// Second dimension of the `Br_xy_*` algorithms.
    pub const BR_XY_PHASE2: Tag = 2_000;
    /// 2-Step gather.
    pub const GATHER: Tag = 3_000;
    /// 2-Step broadcast.
    pub const BCAST: Tag = 3_100;
    /// Personalized all-to-all.
    pub const PERS: Tag = 3_200;
    /// Repositioning permutation.
    pub const REPOS: Tag = 3_300;
    /// Partitioning permutation.
    pub const PART_REPOS: Tag = 3_400;
    /// Partitioning final inter-group exchange.
    pub const PART_EXCHANGE: Tag = 3_500;
    /// `KPort_Lin` lanes (`base + level·16 + lane`).
    pub const KPORT: Tag = 3_600;
    /// `KPort_Scatter` gather (+1 scatter, +16… lane blocks).
    pub const KPORT_SCATTER: Tag = 4_000;
    /// `KPort_Alltoall` direct exchange.
    pub const KPORT_A2A: Tag = 4_400;
}

/// Run the `Br_Lin` merge pattern over an ordered list of ranks.
///
/// `order[i]` is the rank at linear position `i`; `has[i]` says whether
/// that position initially holds messages. The caller's current set is
/// merged in place. Ranks not present in `order` must not call this.
///
/// One `next_iteration` is recorded per level so the Figure-2 metrics
/// can be derived.
pub(crate) async fn br_lin_over(
    comm: &mut dyn Communicator,
    order: &[usize],
    has: &[bool],
    set: &mut MessageSet,
    tag_base: Tag,
) {
    debug_assert_eq!(order.len(), has.len());
    let me = comm.rank();
    let my_pos = order
        .iter()
        .position(|&r| r == me)
        .unwrap_or_else(|| panic!("rank {me} not in br_lin order"));
    debug_assert_eq!(
        has[my_pos],
        !set.is_empty(),
        "has flag disagrees with holdings"
    );

    let schedule = crate::pattern::br_lin_schedule_shared(has);
    for (level, level_ops) in schedule.ops.iter().enumerate() {
        let my_ops = &level_ops[my_pos];
        let tag = tag_base + level as Tag;
        // Simultaneous semantics: all sends ship the pre-level snapshot.
        // The snapshot is a rope (header copy only); every peer shares it.
        if my_ops.iter().any(|op| op.send) {
            let snapshot = set.to_payload();
            for op in my_ops.iter().filter(|op| op.send) {
                comm.send_payload(order[op.peer], tag, snapshot.clone());
            }
        }
        for op in my_ops.iter().filter(|op| op.recv) {
            let msg = comm.recv(Some(order[op.peer]), Some(tag)).await;
            // Combining cost in *virtual* time: the model still charges
            // for copying the received bytes into the merged buffer, even
            // though the host-side merge only moves rope pointers.
            comm.charge_memcpy(msg.data.len());
            let other =
                MessageSet::from_payload(&msg.data).expect("malformed message set on the wire");
            set.merge(other);
        }
        comm.next_iteration();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    #[test]
    fn br_lin_over_spreads_to_all() {
        for p in [4usize, 7, 10] {
            let sources = vec![1usize, p - 1];
            let out = run_threads(p, async |comm| {
                let order: Vec<usize> = (0..comm.size()).collect();
                let has: Vec<bool> = order.iter().map(|r| sources.contains(r)).collect();
                let mut set = if sources.contains(&comm.rank()) {
                    MessageSet::single(comm.rank(), &[comm.rank() as u8; 32])
                } else {
                    MessageSet::new()
                };
                br_lin_over(comm, &order, &has, &mut set, tags::BR_LIN).await;
                set
            });
            for set in out.results {
                let srcs: Vec<usize> = set.sources().collect();
                assert_eq!(srcs, sources, "p={p}");
            }
        }
    }

    #[test]
    fn ctx_validation_catches_mismatch() {
        let out = run_threads(2, async |comm| {
            let ctx = StpCtx {
                shape: MeshShape::new(1, 2),
                sources: &[0],
                payload: (comm.rank() == 0).then_some(&[1u8; 4][..]),
            };
            ctx.validate(comm);
            true
        });
        assert!(out.results.iter().all(|&b| b));
    }
}

//! The baseline the paper rejects (§2): every source initiates its own
//! independent one-to-all broadcast "without interaction and
//! coordination", never combining messages.
//!
//! "Such a solution seems attractive for dynamic broadcasting situations
//! since it does not require synchronization before the broadcasting.
//! However, having the s broadcasting processes take place without
//! interaction and coordination leads to poor performance due to arising
//! congestion and the large number of messages in the system."
//!
//! Each source's broadcast uses the recursive-halving tree rooted at the
//! source (the tree of `bcast_from_first` over a rotated rank order, so
//! different sources load different links). Every processor therefore
//! forwards up to `⌈log₂ p⌉` messages *per source* and receives exactly
//! one message per source — `O(s·log p)` operations per processor versus
//! `O(log p)` for the merge algorithms. `repro-naive` measures where the
//! coordination-free approach actually loses on each machine.

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator, Payload, Tag};

use crate::algorithms::{StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Tag base; each source's tree gets its own tag range.
const TAG: Tag = 4_000;

/// The uncoordinated independent-broadcasts baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveIndependent;

impl StpAlgorithm for NaiveIndependent {
    fn name(&self) -> &'static str {
        "NaiveIndependent"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let p = comm.size();
            let me = comm.rank();
            let mut set = match ctx.payload {
                Some(pl) => MessageSet::single(me, pl),
                None => MessageSet::new(),
            };

            // For each source, everyone participates in that source's
            // broadcast tree: ranks are rotated so the source sits at
            // position 0. The trees execute without any cross-source
            // coordination — a rank simply walks each tree's segment path,
            // receiving and forwarding.
            //
            // To keep the simulation honest about *lack* of coordination,
            // sends for all trees are issued as soon as the data for that
            // tree is available (recv order across trees is unconstrained at
            // a rank: it processes trees in source order, which matches a
            // single-threaded handler draining its queue).
            for (idx, &src) in ctx.sources.iter().enumerate() {
                let tag = TAG + idx as Tag;
                let my_pos = (me + p - src) % p; // position in the rotated order
                let rank_at = |pos: usize| (pos + src) % p;

                let mut payload: Option<Payload> = if me == src {
                    Some(Payload::from_slice(
                        ctx.payload.expect("source must hold a payload"),
                    ))
                } else {
                    None
                };
                let mut lo = 0usize;
                let mut hi = p;
                while hi - lo > 1 {
                    let mid = lo + (hi - lo).div_ceil(2);
                    if my_pos == lo {
                        // Forward the shared rope — no byte copies per hop.
                        let buf = payload.clone().expect("tree holder must have data");
                        comm.send_payload(rank_at(mid), tag, buf);
                        hi = mid;
                    } else if my_pos == mid {
                        let m = comm.recv(Some(rank_at(lo)), Some(tag)).await;
                        payload = Some(m.data);
                        lo = mid;
                    } else if my_pos < mid {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                set.insert_payload(
                    src,
                    payload.expect("broadcast tree did not reach this rank"),
                );
            }
            comm.next_iteration();
            set
        })
    }

    fn ideal_sources(&self, _shape: MeshShape, _s: usize) -> Option<Vec<usize>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, len: usize) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            NaiveIndependent.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, len));
            }
        }
    }

    #[test]
    fn basic() {
        check(MeshShape::new(4, 4), vec![0, 5, 10], 32);
    }

    #[test]
    fn non_power_of_two() {
        check(MeshShape::new(3, 5), vec![2, 7, 14], 16);
    }

    #[test]
    fn single_source_is_just_a_broadcast() {
        check(MeshShape::new(2, 4), vec![3], 64);
    }

    #[test]
    fn all_sources() {
        check(MeshShape::new(3, 3), (0..9).collect(), 8);
    }

    #[test]
    fn operation_count_scales_with_s() {
        // The defining inefficiency: per-processor operations grow with
        // s (each tree handled separately), unlike the merge algorithms.
        let shape = MeshShape::new(4, 4);
        let ops_for = |s: usize| {
            let sources: Vec<usize> = (0..s).collect();
            let out = run_threads(shape.p(), async |comm| {
                let payload = sources
                    .contains(&comm.rank())
                    .then(|| payload_for(comm.rank(), 16));
                let ctx = StpCtx {
                    shape,
                    sources: &sources,
                    payload: payload.as_deref(),
                };
                let _ = NaiveIndependent.run(comm, &ctx).await;
                comm.stats().total_ops()
            });
            out.results.iter().max().copied().unwrap()
        };
        let few = ops_for(2);
        let many = ops_for(12);
        assert!(many > 4 * few, "ops must scale with s: {few} -> {many}");
    }
}

//! Partitioning algorithms (paper §3): `Part_Lin`, `Part_xy_source`,
//! `Part_xy_dim`.
//!
//! In addition to repositioning the sources, the machine is split into
//! two groups `G₁`, `G₂` with `p₁/p₂ ≈ s₁/s₂`; the base algorithm runs
//! *independently and simultaneously* inside each group on an ideal
//! distribution, and a final pairwise permutation between the groups
//! exchanges the two partial results. The paper finds that on the
//! Paragon "the partitioning approach hardly ever gives a better
//! performance than repositioning alone" because the final exchange of
//! large messages dominates — a result our benches reproduce.

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::br_xy::{run_xy_on_plan, shape_dim_order, source_dim_order, XyPlan};
use crate::algorithms::{
    br_lin_over, tags, BrLin, BrXyDim, BrXySource, Repos, StpAlgorithm, StpCtx,
};
use crate::msgset::MessageSet;

/// A base algorithm that can run inside a machine partition
/// (a [`XyPlan`] describing a sub-mesh).
pub trait PlanRunnable: StpAlgorithm + Copy {
    /// Run the algorithm within the plan. `sources_pos` are the sorted
    /// row-major *plan positions* that initially hold messages; `set` is
    /// this rank's holdings and must agree with membership. Only ranks in
    /// the plan call this. Boxed future for object-safety symmetry with
    /// [`StpAlgorithm::run`].
    fn run_on_plan<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        plan: &'a XyPlan,
        sources_pos: &'a [usize],
        set: &'a mut MessageSet,
    ) -> CommFuture<'a, ()>;
}

impl PlanRunnable for BrLin {
    fn run_on_plan<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        plan: &'a XyPlan,
        sources_pos: &'a [usize],
        set: &'a mut MessageSet,
    ) -> CommFuture<'a, ()> {
        Box::pin(async move {
            let snake = plan.shape.snake_order();
            let order: Vec<usize> = snake.iter().map(|&i| plan.ranks[i]).collect();
            let has: Vec<bool> = snake
                .iter()
                .map(|i| sources_pos.binary_search(i).is_ok())
                .collect();
            br_lin_over(comm, &order, &has, set, tags::BR_LIN).await;
        })
    }
}

impl PlanRunnable for BrXySource {
    fn run_on_plan<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        plan: &'a XyPlan,
        sources_pos: &'a [usize],
        set: &'a mut MessageSet,
    ) -> CommFuture<'a, ()> {
        Box::pin(async move {
            let order = source_dim_order(plan.shape, sources_pos);
            run_xy_on_plan(
                comm,
                plan,
                sources_pos,
                order,
                set,
                tags::BR_LIN,
                tags::BR_XY_PHASE2,
            )
            .await;
        })
    }
}

impl PlanRunnable for BrXyDim {
    fn run_on_plan<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        plan: &'a XyPlan,
        sources_pos: &'a [usize],
        set: &'a mut MessageSet,
    ) -> CommFuture<'a, ()> {
        Box::pin(async move {
            let order = shape_dim_order(plan.shape);
            run_xy_on_plan(
                comm,
                plan,
                sources_pos,
                order,
                set,
                tags::BR_LIN,
                tags::BR_XY_PHASE2,
            )
            .await;
        })
    }
}

/// How the machine is split in two.
#[derive(Debug, Clone)]
pub struct Partition {
    /// First group as a sub-mesh plan.
    pub g1: XyPlan,
    /// Second group; same size as `g1`.
    pub g2: XyPlan,
}

/// Split a mesh into two equal halves: by rows when `r` is even,
/// otherwise by columns when `c` is even. Returns `None` when `p` is odd
/// (no equal split exists).
pub fn split_mesh(shape: MeshShape) -> Option<Partition> {
    let (r, c) = (shape.rows, shape.cols);
    if r % 2 == 0 {
        let half = MeshShape::new(r / 2, c);
        let g1 = XyPlan {
            shape: half,
            ranks: (0..r / 2)
                .flat_map(|row| (0..c).map(move |col| row * c + col))
                .collect(),
        };
        let g2 = XyPlan {
            shape: half,
            ranks: (r / 2..r)
                .flat_map(|row| (0..c).map(move |col| row * c + col))
                .collect(),
        };
        Some(Partition { g1, g2 })
    } else if c % 2 == 0 {
        let half = MeshShape::new(r, c / 2);
        let g1 = XyPlan {
            shape: half,
            ranks: (0..r)
                .flat_map(|row| (0..c / 2).map(move |col| row * c + col))
                .collect(),
        };
        let g2 = XyPlan {
            shape: half,
            ranks: (0..r)
                .flat_map(|row| (c / 2..c).map(move |col| row * c + col))
                .collect(),
        };
        Some(Partition { g1, g2 })
    } else {
        None
    }
}

/// `Part_<base>`: repositioning + machine partitioning.
#[derive(Debug, Clone, Copy)]
pub struct Part<A> {
    base: A,
    name: &'static str,
}

impl<A: PlanRunnable> Part<A> {
    /// Wrap a base algorithm. `name` follows the paper ("Part_Lin", …).
    pub fn new(base: A, name: &'static str) -> Self {
        Part { base, name }
    }
}

impl<A: PlanRunnable> StpAlgorithm for Part<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let Some(partition) = split_mesh(ctx.shape) else {
                // Odd machine: no equal split — fall back to repositioning
                // alone, which partitions degenerate to anyway.
                return Repos::new(self.base, self.name).run(comm, ctx).await;
            };
            let me = comm.rank();
            let s = ctx.s();
            let p = ctx.shape.p();
            let p1 = partition.g1.shape.p();

            // Proportional source split: p1/p2 = 1, so s1 = ⌈s/2⌉.
            let s1 = (s * p1 + p / 2) / p;
            let s2 = s - s1;

            // Ideal targets inside each group (plan positions → global ranks).
            let t1_pos = if s1 > 0 {
                self.base
                    .ideal_sources(partition.g1.shape, s1)
                    .expect("base must define an ideal")
            } else {
                Vec::new()
            };
            let t2_pos = if s2 > 0 {
                self.base
                    .ideal_sources(partition.g2.shape, s2)
                    .expect("base must define an ideal")
            } else {
                Vec::new()
            };
            let mut t1_global: Vec<usize> = t1_pos.iter().map(|&i| partition.g1.ranks[i]).collect();
            let mut t2_global: Vec<usize> = t2_pos.iter().map(|&i| partition.g2.ranks[i]).collect();
            t1_global.sort_unstable();
            t2_global.sort_unstable();

            // The permutation: sources (ascending) fill G1's targets then
            // G2's. origin_of[k] = original source whose message lands on
            // targets_all[k].
            let targets_all: Vec<usize> =
                t1_global.iter().chain(t2_global.iter()).copied().collect();

            // Phase 0: partial permutation.
            if let Some(payload) = ctx.payload {
                let i = ctx.sources.binary_search(&me).unwrap();
                let to = targets_all[i];
                if to != me {
                    comm.send(to, tags::PART_REPOS, payload);
                }
            }
            let mut new_payload: Option<Vec<u8>> = None;
            if let Some(k) = targets_all.iter().position(|&t| t == me) {
                let from = ctx.sources[k];
                if from == me {
                    new_payload = ctx.payload.map(<[u8]>::to_vec);
                } else {
                    new_payload = Some(
                        comm.recv(Some(from), Some(tags::PART_REPOS))
                            .await
                            .data
                            .to_vec(),
                    );
                }
            }
            comm.next_iteration();

            // Phase 1: base algorithm inside my group, simultaneously with
            // the other group.
            let (my_plan, my_targets_global, partner) = {
                if let Some(pos) = partition.g1.pos_of(me) {
                    (&partition.g1, &t1_global, partition.g2.ranks[pos])
                } else {
                    let pos = partition.g2.pos_of(me).expect("rank in neither group");
                    (&partition.g2, &t2_global, partition.g1.ranks[pos])
                }
            };
            let mut sources_pos: Vec<usize> = my_targets_global
                .iter()
                .map(|&g| my_plan.pos_of(g).expect("target outside its group"))
                .collect();
            sources_pos.sort_unstable();

            let mut set = match &new_payload {
                Some(data) => MessageSet::single(me, data),
                None => MessageSet::new(),
            };
            self.base
                .run_on_plan(comm, my_plan, &sources_pos, &mut set)
                .await;
            comm.next_iteration();

            // Phase 2: pairwise exchange between the groups (a permutation).
            comm.send_payload(partner, tags::PART_EXCHANGE, set.to_payload());
            let got = comm.recv(Some(partner), Some(tags::PART_EXCHANGE)).await;
            comm.charge_memcpy(got.data.len());
            let other = MessageSet::from_payload(&got.data).expect("malformed partition exchange");
            set.merge(other);

            // Relabel target-keyed messages back to original sources.
            let mut out = MessageSet::new();
            for (t, data) in set.into_entries() {
                let k = targets_all
                    .iter()
                    .position(|&x| x == t as usize)
                    .expect("unexpected message key after partitioned broadcast");
                out.insert_payload(ctx.sources[k], data);
            }
            out
        })
    }

    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        self.base.ideal_sources(shape, s)
    }
}

/// Split a plan into two equal halves (nested splitting for the
/// recursive partitioner). Child ranks are mapped through the parent.
pub fn split_plan(plan: &XyPlan) -> Option<(XyPlan, XyPlan)> {
    let inner = split_mesh(plan.shape)?;
    let map = |child: &XyPlan| XyPlan {
        shape: child.shape,
        ranks: child.ranks.iter().map(|&pos| plan.ranks[pos]).collect(),
    };
    Some((map(&inner.g1), map(&inner.g2)))
}

/// Extension: recursive partitioning into `2^depth` groups.
///
/// The paper partitions into two groups and finds the final exchange
/// dominates; the natural question is whether *more* partitioning could
/// ever pay (smaller groups broadcast faster, but the merge phase needs
/// `depth` pairwise exchange rounds of growing combined messages).
/// `repro-partitioning` measures the answer: on the Paragon it gets
/// monotonically worse with depth, strengthening the paper's negative
/// result.
#[derive(Debug, Clone, Copy)]
pub struct PartRecursive<A> {
    base: A,
    /// Number of recursive splits (`1` reproduces `Part_*`).
    pub depth: usize,
    name: &'static str,
}

impl<A: PlanRunnable> PartRecursive<A> {
    /// Wrap a base algorithm with `depth` recursive splits.
    pub fn new(base: A, depth: usize, name: &'static str) -> Self {
        assert!(depth >= 1);
        PartRecursive { base, depth, name }
    }
}

impl<A: PlanRunnable> StpAlgorithm for PartRecursive<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let me = comm.rank();
            let s = ctx.s();

            // Build the leaf groups by splitting as far as possible (up to
            // `depth`); all leaves end congruent because splits are always
            // exact halves.
            let mut groups = vec![XyPlan::identity(ctx.shape)];
            let mut achieved = 0usize;
            for _ in 0..self.depth {
                let mut next = Vec::with_capacity(groups.len() * 2);
                let mut ok = true;
                for g in &groups {
                    match split_plan(g) {
                        Some((a, b)) => {
                            next.push(a);
                            next.push(b);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    break;
                }
                groups = next;
                achieved += 1;
            }
            if achieved == 0 {
                return Repos::new(self.base, self.name).run(comm, ctx).await;
            }
            let n_groups = groups.len();

            // Proportional source allocation across groups, then ideal
            // targets inside each.
            let mut targets_all: Vec<usize> = Vec::with_capacity(s);
            let mut group_targets: Vec<Vec<usize>> = Vec::with_capacity(n_groups);
            for (g, group) in groups.iter().enumerate() {
                let lo = s * g / n_groups;
                let hi = s * (g + 1) / n_groups;
                let s_g = hi - lo;
                let mut tg: Vec<usize> = if s_g > 0 {
                    self.base
                        .ideal_sources(group.shape, s_g)
                        .expect("base must define an ideal")
                        .into_iter()
                        .map(|pos| group.ranks[pos])
                        .collect()
                } else {
                    Vec::new()
                };
                tg.sort_unstable();
                targets_all.extend(tg.iter().copied());
                group_targets.push(tg);
            }

            // Phase 0: the repositioning permutation (sorted sources fill the
            // groups in order).
            if let Some(payload) = ctx.payload {
                let i = ctx.sources.binary_search(&me).unwrap();
                let to = targets_all[i];
                if to != me {
                    comm.send(to, tags::PART_REPOS, payload);
                }
            }
            let mut new_payload: Option<Vec<u8>> = None;
            if let Some(k) = targets_all.iter().position(|&t| t == me) {
                let from = ctx.sources[k];
                if from == me {
                    new_payload = ctx.payload.map(<[u8]>::to_vec);
                } else {
                    new_payload = Some(
                        comm.recv(Some(from), Some(tags::PART_REPOS))
                            .await
                            .data
                            .to_vec(),
                    );
                }
            }
            comm.next_iteration();

            // Phase 1: base algorithm inside my leaf group.
            let my_group = groups
                .iter()
                .position(|g| g.pos_of(me).is_some())
                .expect("rank must belong to a leaf group");
            let my_pos = groups[my_group].pos_of(me).unwrap();
            let mut sources_pos: Vec<usize> = group_targets[my_group]
                .iter()
                .map(|&t| groups[my_group].pos_of(t).unwrap())
                .collect();
            sources_pos.sort_unstable();
            let mut set = match &new_payload {
                Some(data) => MessageSet::single(me, data),
                None => MessageSet::new(),
            };
            self.base
                .run_on_plan(comm, &groups[my_group], &sources_pos, &mut set)
                .await;
            comm.next_iteration();

            // Phase 2: `achieved` merge rounds — at round j my group
            // exchanges member-wise with its sibling block `my_group ^ 2^j`.
            for j in 0..achieved {
                let partner_group = my_group ^ (1usize << j);
                let partner = groups[partner_group].ranks[my_pos];
                let tag = tags::PART_EXCHANGE + j as u32;
                comm.send_payload(partner, tag, set.to_payload());
                let got = comm.recv(Some(partner), Some(tag)).await;
                comm.charge_memcpy(got.data.len());
                let other = MessageSet::from_payload(&got.data).expect("malformed merge exchange");
                set.merge(other);
                comm.next_iteration();
            }

            // Relabel back to original source ids.
            let mut out = MessageSet::new();
            for (t, data) in set.into_entries() {
                let k = targets_all
                    .iter()
                    .position(|&x| x == t as usize)
                    .expect("unexpected key after recursive partitioning");
                out.insert_payload(ctx.sources[k], data);
            }
            out
        })
    }

    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        self.base.ideal_sources(shape, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    use crate::distribution::SourceDist;
    use crate::msgset::payload_for;

    fn check<A: PlanRunnable>(alg: Part<A>, shape: MeshShape, sources: Vec<usize>, len: usize) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(
                    set.get(s).unwrap(),
                    payload_for(s, len),
                    "rank {rank} src {s}"
                );
            }
        }
    }

    #[test]
    fn split_prefers_rows() {
        let p = split_mesh(MeshShape::new(4, 5)).unwrap();
        assert_eq!(p.g1.shape, MeshShape::new(2, 5));
        assert_eq!(p.g1.ranks, (0..10).collect::<Vec<_>>());
        assert_eq!(p.g2.ranks, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn split_falls_back_to_columns() {
        let p = split_mesh(MeshShape::new(5, 4)).unwrap();
        assert_eq!(p.g1.shape, MeshShape::new(5, 2));
        assert!(p.g1.ranks.contains(&0) && p.g1.ranks.contains(&17));
        assert!(p.g2.ranks.contains(&2) && p.g2.ranks.contains(&19));
    }

    #[test]
    fn split_odd_machine_none() {
        assert!(split_mesh(MeshShape::new(3, 5)).is_none());
    }

    #[test]
    fn part_lin_square_block() {
        let shape = MeshShape::new(4, 4);
        let sources = SourceDist::SquareBlock.place(shape, 6);
        check(Part::new(BrLin::new(), "Part_Lin"), shape, sources, 16);
    }

    #[test]
    fn part_xy_source_cross() {
        let shape = MeshShape::new(6, 6);
        let sources = SourceDist::Cross.place(shape, 12);
        check(Part::new(BrXySource, "Part_xy_source"), shape, sources, 8);
    }

    #[test]
    fn part_xy_dim_equal() {
        let shape = MeshShape::new(4, 6);
        let sources = SourceDist::Equal.place(shape, 7);
        check(Part::new(BrXyDim, "Part_xy_dim"), shape, sources, 8);
    }

    #[test]
    fn part_single_source() {
        // s=1: one group gets the only source, the other relies entirely
        // on the final exchange.
        let shape = MeshShape::new(4, 4);
        check(Part::new(BrLin::new(), "Part_Lin"), shape, vec![9], 32);
    }

    #[test]
    fn part_odd_machine_falls_back() {
        let shape = MeshShape::new(3, 3);
        let sources = vec![0usize, 4, 8];
        check(Part::new(BrXySource, "Part_xy_source"), shape, sources, 8);
    }

    #[test]
    fn part_all_sources() {
        let shape = MeshShape::new(4, 4);
        check(
            Part::new(BrLin::new(), "Part_Lin"),
            shape,
            (0..16).collect(),
            4,
        );
    }

    fn check_recursive<A: PlanRunnable>(
        alg: PartRecursive<A>,
        shape: MeshShape,
        sources: Vec<usize>,
        len: usize,
    ) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(
                    set.get(s).unwrap(),
                    payload_for(s, len),
                    "rank {rank} src {s}"
                );
            }
        }
    }

    #[test]
    fn split_plan_nests() {
        let root = XyPlan::identity(MeshShape::new(4, 4));
        let (a, b) = split_plan(&root).unwrap();
        assert_eq!(a.shape, MeshShape::new(2, 4));
        let (aa, ab) = split_plan(&a).unwrap();
        assert_eq!(aa.shape, MeshShape::new(1, 4));
        assert_eq!(aa.ranks, vec![0, 1, 2, 3]);
        assert_eq!(ab.ranks, vec![4, 5, 6, 7]);
        let _ = b;
    }

    #[test]
    fn recursive_depth_one_matches_part_semantics() {
        let shape = MeshShape::new(4, 4);
        let sources = SourceDist::Cross.place(shape, 6);
        check_recursive(
            PartRecursive::new(BrLin::new(), 1, "PartRec_1"),
            shape,
            sources,
            16,
        );
    }

    #[test]
    fn recursive_depth_two_and_three() {
        let shape = MeshShape::new(4, 8);
        let sources = SourceDist::Equal.place(shape, 10);
        check_recursive(
            PartRecursive::new(BrXySource, 2, "PartRec_2"),
            shape,
            sources.clone(),
            8,
        );
        check_recursive(
            PartRecursive::new(BrLin::new(), 3, "PartRec_3"),
            shape,
            sources,
            8,
        );
    }

    #[test]
    fn recursive_depth_exceeding_splits_clamps() {
        // 2x2 machine: only 2 splits possible; depth 5 must still work.
        let shape = MeshShape::new(2, 2);
        check_recursive(
            PartRecursive::new(BrLin::new(), 5, "PartRec_5"),
            shape,
            vec![1, 2],
            8,
        );
    }

    #[test]
    fn recursive_single_source() {
        let shape = MeshShape::new(4, 4);
        check_recursive(
            PartRecursive::new(BrLin::new(), 2, "PartRec_2"),
            shape,
            vec![9],
            16,
        );
    }
}

//! `PersAlltoAll` (paper §2): s-to-p broadcasting as a personalized
//! all-to-all exchange.
//!
//! Each source treats its message as `p-1` identical "distinct" messages
//! and ships one per round of the permutation schedule (XOR pairing of
//! reference \[8\] for power-of-two machines, cyclic shifts otherwise).
//! Messages are never combined and no rank ever waits for a slow merge —
//! `O(1)` congestion and wait at the price of `O(p)` send/receive
//! operations. On the Paragon the per-message startup makes this slow;
//! on the T3D's fat network its MPI build (`MPI_Alltoall`) is the paper's
//! overall winner.

use collectives::personalized_from_sources;
use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::{tags, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Algorithm `PersAlltoAll`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersAlltoAll;

impl StpAlgorithm for PersAlltoAll {
    fn name(&self) -> &'static str {
        "PersAlltoAll"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let msgs =
                personalized_from_sources(comm, &|r| ctx.is_source(r), ctx.payload, tags::PERS)
                    .await;
            let mut set = MessageSet::new();
            for m in msgs {
                set.insert_payload(m.src, m.data);
            }
            set
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::MeshShape;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, len: usize) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            PersAlltoAll.run(comm, &ctx).await
        });
        for set in out.results {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources);
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, len));
            }
        }
    }

    #[test]
    fn power_of_two_machine_uses_xor_schedule() {
        check(MeshShape::new(4, 4), vec![0, 5, 10], 16);
    }

    #[test]
    fn general_machine_uses_shift_schedule() {
        check(MeshShape::new(3, 5), vec![1, 7, 14], 16);
    }

    #[test]
    fn every_rank_a_source() {
        check(MeshShape::new(2, 3), (0..6).collect(), 8);
    }

    #[test]
    fn no_combining_is_charged() {
        let shape = MeshShape::new(2, 4);
        let sources = vec![0usize, 3];
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), 64));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            let _ = PersAlltoAll.run(comm, &ctx).await;
            comm.stats().memcpy_bytes
        });
        assert!(
            out.results.iter().all(|&b| b == 0),
            "PersAlltoAll never combines"
        );
    }
}

//! Repositioning algorithms (paper §3, §5.2): `Repos_Lin`,
//! `Repos_xy_source`, `Repos_xy_dim`.
//!
//! The first step performs a partial permutation that moves the `s`
//! messages onto an *ideal* distribution of the base algorithm on this
//! machine; the base algorithm is then invoked on that distribution.
//! Like the paper's implementation, we "do not check whether the initial
//! distribution is close to an ideal distribution and always reposition"
//! — the cost of an unnecessary permutation is exactly what Figures 9
//! and 10 quantify.

use mpp_model::MeshShape;
use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::{tags, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// `Repos_<base>`: reposition to the base algorithm's ideal distribution,
/// then run the base algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Repos<A> {
    base: A,
    name: &'static str,
}

impl<A: StpAlgorithm> Repos<A> {
    /// Wrap a base algorithm. `name` follows the paper ("Repos_Lin", …).
    pub fn new(base: A, name: &'static str) -> Self {
        Repos { base, name }
    }

    /// The wrapped algorithm.
    pub fn base(&self) -> &A {
        &self.base
    }
}

/// Compute the repositioning permutation: the i-th source (ascending)
/// moves to the i-th target (ascending). Returns `(from, to)` pairs with
/// `from != to` (already-placed messages do not move).
pub fn repositioning_moves(sources: &[usize], targets: &[usize]) -> Vec<(usize, usize)> {
    debug_assert_eq!(sources.len(), targets.len());
    sources
        .iter()
        .zip(targets)
        .filter(|(f, t)| f != t)
        .map(|(&f, &t)| (f, t))
        .collect()
}

impl<A: StpAlgorithm> StpAlgorithm for Repos<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let me = comm.rank();
            let s = ctx.s();
            let targets = self.base.ideal_sources(ctx.shape, s).unwrap_or_else(|| {
                panic!(
                    "{} has no ideal distribution to reposition to",
                    self.base.name()
                )
            });
            debug_assert!(targets.windows(2).all(|w| w[0] < w[1]));

            let moves = repositioning_moves(ctx.sources, &targets);

            // Phase 0: the partial permutation. Sends go out first (they are
            // asynchronous), then the receive — a rank can be both a vacating
            // source and a new target.
            if let Some(payload) = ctx.payload {
                if moves.iter().any(|&(f, _)| f == me) {
                    let (_, to) = moves.iter().find(|&&(f, _)| f == me).unwrap();
                    comm.send(*to, tags::REPOS, payload);
                }
            }
            let mut new_payload: Option<Vec<u8>> = None;
            if let Some(&(from, _)) = moves.iter().find(|&&(_, t)| t == me) {
                new_payload = Some(comm.recv(Some(from), Some(tags::REPOS)).await.data.to_vec());
            } else if targets.binary_search(&me).is_ok() {
                // I am a target that did not move: I must have been the
                // matching source already.
                new_payload = ctx.payload.map(<[u8]>::to_vec);
            }
            comm.next_iteration();

            // Phase 1: the base algorithm on the ideal distribution.
            let ctx2 = StpCtx {
                shape: ctx.shape,
                sources: &targets,
                payload: new_payload.as_deref(),
            };
            let result = self.base.run(comm, &ctx2).await;

            // Relabel: the base run keys messages by *target* position; map
            // them back to the original source ranks (pure bookkeeping —
            // every rank knows the permutation, no communication or copying
            // of payload bytes is modelled).
            let mut out = MessageSet::new();
            for (t, data) in result.into_entries() {
                let idx = targets
                    .binary_search(&(t as usize))
                    .expect("base algorithm produced an unexpected source key");
                out.insert_payload(ctx.sources[idx], data);
            }
            out
        })
    }

    fn ideal_sources(&self, shape: MeshShape, s: usize) -> Option<Vec<usize>> {
        self.base.ideal_sources(shape, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::run_threads;

    use crate::algorithms::{BrLin, BrXySource};
    use crate::distribution::SourceDist;
    use crate::msgset::payload_for;

    fn check<A: StpAlgorithm>(alg: Repos<A>, shape: MeshShape, sources: Vec<usize>, len: usize) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for (rank, set) in out.results.iter().enumerate() {
            // Repos relabels back to the original source ids, so the
            // output contract matches the non-repositioning algorithms.
            assert_eq!(set.sources().collect::<Vec<_>>(), sources, "rank {rank}");
            for &s in &sources {
                assert_eq!(
                    set.get(s).unwrap(),
                    payload_for(s, len),
                    "rank {rank} src {s}"
                );
            }
        }
    }

    #[test]
    fn repos_lin_from_square_block() {
        let shape = MeshShape::new(4, 4);
        let sources = SourceDist::SquareBlock.place(shape, 4);
        check(Repos::new(BrLin::new(), "Repos_Lin"), shape, sources, 16);
    }

    #[test]
    fn repos_xy_source_from_cross() {
        let shape = MeshShape::new(5, 5);
        let sources = SourceDist::Cross.place(shape, 9);
        check(Repos::new(BrXySource, "Repos_xy_source"), shape, sources, 8);
    }

    #[test]
    fn repos_noop_when_already_ideal() {
        // When the input *is* the ideal distribution no message moves.
        let shape = MeshShape::new(4, 4);
        let targets = BrLin::new().ideal_sources(shape, 4).unwrap();
        let moves = repositioning_moves(&targets, &targets);
        assert!(moves.is_empty());
        check(Repos::new(BrLin::new(), "Repos_Lin"), shape, targets, 8);
    }

    #[test]
    fn moves_are_injective() {
        let shape = MeshShape::new(8, 8);
        let sources = SourceDist::SquareBlock.place(shape, 16);
        let targets = BrXySource.ideal_sources(shape, 16).unwrap();
        let moves = repositioning_moves(&sources, &targets);
        let mut tos: Vec<usize> = moves.iter().map(|&(_, t)| t).collect();
        tos.sort_unstable();
        tos.dedup();
        assert_eq!(tos.len(), moves.len(), "two messages sent to one target");
        let mut froms: Vec<usize> = moves.iter().map(|&(f, _)| f).collect();
        froms.sort_unstable();
        froms.dedup();
        assert_eq!(froms.len(), moves.len());
    }

    #[test]
    fn repos_all_sources_is_identity() {
        // s = p: every processor is a source; the ideal distribution is
        // also everything, so repositioning cannot move anything.
        let shape = MeshShape::new(3, 4);
        let sources: Vec<usize> = (0..12).collect();
        let targets = BrXySource.ideal_sources(shape, 12).unwrap();
        assert_eq!(targets, sources);
        check(Repos::new(BrXySource, "Repos_xy_source"), shape, sources, 4);
    }
}

//! `2-Step` (paper §2): an s-to-one gather followed by a one-to-all
//! broadcast.
//!
//! Every source's message reaches processor `P₀`, which combines the `s`
//! messages into one large message and broadcasts it to all processors
//! with the recursive-halving pattern. The paper includes this
//! library-style solution to demonstrate its bottlenecks: `O(s)`
//! congestion at `P₀` and `log p` broadcast rounds each carrying the full
//! `s·L` bytes.
//!
//! Two gather flavours are provided:
//!
//! * [`TwoStep::direct`] — every source sends straight to `P₀` (the
//!   paper's NX implementation on the Paragon);
//! * [`TwoStep::tree`] — a binomial-tree gather with combining at the
//!   intermediate nodes, the classic MPI library implementation; this is
//!   what the `MPI_AllGather` variant runs. `P₀` still receives the full
//!   `s·L` bytes (the congestion the paper attributes to it), but the
//!   gather's skew now depends on where the sources sit, which is what
//!   makes the T3D distribution effects of Figures 11 and 12 visible.

use collectives::bcast_from_first;
use mpp_runtime::{CommFuture, Communicator};

use crate::algorithms::{tags, StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Algorithm `2-Step`.
#[derive(Debug, Clone, Copy)]
pub struct TwoStep {
    /// Use a binomial-tree gather instead of direct sends to the root.
    pub tree_gather: bool,
}

impl Default for TwoStep {
    fn default() -> Self {
        TwoStep::direct()
    }
}

/// The rank that gathers and re-broadcasts.
const ROOT: usize = 0;

impl TwoStep {
    /// The paper's NX implementation: sources send directly to `P₀`.
    pub fn direct() -> Self {
        TwoStep { tree_gather: false }
    }

    /// The MPI-library implementation: binomial-tree gather.
    pub fn tree() -> Self {
        TwoStep { tree_gather: true }
    }

    /// Gather all source payloads into a [`MessageSet`] at the root;
    /// other ranks return an empty set.
    async fn gather(&self, comm: &mut dyn Communicator, ctx: &StpCtx<'_>) -> MessageSet {
        let me = comm.rank();
        let mut set = match ctx.payload {
            Some(p) => MessageSet::single(me, p),
            None => MessageSet::new(),
        };
        if !self.tree_gather {
            // Direct gather: sources fire at the root; the root absorbs.
            if me != ROOT {
                if let Some(p) = ctx.payload {
                    comm.send_payload(ROOT, tags::GATHER, MessageSet::single(me, p).to_payload());
                }
            } else {
                let expect = ctx.sources.iter().filter(|&&s| s != ROOT).count();
                for _ in 0..expect {
                    let m = comm.recv(None, Some(tags::GATHER)).await;
                    comm.charge_memcpy(m.data.len());
                    let other =
                        MessageSet::from_payload(&m.data).expect("malformed gather message");
                    set.merge(other);
                }
            }
            comm.next_iteration();
            return set;
        }

        // Binomial-tree gather along the recursive-halving segment tree:
        // the holder of segment [lo, hi) is `lo`; `mid` forwards the
        // accumulated second half up to `lo`. Only subtrees that contain
        // sources communicate.
        let p = comm.size();
        let subtree_has_source =
            |lo: usize, hi: usize| ctx.sources.iter().any(|&s| s >= lo && s < hi);
        gather_seg(comm, &mut set, 0, p, &subtree_has_source).await;
        comm.next_iteration();
        set
    }
}

/// Recursive step of the tree gather on segment `[lo, hi)`. Returns a
/// boxed future because async recursion needs an indirection.
fn gather_seg<'a>(
    comm: &'a mut dyn Communicator,
    set: &'a mut MessageSet,
    lo: usize,
    hi: usize,
    subtree_has_source: &'a dyn Fn(usize, usize) -> bool,
) -> CommFuture<'a, ()> {
    Box::pin(async move {
        if hi - lo <= 1 {
            return;
        }
        let me = comm.rank();
        let mid = lo + (hi - lo).div_ceil(2);
        if me < mid {
            gather_seg(comm, set, lo, mid, subtree_has_source).await;
            if me == lo && subtree_has_source(mid, hi) {
                let depth_tag = tags::GATHER + (hi - lo) as u32;
                let m = comm.recv(Some(mid), Some(depth_tag)).await;
                comm.charge_memcpy(m.data.len());
                let other = MessageSet::from_payload(&m.data).expect("malformed tree gather");
                set.merge(other);
            }
        } else {
            gather_seg(comm, set, mid, hi, subtree_has_source).await;
            if me == mid && subtree_has_source(mid, hi) {
                let depth_tag = tags::GATHER + (hi - lo) as u32;
                comm.send_payload(lo, depth_tag, set.to_payload());
            }
        }
    })
}

impl StpAlgorithm for TwoStep {
    fn name(&self) -> &'static str {
        if self.tree_gather {
            "2-Step (tree)"
        } else {
            "2-Step"
        }
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            ctx.validate(comm);
            let me = comm.rank();

            // Step 1: gather the combined message at the root.
            let gathered = self.gather(comm, ctx).await;

            // Step 2: root broadcasts the combined message.
            let order: Vec<usize> = (0..comm.size()).collect();
            let combined = (me == ROOT).then(|| gathered.to_payload());
            let wire = bcast_from_first(comm, &order, combined, tags::BCAST).await;
            MessageSet::from_payload(&wire).expect("malformed combined message")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::MeshShape;
    use mpp_runtime::run_threads;

    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, len: usize, alg: TwoStep) {
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            alg.run(comm, &ctx).await
        });
        for set in out.results {
            assert_eq!(set.sources().collect::<Vec<_>>(), sources);
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, len));
            }
        }
    }

    #[test]
    fn direct_basic() {
        check(MeshShape::new(2, 4), vec![2, 5, 7], 32, TwoStep::direct());
    }

    #[test]
    fn tree_basic() {
        check(MeshShape::new(2, 4), vec![2, 5, 7], 32, TwoStep::tree());
    }

    #[test]
    fn root_is_a_source_both_flavours() {
        check(MeshShape::new(2, 3), vec![0, 4], 16, TwoStep::direct());
        check(MeshShape::new(2, 3), vec![0, 4], 16, TwoStep::tree());
    }

    #[test]
    fn single_source_single_proc() {
        check(MeshShape::new(1, 1), vec![0], 8, TwoStep::direct());
        check(MeshShape::new(1, 1), vec![0], 8, TwoStep::tree());
    }

    #[test]
    fn all_sources_odd_p() {
        check(MeshShape::new(3, 3), (0..9).collect(), 8, TwoStep::direct());
        check(MeshShape::new(3, 3), (0..9).collect(), 8, TwoStep::tree());
    }

    #[test]
    fn tree_skips_empty_subtrees() {
        // With a single source at the far end, only the path to the root
        // communicates in the gather: total sends ≈ O(log p), not O(p).
        let shape = MeshShape::new(4, 4);
        let sources = vec![15usize];
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), 8));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            let _ = TwoStep::tree().run(comm, &ctx).await;
            comm.stats().total_sends()
        });
        let gather_sends: u64 = out.results.iter().sum();
        // 4 tree levels of gather + 15 bcast sends.
        assert!(gather_sends <= 4 + 15, "too many sends: {gather_sends}");
    }
}

//! A-priori traffic analysis of the merge algorithms.
//!
//! Because the `Br_Lin` schedule is a pure function of the source
//! positions, the *entire traffic pattern* — who sends how many bytes in
//! which iteration — can be computed without running anything. This
//! module derives per-iteration traffic profiles from the schedule and
//! the message-set wire format; the tests then verify the profile
//! matches what an actual simulation records, keeping the analysis and
//! the implementation mutually honest.
//!
//! This is the machinery behind the paper's Figure-2 distribution
//! parameters (`av_msg_lgth`, `av_act_proc`), computed a priori.

use mpp_model::MeshShape;

use crate::msgset::MessageSet;
use crate::pattern::br_lin_schedule;

/// Traffic of one `Br_Lin` iteration, aggregated over positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelTraffic {
    /// Messages sent in this iteration.
    pub messages: u64,
    /// Total wire bytes sent.
    pub bytes: u64,
    /// Positions that send or receive.
    pub active_positions: u64,
    /// Largest single message (wire bytes).
    pub max_message: u64,
}

/// Per-iteration traffic of `Br_Lin` over a line of positions, where
/// `initial[pos]` lists the *payload lengths* initially at each position
/// (empty = not a source).
///
/// Returns one [`LevelTraffic`] per iteration. The byte counts use the
/// actual `MessageSet` wire format, so they agree exactly with what the
/// runtime sends.
pub fn br_lin_traffic(initial: &[Vec<usize>]) -> Vec<LevelTraffic> {
    let has: Vec<bool> = initial.iter().map(|v| !v.is_empty()).collect();
    let sched = br_lin_schedule(&has);

    // Evolving per-position sets of (source position, payload len).
    let mut sets: Vec<Vec<(usize, usize)>> = initial
        .iter()
        .enumerate()
        .map(|(pos, lens)| lens.iter().map(|&l| (pos, l)).collect())
        .collect();

    let wire = |set: &[(usize, usize)]| -> u64 {
        // Mirror MessageSet::wire_bytes: 4 + entries*8 + payloads.
        4 + set.len() as u64 * 8 + set.iter().map(|&(_, l)| l as u64).sum::<u64>()
    };

    let mut out = Vec::with_capacity(sched.levels());
    for level in &sched.ops {
        let snapshot = sets.clone();
        let mut traffic = LevelTraffic::default();
        for (pos, ops) in level.iter().enumerate() {
            if !ops.is_empty() {
                traffic.active_positions += 1;
            }
            for op in ops {
                if op.send {
                    let b = wire(&snapshot[pos]);
                    traffic.messages += 1;
                    traffic.bytes += b;
                    traffic.max_message = traffic.max_message.max(b);
                }
                if op.recv {
                    // Merge (dedupe by source) exactly like MessageSet.
                    let incoming = snapshot[op.peer].clone();
                    for (src, len) in incoming {
                        if !sets[pos].iter().any(|&(s, _)| s == src) {
                            sets[pos].push((src, len));
                        }
                    }
                }
            }
        }
        for s in sets.iter_mut() {
            s.sort_unstable();
        }
        out.push(traffic);
    }
    out
}

/// Total wire bytes `Br_Lin` moves for `s` uniform-length sources on a
/// snake-ordered mesh — the quantity Figure 7 trades against source
/// count.
pub fn br_lin_total_bytes(shape: MeshShape, sources: &[usize], len: usize) -> u64 {
    let snake = shape.snake_order();
    let initial: Vec<Vec<usize>> = snake
        .iter()
        .map(|r| {
            if sources.binary_search(r).is_ok() {
                vec![len]
            } else {
                Vec::new()
            }
        })
        .collect();
    br_lin_traffic(&initial).iter().map(|t| t.bytes).sum()
}

/// Sanity helper used by tests: the wire size of a `k`-source set with
/// uniform `len` payloads (must equal `MessageSet`'s encoding).
pub fn uniform_wire_bytes(k: usize, len: usize) -> usize {
    let mut set = MessageSet::new();
    for i in 0..k {
        set.insert(i, &vec![0u8; len]);
    }
    set.wire_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::{LibraryKind, Machine};
    use mpp_runtime::run_simulated;

    use crate::algorithms::{BrLin, StpAlgorithm, StpCtx};
    use crate::distribution::SourceDist;
    use crate::msgset::payload_for;

    #[test]
    fn wire_model_matches_msgset() {
        for (k, len) in [(0usize, 0usize), (1, 10), (5, 100), (30, 4096)] {
            let analytic = 4 + k as u64 * 8 + (k * len) as u64;
            assert_eq!(analytic as usize, uniform_wire_bytes(k, len));
        }
    }

    #[test]
    fn traffic_profile_matches_simulation() {
        // The analytic per-iteration bytes must equal the measured
        // per-iteration bytes of an actual Br_Lin run.
        let machine = Machine::paragon(4, 5);
        let shape = machine.shape;
        let sources = SourceDist::Equal.place(shape, 7);
        let len = 128;

        let snake = shape.snake_order();
        let initial: Vec<Vec<usize>> = snake
            .iter()
            .map(|r| {
                if sources.binary_search(r).is_ok() {
                    vec![len]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let profile = br_lin_traffic(&initial);

        let out = run_simulated(&machine, LibraryKind::Nx, async |comm| {
            use mpp_runtime::Communicator;
            let payload = sources
                .binary_search(&comm.rank())
                .is_ok()
                .then(|| payload_for(comm.rank(), len));
            let ctx = StpCtx {
                shape,
                sources: &sources,
                payload: payload.as_deref(),
            };
            let _ = BrLin::new().run(comm, &ctx).await;
        });

        for (level, expect) in profile.iter().enumerate() {
            let measured_bytes: u64 = out
                .stats
                .iter()
                .map(|st| st.iters.get(level).map_or(0, |it| it.bytes_sent))
                .sum();
            assert_eq!(measured_bytes, expect.bytes, "level {level} byte mismatch");
            let measured_msgs: u64 = out
                .stats
                .iter()
                .map(|st| st.iters.get(level).map_or(0, |it| it.sends))
                .sum();
            assert_eq!(
                measured_msgs, expect.messages,
                "level {level} message mismatch"
            );
            let measured_active = out
                .stats
                .iter()
                .filter(|st| st.iters.get(level).is_some_and(|it| it.active()))
                .count() as u64;
            assert_eq!(
                measured_active, expect.active_positions,
                "level {level} active mismatch"
            );
        }
    }

    #[test]
    fn fig7_fixed_total_fewer_sources_means_bigger_early_messages() {
        // The paper's Figure-7 effect in pure analysis: with s·L fixed,
        // fewer sources push *much larger individual messages* through
        // the early iterations (poor pipelining, fewer active senders),
        // even though the total byte volume is comparable.
        let shape = MeshShape::new(10, 10);
        let total = 80 * 1024;
        let snake = shape.snake_order();
        let profile_for = |s: usize| {
            let sources = SourceDist::DiagRight.place(shape, s);
            let len = total / s;
            let initial: Vec<Vec<usize>> = snake
                .iter()
                .map(|r| {
                    if sources.binary_search(r).is_ok() {
                        vec![len]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            br_lin_traffic(&initial)
        };
        let few = profile_for(5);
        let many = profile_for(40);
        // Early levels: s=5 ships 16 KiB chunks, s=40 ships 2 KiB chunks.
        assert!(
            few[0].max_message > 4 * many[0].max_message,
            "few={} many={}",
            few[0].max_message,
            many[0].max_message
        );
        // And far fewer positions participate early.
        assert!(few[0].active_positions < many[0].active_positions);
        // Total volume is within 2x either way (headers + overlap only).
        let total_few: u64 = few.iter().map(|t| t.bytes).sum();
        let total_many: u64 = many.iter().map(|t| t.bytes).sum();
        let ratio = total_few as f64 / total_many as f64;
        assert!((0.5..2.0).contains(&ratio), "volume ratio {ratio}");
    }

    #[test]
    fn empty_input_no_traffic() {
        let profile = br_lin_traffic(&vec![Vec::new(); 8]);
        assert!(profile.iter().all(|t| t.messages == 0 && t.bytes == 0));
    }

    #[test]
    fn single_source_message_count_doubles_per_level() {
        let mut initial = vec![Vec::new(); 8];
        initial[0] = vec![100];
        let profile = br_lin_traffic(&initial);
        // Holders double each level, each forwarding the same single-
        // source set: 1, 2, 4 messages of constant size.
        assert_eq!(profile.len(), 3);
        let wire = 4 + 8 + 100u64;
        for (level, t) in profile.iter().enumerate() {
            assert_eq!(t.messages, 1 << level, "level {level}");
            assert_eq!(t.max_message, wire);
            assert_eq!(t.bytes, (1 << level) as u64 * wire);
        }
    }
}

//! Source announcement — the synchronization phase the paper assumes
//! away.
//!
//! §1: "we assume that every processor knows the position of the source
//! processors and the size of the messages when s-to-p broadcasting
//! starts. If this does not hold, synchronization and possible
//! communication is needed before our algorithms can be used."
//!
//! This module supplies that phase: each processor contributes one bit
//! ("I have a message") plus its message length; an all-reduce over a
//! `p`-bit bitmap + length table makes the full source set known
//! everywhere, after which any [`StpAlgorithm`] applies. The cost of
//! the announcement is measured by `announce_overhead` tests and is
//! `O(log p)` rounds of `O(p)`-byte messages — negligible against the
//! broadcast itself for the paper's message sizes.

use collectives::allreduce;
use mpp_runtime::Communicator;

use crate::algorithms::{StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;

/// Tag for the announcement phase.
const TAG: u32 = 4_900;

/// Wire format of the announcement contribution: a `p`-entry table of
/// `u32` lengths, `u32::MAX` meaning "not a source".
fn encode(p: usize, me: usize, my_len: Option<usize>) -> Vec<u8> {
    let mut table = vec![u32::MAX; p];
    if let Some(len) = my_len {
        table[me] = len as u32;
    }
    table.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn decode(bytes: &[u8]) -> Vec<Option<usize>> {
    bytes
        .chunks_exact(4)
        .map(|c| {
            let v = u32::from_le_bytes(c.try_into().unwrap());
            (v != u32::MAX).then_some(v as usize)
        })
        .collect()
}

fn merge_tables(a: &[u8], b: &[u8]) -> Vec<u8> {
    debug_assert_eq!(a.len(), b.len());
    a.chunks_exact(4)
        .zip(b.chunks_exact(4))
        .flat_map(|(x, y)| {
            let xv = u32::from_le_bytes(x.try_into().unwrap());
            let yv = u32::from_le_bytes(y.try_into().unwrap());
            xv.min(yv).to_le_bytes()
        })
        .collect()
}

/// Discover the source set at runtime, then broadcast.
///
/// Every rank calls this with its *own* knowledge only (`my_payload`);
/// no rank needs to know who else is a source. Returns the complete
/// message set, identical on every rank, or `None` when no rank had a
/// message (the s = 0 case the synchronous API cannot express).
pub async fn announce_and_broadcast(
    comm: &mut dyn Communicator,
    shape: mpp_model::MeshShape,
    my_payload: Option<&[u8]>,
    alg: &dyn StpAlgorithm,
) -> Option<MessageSet> {
    let p = comm.size();
    let me = comm.rank();

    // Phase 0: all-reduce the (who, length) table.
    let contrib = encode(p, me, my_payload.map(<[u8]>::len));
    let order: Vec<usize> = (0..p).collect();
    let table_bytes = allreduce(comm, &order, &contrib, &merge_tables, TAG).await;
    let table = decode(&table_bytes);
    comm.next_iteration();

    let sources: Vec<usize> = table
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_some())
        .map(|(r, _)| r)
        .collect();
    if sources.is_empty() {
        return None;
    }

    // Phase 1: the regular, fully-informed broadcast.
    let ctx = StpCtx {
        shape,
        sources: &sources,
        payload: my_payload,
    };
    Some(alg.run(comm, &ctx).await)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::MeshShape;
    use mpp_runtime::run_threads;

    use crate::algorithms::{BrLin, BrXySource, TwoStep};
    use crate::msgset::payload_for;

    fn check(shape: MeshShape, sources: Vec<usize>, alg: &dyn StpAlgorithm) {
        let out = run_threads(shape.p(), async |comm| {
            // Each rank knows only its own status.
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), 64));
            announce_and_broadcast(comm, shape, payload.as_deref(), alg).await
        });
        for set in out.results {
            let set = set.expect("sources exist");
            assert_eq!(set.sources().collect::<Vec<_>>(), sources);
            for &s in &sources {
                assert_eq!(set.get(s).unwrap(), payload_for(s, 64));
            }
        }
    }

    #[test]
    fn discovers_and_broadcasts() {
        check(MeshShape::new(4, 4), vec![2, 9, 13], &BrLin::new());
        check(MeshShape::new(3, 5), vec![0, 14], &BrXySource);
        check(MeshShape::new(2, 4), vec![5], &TwoStep::direct());
    }

    #[test]
    fn no_sources_yields_none() {
        let shape = MeshShape::new(2, 3);
        let out = run_threads(shape.p(), async |comm| {
            announce_and_broadcast(comm, shape, None, &BrLin::new()).await
        });
        assert!(out.results.iter().all(|r| r.is_none()));
    }

    #[test]
    fn every_rank_a_source() {
        let shape = MeshShape::new(3, 3);
        check(shape, (0..9).collect(), &BrLin::new());
    }

    #[test]
    fn variable_lengths_announced() {
        let shape = MeshShape::new(2, 4);
        let sources = [1usize, 6];
        let out = run_threads(shape.p(), async |comm| {
            let payload = sources
                .contains(&comm.rank())
                .then(|| payload_for(comm.rank(), 10 + comm.rank() * 7));
            announce_and_broadcast(comm, shape, payload.as_deref(), &BrLin::new()).await
        });
        for set in out.results {
            let set = set.unwrap();
            assert_eq!(set.get(1).unwrap().len(), 17);
            assert_eq!(set.get(6).unwrap().len(), 52);
        }
    }

    #[test]
    fn table_encoding_roundtrip() {
        let enc = encode(5, 2, Some(1234));
        let dec = decode(&enc);
        assert_eq!(dec, vec![None, None, Some(1234), None, None]);
        // merge keeps the minimum (i.e. the announced value beats MAX)
        let a = encode(3, 0, Some(7));
        let b = encode(3, 2, Some(9));
        let m = decode(&merge_tables(&a, &b));
        assert_eq!(m, vec![Some(7), None, Some(9)]);
    }
}

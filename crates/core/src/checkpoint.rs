//! Atomic sweep checkpoints: resumable progress for long sweeps.
//!
//! A checkpoint is one JSON file mapping stable grid-point ids to the
//! exact record string each completed point produced, plus a *signature*
//! of the sweep configuration. On resume, a driver reopens the file: if
//! the signature matches, completed points are skipped and their stored
//! records are spliced back into the final report **verbatim** — so an
//! interrupted-and-resumed sweep emits a byte-identical report to an
//! uninterrupted one. A signature mismatch (different grid, executor,
//! fault plan…) silently starts fresh: stale progress must never leak
//! into a differently-configured sweep.
//!
//! Every save rewrites the whole file through a sibling temp file and
//! an atomic rename, so a `SIGKILL` mid-save leaves the previous
//! complete checkpoint intact — never a torn one.
//!
//! The build is offline (no serde), so the module carries its own
//! minimal JSON reader ([`parse_json`]) and string escaper
//! ([`json_escape`]); the analyzer reuses them to round-trip lint
//! entries through checkpoints.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

/// A parsed JSON value (object keys keep document order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (f64 is exact for the counters checkpoints carry).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Minimal JSON string escaping (mirrors the report writers').
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse one JSON document. Errors carry the byte offset.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// In-memory checkpoint state: a config signature plus the record
/// string of every completed grid point, keyed by stable point id.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    sig: String,
    entries: BTreeMap<String, String>,
}

impl Checkpoint {
    /// An empty checkpoint for a sweep with this config signature.
    pub fn new(sig: &str) -> Self {
        Checkpoint {
            sig: sig.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// The sweep-config signature this progress belongs to.
    pub fn sig(&self) -> &str {
        &self.sig
    }

    /// Completed points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no point has completed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored record for a completed point.
    pub fn get(&self, id: &str) -> Option<&str> {
        self.entries.get(id).map(String::as_str)
    }

    /// Store the record for a completed point.
    pub fn insert(&mut self, id: &str, record: &str) {
        self.entries.insert(id.to_string(), record.to_string());
    }

    /// Drop a stored record (the serve plan cache evicts past its
    /// bound). Returns the removed record, if any.
    pub fn remove(&mut self, id: &str) -> Option<String> {
        self.entries.remove(id)
    }

    /// The stored point ids, in sorted order.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Serialize (keys in sorted order — the file is deterministic).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"sig\":\"{}\",\"entries\":{{", json_escape(&self.sig));
        for (i, (id, record)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  \"{}\":\"{}\"",
                json_escape(id),
                json_escape(record)
            ));
        }
        out.push_str("\n}}");
        out
    }

    /// Parse a serialized checkpoint.
    pub fn from_json(text: &str) -> Result<Checkpoint, String> {
        let value = parse_json(text)?;
        let sig = value
            .get("sig")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint missing \"sig\"")?
            .to_string();
        let mut entries = BTreeMap::new();
        for (id, record) in value
            .get("entries")
            .and_then(JsonValue::as_object)
            .ok_or("checkpoint missing \"entries\"")?
        {
            let record = record
                .as_str()
                .ok_or_else(|| format!("entry {id:?} is not a string"))?;
            entries.insert(id.clone(), record.to_string());
        }
        Ok(Checkpoint { sig, entries })
    }

    /// Load from disk. `Ok(None)` when the file does not exist; a
    /// malformed file also comes back `None` (with a warning) — a
    /// damaged checkpoint costs a re-run, never a crash.
    pub fn load(path: &Path) -> io::Result<Option<Checkpoint>> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        match Checkpoint::from_json(&text) {
            Ok(cp) => Ok(Some(cp)),
            Err(e) => {
                eprintln!(
                    "warning: ignoring malformed checkpoint {}: {e}",
                    path.display()
                );
                Ok(None)
            }
        }
    }

    /// Write atomically: serialize to a sibling temp file, fsync, then
    /// rename over the target. Readers (and a resume after `SIGKILL`)
    /// only ever see a complete checkpoint.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        use std::io::Write;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// Thread-safe checkpoint handle a supervised sweep's observer writes
/// through: every [`record`](CheckpointFile::record) updates the store
/// and rewrites the file atomically.
#[derive(Debug)]
pub struct CheckpointFile {
    path: PathBuf,
    inner: Mutex<Checkpoint>,
}

impl CheckpointFile {
    /// Open (or create) the checkpoint at `path` for a sweep with this
    /// config signature. Existing progress is resumed only when the
    /// stored signature matches; otherwise the sweep starts fresh.
    pub fn open(path: impl Into<PathBuf>, sig: &str) -> io::Result<CheckpointFile> {
        let path = path.into();
        let inner = match Checkpoint::load(&path)? {
            Some(cp) if cp.sig() == sig => cp,
            Some(cp) => {
                eprintln!(
                    "note: checkpoint {} belongs to a different sweep config ({:?}); starting fresh",
                    path.display(),
                    cp.sig()
                );
                Checkpoint::new(sig)
            }
            None => Checkpoint::new(sig),
        };
        Ok(CheckpointFile {
            path,
            inner: Mutex::new(inner),
        })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of points already completed.
    pub fn completed(&self) -> usize {
        self.lock().len()
    }

    /// The stored record of a completed point, if any.
    pub fn get(&self, id: &str) -> Option<String> {
        self.lock().get(id).map(str::to_string)
    }

    /// Record a completed point and persist. Persistence is
    /// best-effort: an I/O failure costs resumability, not the sweep —
    /// it warns and keeps going.
    pub fn record(&self, id: &str, record: &str) {
        let mut cp = self.lock();
        cp.insert(id, record);
        if let Err(e) = cp.save(&self.path) {
            eprintln!(
                "warning: could not save checkpoint {}: {e}",
                self.path.display()
            );
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Checkpoint> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stp-checkpoint-test-{}-{tag}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn json_round_trips_gnarly_strings() {
        let gnarly = "quote \" backslash \\ newline \n tab \t nul \u{1} unicode é 🎉";
        let mut cp = Checkpoint::new(gnarly);
        cp.insert("point/\"a\"", gnarly);
        cp.insert("plain", "{\"nested\":\"json {} [] , :\"}");
        let back = Checkpoint::from_json(&cp.to_json()).expect("round trip");
        assert_eq!(back, cp);
        assert_eq!(back.get("point/\"a\""), Some(gnarly));
    }

    #[test]
    fn parser_handles_all_value_kinds() {
        let v = parse_json(
            r#"{"a": [1, -2.5, 1e3], "b": {"c": null, "d": true}, "e": false, "s": "xA🎉"}"#,
        )
        .expect("parse");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("s").unwrap().as_str(), Some("xA🎉"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
    }

    #[test]
    fn save_load_round_trips_and_missing_is_none() {
        let path = tmp_path("roundtrip");
        assert_eq!(Checkpoint::load(&path).expect("load"), None);
        let mut cp = Checkpoint::new("sig-v1");
        cp.insert("p1", "{\"ms\":1.5}");
        cp.insert("p2", "{\"ms\":2.5}");
        cp.save(&path).expect("save");
        let back = Checkpoint::load(&path).expect("load").expect("present");
        assert_eq!(back, cp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_file_is_ignored_not_fatal() {
        let path = tmp_path("malformed");
        std::fs::write(&path, "not json at all").unwrap();
        assert_eq!(Checkpoint::load(&path).expect("load"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_file_resumes_only_on_matching_sig() {
        let path = tmp_path("sig");
        {
            let file = CheckpointFile::open(&path, "sig-a").expect("open");
            file.record("p1", "one");
            file.record("p2", "two");
            assert_eq!(file.completed(), 2);
        }
        // Same sig: progress resumes.
        let resumed = CheckpointFile::open(&path, "sig-a").expect("open");
        assert_eq!(resumed.completed(), 2);
        assert_eq!(resumed.get("p1").as_deref(), Some("one"));
        drop(resumed);
        // Different sig: starts fresh.
        let fresh = CheckpointFile::open(&path, "sig-b").expect("open");
        assert_eq!(fresh.completed(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}

//! Source distributions (paper §4).
//!
//! Each distribution places `s` source processors on the logical
//! `r × c` mesh (`r ≤ c` in all the paper's experiments). The placement
//! rules follow §4; where the prose is ambiguous for non-square meshes the
//! deviation is documented on the variant.

use std::collections::BTreeSet;

use mpp_model::MeshShape;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A named source-distribution family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceDist {
    /// `R(s)`: `⌈s/c⌉` evenly spaced rows; all full except possibly the
    /// last.
    Row,
    /// `C(s)`: `⌈s/r⌉` evenly spaced columns; all full except possibly
    /// the last.
    Column,
    /// `E(s)`: processor (0,0) plus every `⌈p/s⌉`-th / `⌊p/s⌋`-th
    /// processor in row-major order (i.e. rank `⌊j·p/s⌋`).
    Equal,
    /// `Dr(s)`: right diagonals `col = (row + offset) mod c`, starting
    /// with the main diagonal, remaining diagonals evenly spaced.
    /// (The paper sets the diagonal count from `⌈s/c⌉`; since a wrapped
    /// diagonal holds `r` cells we use `⌈s/r⌉`, identical on the square
    /// meshes the paper evaluates.)
    DiagRight,
    /// `Dl(s)`: left diagonals `col = (c-1 - row + c - offset) mod c`,
    /// starting with the main anti-diagonal.
    DiagLeft,
    /// `B(s)`: `⌈c/r⌉` evenly spaced diagonal bands of width
    /// `⌈s/(b·r)⌉`.
    Band,
    /// `Cr(s)`: union of a row distribution with roughly `s/2` sources
    /// and evenly spaced columns filled top-to-bottom with the rest
    /// (cells already used by the rows are not double-counted).
    Cross,
    /// `Sq(s)`: a `⌈√s⌉ × ⌈√s⌉` block anchored at (0,0), filled column
    /// by column.
    SquareBlock,
    /// Uniformly random distinct positions (seeded) — the paper
    /// conjectures this resembles `E(s)` behaviour on the T3D.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// An explicit caller-provided source set.
    Explicit(Vec<usize>),
}

impl SourceDist {
    /// Short name used in tables and benches.
    pub fn name(&self) -> &'static str {
        match self {
            SourceDist::Row => "R",
            SourceDist::Column => "C",
            SourceDist::Equal => "E",
            SourceDist::DiagRight => "Dr",
            SourceDist::DiagLeft => "Dl",
            SourceDist::Band => "B",
            SourceDist::Cross => "Cr",
            SourceDist::SquareBlock => "Sq",
            SourceDist::Random { .. } => "Rand",
            SourceDist::Explicit(_) => "Explicit",
        }
    }

    /// Parse a distribution name (long or paper-abbreviated) as used by
    /// the `stp` CLI and the serve request schema. `seed` feeds the
    /// `Random` variant only.
    pub fn parse(name: &str, seed: u64) -> Option<SourceDist> {
        Some(match name.to_lowercase().as_str() {
            "row" | "r" => SourceDist::Row,
            "column" | "col" | "c" => SourceDist::Column,
            "equal" | "e" => SourceDist::Equal,
            "diag" | "diag_right" | "dr" => SourceDist::DiagRight,
            "diag_left" | "dl" => SourceDist::DiagLeft,
            "band" | "b" => SourceDist::Band,
            "cross" | "cr" => SourceDist::Cross,
            "square" | "square_block" | "sq" => SourceDist::SquareBlock,
            "random" | "rand" => SourceDist::Random { seed },
            _ => return None,
        })
    }

    /// The six named distributions of the paper's Figure 6 comparison.
    pub fn paper_set() -> Vec<SourceDist> {
        vec![
            SourceDist::Row,
            SourceDist::Column,
            SourceDist::Equal,
            SourceDist::DiagRight,
            SourceDist::SquareBlock,
            SourceDist::Cross,
        ]
    }

    /// Place `s` sources on `shape`. Returns sorted, distinct ranks.
    ///
    /// ```
    /// use mpp_model::MeshShape;
    /// use stp_core::distribution::SourceDist;
    /// // R(30) on 10x10: three evenly spaced full rows (0, 3, 6).
    /// let placed = SourceDist::Row.place(MeshShape::new(10, 10), 30);
    /// assert_eq!(placed.len(), 30);
    /// assert!(placed.contains(&0) && placed.contains(&30) && placed.contains(&60));
    /// ```
    ///
    /// # Panics
    /// Panics if `s == 0` or `s > p`, or if an `Explicit` set is
    /// malformed.
    pub fn place(&self, shape: MeshShape, s: usize) -> Vec<usize> {
        let p = shape.p();
        assert!(s >= 1 && s <= p, "s={s} outside 1..={p}");
        let (r, c) = (shape.rows, shape.cols);
        let set: BTreeSet<usize> = match self {
            SourceDist::Row => {
                let i = s.div_ceil(c);
                let mut set = BTreeSet::new();
                'outer: for j in 0..i {
                    let row = j * r / i;
                    for col in 0..c {
                        set.insert(shape.rank(row, col));
                        if set.len() == s {
                            break 'outer;
                        }
                    }
                }
                set
            }
            SourceDist::Column => {
                let i = s.div_ceil(r);
                let mut set = BTreeSet::new();
                'outer: for j in 0..i {
                    let col = j * c / i;
                    for row in 0..r {
                        set.insert(shape.rank(row, col));
                        if set.len() == s {
                            break 'outer;
                        }
                    }
                }
                set
            }
            SourceDist::Equal => (0..s).map(|j| j * p / s).collect(),
            SourceDist::DiagRight => diag_set(shape, s, false),
            SourceDist::DiagLeft => diag_set(shape, s, true),
            SourceDist::Band => {
                let b = c.div_ceil(r).max(1);
                let width = s.div_ceil(b * r).max(1);
                let mut set = BTreeSet::new();
                'outer: for band in 0..b {
                    let base = band * c / b;
                    for w in 0..width {
                        let offset = (base + w) % c;
                        for row in 0..r {
                            set.insert(shape.rank(row, (row + offset) % c));
                            if set.len() == s {
                                break 'outer;
                            }
                        }
                    }
                }
                // Extremely dense cases can exhaust all bands before
                // placing s sources (duplicate cells); fill row-major.
                fill_remaining(&mut set, s, p);
                set
            }
            SourceDist::Cross => {
                let mut set = BTreeSet::new();
                // Rows with roughly half the sources, fully filled.
                let row_share = s.div_ceil(2);
                let i_r = row_share.div_ceil(c).max(1);
                for j in 0..i_r {
                    let row = j * r / i_r;
                    for col in 0..c {
                        if set.len() < s {
                            set.insert(shape.rank(row, col));
                        }
                    }
                }
                // Evenly spaced columns filled top-to-bottom with the rest;
                // cells already covered by the rows contribute no new
                // sources, so size the column count by fresh cells per
                // column (a full column gains r - i_r new sources).
                let remaining = s - set.len().min(s);
                if remaining > 0 {
                    let fresh_per_col = r.saturating_sub(i_r).max(1);
                    let i_c = remaining.div_ceil(fresh_per_col).min(c);
                    'outer: for j in 0..i_c {
                        let col = j * c / i_c;
                        for row in 0..r {
                            set.insert(shape.rank(row, col));
                            if set.len() == s {
                                break 'outer;
                            }
                        }
                    }
                }
                fill_remaining(&mut set, s, p);
                set
            }
            SourceDist::SquareBlock => {
                let q = (s as f64).sqrt().ceil() as usize;
                // Block height: ⌈√s⌉, but stretch when the mesh is too
                // narrow for a square block and clip to the mesh height.
                let h = q.max(s.div_ceil(c)).min(r).max(1);
                let mut set = BTreeSet::new();
                'outer: for col in 0..c {
                    for row in 0..h {
                        set.insert(shape.rank(row, col));
                        if set.len() == s {
                            break 'outer;
                        }
                    }
                }
                set
            }
            SourceDist::Random { seed } => {
                let mut all: Vec<usize> = (0..p).collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                all.shuffle(&mut rng);
                all.truncate(s);
                all.into_iter().collect()
            }
            SourceDist::Explicit(v) => {
                let set: BTreeSet<usize> = v.iter().copied().collect();
                assert_eq!(set.len(), v.len(), "explicit sources contain duplicates");
                assert_eq!(set.len(), s, "explicit sources disagree with s");
                assert!(set.iter().all(|&x| x < p), "explicit source out of range");
                set
            }
        };
        debug_assert_eq!(
            set.len(),
            s,
            "{} placed {} != s={s}",
            self.name(),
            set.len()
        );
        set.into_iter().collect()
    }
}

/// Place `s` sources on wrapped diagonals. `left` mirrors the direction.
fn diag_set(shape: MeshShape, s: usize, left: bool) -> BTreeSet<usize> {
    let (r, c) = (shape.rows, shape.cols);
    let i = s.div_ceil(r);
    let mut set = BTreeSet::new();
    'outer: for j in 0..i {
        let offset = j * c / i;
        for row in 0..r {
            let col = if left {
                // main anti-diagonal (row 0 → col c-1) shifted left by
                // offset; reduce row mod c first so tall-narrow meshes
                // (r > c) cannot underflow.
                (2 * c - 1 - (row % c) - offset) % c
            } else {
                (row + offset) % c
            };
            set.insert(shape.rank(row, col));
            if set.len() == s {
                break 'outer;
            }
        }
    }
    fill_remaining(&mut set, s, shape.p());
    set
}

/// Top up `set` to `s` entries with the smallest unused ranks (only
/// reachable for extreme `s` where the pattern self-overlaps).
fn fill_remaining(set: &mut BTreeSet<usize>, s: usize, p: usize) {
    let mut next = 0usize;
    while set.len() < s {
        while set.contains(&next) {
            next += 1;
            assert!(next < p, "cannot place {s} sources on {p} processors");
        }
        set.insert(next);
    }
}

/// Per-row source counts.
pub fn row_counts(shape: MeshShape, sources: &[usize]) -> Vec<usize> {
    let mut counts = vec![0; shape.rows];
    for &s in sources {
        counts[shape.coords(s).0] += 1;
    }
    counts
}

/// Per-column source counts.
pub fn col_counts(shape: MeshShape, sources: &[usize]) -> Vec<usize> {
    let mut counts = vec![0; shape.cols];
    for &s in sources {
        counts[shape.coords(s).1] += 1;
    }
    counts
}

/// Render the distribution as an ASCII grid (`#` source, `.` other) —
/// used by the Figure-1 reproduction binary.
pub fn ascii_grid(shape: MeshShape, sources: &[usize]) -> String {
    let set: BTreeSet<usize> = sources.iter().copied().collect();
    let mut out = String::with_capacity((shape.cols + 1) * shape.rows);
    for row in 0..shape.rows {
        for col in 0..shape.cols {
            out.push(if set.contains(&shape.rank(row, col)) {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEN: MeshShape = MeshShape { rows: 10, cols: 10 };

    fn place(d: SourceDist, s: usize) -> Vec<usize> {
        d.place(TEN, s)
    }

    #[test]
    fn all_distributions_place_exactly_s() {
        let shapes = [
            MeshShape::new(10, 10),
            MeshShape::new(8, 16),
            MeshShape::new(4, 30),
            MeshShape::new(10, 12),
        ];
        let dists = [
            SourceDist::Row,
            SourceDist::Column,
            SourceDist::Equal,
            SourceDist::DiagRight,
            SourceDist::DiagLeft,
            SourceDist::Band,
            SourceDist::Cross,
            SourceDist::SquareBlock,
            SourceDist::Random { seed: 11 },
        ];
        for shape in shapes {
            let p = shape.p();
            for d in &dists {
                for s in [1usize, 2, 5, p / 4, p / 2, p - 1, p] {
                    let placed = d.place(shape, s);
                    assert_eq!(placed.len(), s, "{} s={s} on {shape:?}", d.name());
                    assert!(placed.windows(2).all(|w| w[0] < w[1]), "not sorted/unique");
                    assert!(placed.iter().all(|&x| x < p));
                }
            }
        }
    }

    #[test]
    fn figure1_row_30_on_10x10() {
        // R(30): three evenly spaced full rows -> rows 0, 3, 6.
        let placed = place(SourceDist::Row, 30);
        let rows = row_counts(TEN, &placed);
        assert_eq!(rows[0], 10);
        assert_eq!(rows[3], 10);
        assert_eq!(rows[6], 10);
        assert_eq!(rows.iter().sum::<usize>(), 30);
    }

    #[test]
    fn figure1_diag_right_30_on_10x10() {
        // Dr(30): three wrapped right diagonals including the main one.
        let placed = place(SourceDist::DiagRight, 30);
        // Main diagonal present:
        for k in 0..10 {
            assert!(
                placed.contains(&TEN.rank(k, k)),
                "main diagonal cell ({k},{k})"
            );
        }
        // every row and column has exactly 3 sources
        assert!(row_counts(TEN, &placed).iter().all(|&n| n == 3));
        assert!(col_counts(TEN, &placed).iter().all(|&n| n == 3));
    }

    #[test]
    fn figure1_cross_30_on_10x10() {
        // Cr(30): two full rows + two partial columns.
        let placed = place(SourceDist::Cross, 30);
        let rows = row_counts(TEN, &placed);
        let full_rows = rows.iter().filter(|&&n| n == 10).count();
        assert_eq!(full_rows, 2, "two full rows expected, rows={rows:?}");
        let cols = col_counts(TEN, &placed);
        // Two columns carry extra sources beyond the two from the rows.
        let heavy_cols = cols.iter().filter(|&&n| n > 2).count();
        assert_eq!(heavy_cols, 2, "two column arms expected, cols={cols:?}");
    }

    #[test]
    fn column_is_transpose_of_row() {
        let placed = place(SourceDist::Column, 30);
        let cols = col_counts(TEN, &placed);
        assert_eq!(cols[0], 10);
        assert_eq!(cols[3], 10);
        assert_eq!(cols[6], 10);
    }

    #[test]
    fn equal_spacing_even() {
        let placed = place(SourceDist::Equal, 20);
        // rank j*100/20 = 5j
        let expect: Vec<usize> = (0..20).map(|j| j * 5).collect();
        assert_eq!(placed, expect);
        assert!(placed.contains(&0), "(1,1) i.e. rank 0 is always a source");
    }

    #[test]
    fn equal_can_degenerate_to_column_like() {
        // s=10 on 10x10: ranks 0,10,20,... = column 0 exactly.
        let placed = place(SourceDist::Equal, 10);
        let cols = col_counts(TEN, &placed);
        assert_eq!(cols[0], 10);
    }

    #[test]
    fn left_diagonal_hits_anti_diagonal() {
        let placed = place(SourceDist::DiagLeft, 10);
        for row in 0..10 {
            assert!(
                placed.contains(&TEN.rank(row, 9 - row)),
                "anti-diagonal ({row},{})",
                9 - row
            );
        }
    }

    #[test]
    fn band_on_16x16_is_single_wide_diagonal() {
        // Paper §5.2: on 16x16 the band distribution is one diagonal band
        // of width s/16.
        let shape = MeshShape::new(16, 16);
        let placed = SourceDist::Band.place(shape, 64);
        // width 4 band: columns (row+w) mod 16 for w in 0..4
        for row in 0..16 {
            for w in 0..4 {
                assert!(placed.contains(&shape.rank(row, (row + w) % 16)));
            }
        }
    }

    #[test]
    fn square_block_fills_column_major() {
        let placed = place(SourceDist::SquareBlock, 9);
        // 3x3 block at origin, column by column.
        let expect: Vec<usize> = vec![0, 1, 2, 10, 11, 12, 20, 21, 22];
        let mut sorted = expect.clone();
        sorted.sort_unstable();
        assert_eq!(placed, sorted);
    }

    #[test]
    fn square_block_partial_fill() {
        let placed = place(SourceDist::SquareBlock, 7);
        // ceil(sqrt(7)) = 3: fill (0,0),(1,0),(2,0),(0,1),(1,1),(2,1),(0,2)
        // = ranks 0, 10, 20, 1, 11, 21, 2.
        let mut expect = vec![0, 10, 20, 1, 11, 21, 2];
        expect.sort_unstable();
        assert_eq!(placed, expect);
    }

    #[test]
    fn random_is_seeded() {
        let a = place(SourceDist::Random { seed: 5 }, 17);
        let b = place(SourceDist::Random { seed: 5 }, 17);
        let c = place(SourceDist::Random { seed: 6 }, 17);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic]
    fn zero_sources_rejected() {
        place(SourceDist::Row, 0);
    }

    #[test]
    #[should_panic]
    fn explicit_duplicates_rejected() {
        SourceDist::Explicit(vec![1, 1]).place(TEN, 2);
    }

    #[test]
    fn ascii_grid_shape() {
        let placed = place(SourceDist::Row, 10);
        let grid = ascii_grid(TEN, &placed);
        let lines: Vec<&str> = grid.lines().collect();
        assert_eq!(lines.len(), 10);
        assert_eq!(lines[0], "##########");
        assert_eq!(lines[1], "..........");
    }

    #[test]
    fn s_equals_p_covers_everything() {
        for d in SourceDist::paper_set() {
            let placed = d.place(TEN, 100);
            assert_eq!(placed, (0..100).collect::<Vec<_>>(), "{}", d.name());
        }
    }
}

//! Ideal source distributions (paper §3, §5.2).
//!
//! A repositioning algorithm needs, for its base algorithm and the given
//! machine, a *target* distribution on which that algorithm is fastest:
//!
//! * for `Br_Lin` the paper identifies the **left diagonal** `Dl(s)` as
//!   an ideal distribution ("least sensitive towards the size of the
//!   machine");
//! * for `Br_xy_source` it uses a **row distribution whose rows are
//!   positioned so that the number of new sources increases as fast as
//!   possible** — and notes the positions depend on the number of rows
//!   (e.g. rows {0,5} on a 10-row mesh pair with each other in the first
//!   `Br_Lin` iteration and stall, while rows {0,6} double).
//!
//! Rather than hard-coding positions per machine size, this module
//! implements the paper's stated objective directly: a greedy placement
//! that maximizes the growth of active processors under the actual
//! `Br_Lin` pairing schedule.

use mpp_model::MeshShape;

use crate::pattern::br_lin_schedule;

/// Growth score of an active-set on a line of `n` positions: the sum of
/// active-holder counts after every `Br_Lin` level (higher = faster
/// spread).
fn growth_score(n: usize, active: &[bool]) -> u64 {
    debug_assert_eq!(active.len(), n);
    let sched = br_lin_schedule(active);
    sched
        .holds
        .iter()
        .skip(1)
        .map(|h| h.iter().filter(|&&b| b).count() as u64)
        .sum()
}

/// Choose `k` positions on a line of `n` so that `Br_Lin` activates new
/// positions as fast as possible. Greedy by marginal growth score, ties
/// broken towards the smallest index; result is sorted.
pub fn ideal_line_positions(n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot place {k} actives on {n} positions");
    let mut active = vec![false; n];
    for _ in 0..k {
        let mut best: Option<(u64, usize)> = None;
        for pos in 0..n {
            if active[pos] {
                continue;
            }
            active[pos] = true;
            let score = growth_score(n, &active);
            active[pos] = false;
            if best.is_none_or(|(bs, bp)| score > bs || (score == bs && pos < bp)) {
                best = Some((score, pos));
            }
        }
        active[best.expect("k <= n guarantees a free position").1] = true;
    }
    (0..n).filter(|&i| active[i]).collect()
}

/// Ideal target distribution for `Br_xy_source` / `Br_xy_dim` on `shape`:
/// `⌈s/c⌉` ideally-positioned rows, all full except the last, whose
/// sources sit at ideally-spaced columns. Returns sorted row-major
/// positions.
pub fn ideal_rows(shape: MeshShape, s: usize) -> Vec<usize> {
    let (r, c) = (shape.rows, shape.cols);
    assert!(s >= 1 && s <= shape.p());
    let k = s.div_ceil(c);
    let rows = ideal_line_positions(r, k);
    let mut out = Vec::with_capacity(s);
    let full_rows = s / c; // rows that are completely filled
    let remainder = s % c;
    for (idx, &row) in rows.iter().enumerate() {
        if idx < full_rows {
            for col in 0..c {
                out.push(shape.rank(row, col));
            }
        } else if remainder > 0 {
            // Partial row: spread its sources ideally within the row.
            for col in ideal_line_positions(c, remainder) {
                out.push(shape.rank(row, col));
            }
        }
    }
    out.sort_unstable();
    debug_assert_eq!(out.len(), s);
    out
}

/// Ideal target distribution for `Br_Lin` on `shape`: the left diagonal
/// distribution `Dl(s)`.
pub fn ideal_left_diagonal(shape: MeshShape, s: usize) -> Vec<usize> {
    crate::distribution::SourceDist::DiagLeft.place(shape, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_two_rows_on_ten() {
        // 10 rows, 2 active: {0,5} stalls in iteration one, the ideal
        // placement must avoid that pairing (paper's {0,6} example).
        let pos = ideal_line_positions(10, 2);
        assert_eq!(pos.len(), 2);
        let mut has = vec![false; 10];
        for &p in &pos {
            has[p] = true;
        }
        let sched = br_lin_schedule(&has);
        let after_l0 = sched.holds[1].iter().filter(|&&b| b).count();
        assert_eq!(
            after_l0, 4,
            "ideal 2-of-10 placement must double in iteration one, got {pos:?}"
        );
    }

    #[test]
    fn ideal_positions_double_when_possible() {
        // With k actives on n = 2^m positions and k a power of two ≤ n,
        // the ideal placement should double actives every level until
        // saturation.
        let pos = ideal_line_positions(16, 2);
        let mut has = vec![false; 16];
        for &p in &pos {
            has[p] = true;
        }
        let sched = br_lin_schedule(&has);
        let counts: Vec<usize> = sched
            .holds
            .iter()
            .map(|h| h.iter().filter(|&&b| b).count())
            .collect();
        assert_eq!(counts, vec![2, 4, 8, 16, 16]);
    }

    #[test]
    fn k_equals_n_is_everything() {
        assert_eq!(ideal_line_positions(6, 6), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ideal_line_positions(1, 1), vec![0]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(ideal_line_positions(8, 0).is_empty());
    }

    #[test]
    fn ideal_rows_counts_and_structure() {
        let shape = MeshShape::new(10, 10);
        let target = ideal_rows(shape, 30);
        assert_eq!(target.len(), 30);
        let rows = crate::distribution::row_counts(shape, &target);
        let full = rows.iter().filter(|&&n| n == 10).count();
        assert_eq!(
            full, 3,
            "30 sources on 10 cols = 3 full rows, rows={rows:?}"
        );
    }

    #[test]
    fn ideal_rows_partial_row() {
        let shape = MeshShape::new(8, 8);
        let target = ideal_rows(shape, 20);
        assert_eq!(target.len(), 20);
        let rows = crate::distribution::row_counts(shape, &target);
        assert_eq!(rows.iter().filter(|&&n| n == 8).count(), 2);
        assert_eq!(rows.iter().filter(|&&n| n == 4).count(), 1);
    }

    #[test]
    fn ideal_left_diagonal_matches_dl() {
        let shape = MeshShape::new(10, 10);
        assert_eq!(
            ideal_left_diagonal(shape, 10),
            crate::distribution::SourceDist::DiagLeft.place(shape, 10)
        );
    }

    #[test]
    fn greedy_is_deterministic() {
        assert_eq!(ideal_line_positions(12, 5), ideal_line_positions(12, 5));
    }
}

//! # stp-core — s-to-p broadcasting on message-passing MPPs
//!
//! Reproduction of Hambrusch, Khokhar & Liu, *"Scalable S-to-P
//! Broadcasting on Message-Passing MPPs"* (ICPP 1996): in s-to-p
//! broadcasting, `s` of the `p` processors each hold a message that must
//! reach all `p` processors.
//!
//! The crate provides:
//!
//! * the seven broadcasting algorithms of the paper
//!   ([`algorithms`]): `2-Step`, `PersAlltoAll`, `Br_Lin`,
//!   `Br_xy_source`, `Br_xy_dim`, the repositioning wrappers `Repos_*`
//!   and the partitioning wrappers `Part_*`;
//! * the source-distribution families of §4 ([`distribution`]): row,
//!   column, equal, right/left diagonal, band, cross, square block;
//! * ideal-distribution generation for repositioning ([`ideal`]);
//! * the Figure-2 metrics (congestion, wait, #send/rec, av_msg_lgth,
//!   av_act_proc) over measured statistics ([`metrics`]);
//! * a single-call experiment runner with built-in result verification
//!   ([`runner`]).
//!
//! ## Quick example
//!
//! ```
//! use mpp_model::Machine;
//! use stp_core::prelude::*;
//!
//! // 4x4 "Paragon", 5 sources on a right diagonal, 1 KiB messages.
//! let machine = Machine::paragon(4, 4);
//! let exp = Experiment {
//!     machine: &machine,
//!     dist: SourceDist::DiagRight,
//!     s: 5,
//!     msg_len: 1024,
//!     kind: AlgoKind::BrLin,
//! };
//! let outcome = exp.run().expect("simulation failed");
//! assert!(outcome.verified);
//! println!("Br_Lin took {:.3} ms", outcome.makespan_ms());
//! ```

pub mod algorithms;
pub mod analysis;
pub mod announce;
pub mod checkpoint;
pub mod distribution;
pub mod ideal;
pub mod metrics;
pub mod msgset;
pub mod pattern;
pub mod predict;
pub mod quality;
pub mod runner;
pub mod select;
pub mod serve;
pub mod supervise;

/// Convenient glob import for applications and benches.
pub mod prelude {
    pub use crate::algorithms::{
        BrLin, BrXyDim, BrXySource, Part, PersAlltoAll, Repos, StpAlgorithm, StpCtx, TwoStep,
    };
    pub use crate::announce::announce_and_broadcast;
    pub use crate::distribution::SourceDist;
    pub use crate::metrics::Figure2Row;
    pub use crate::msgset::{payload_for, MessageSet};
    pub use crate::predict::{estimate_ms, estimate_ns};
    pub use crate::quality::placement_quality;
    pub use crate::runner::{AlgoKind, Experiment, Outcome, RunControl, SweepRunner};
    pub use crate::select::recommend;
    pub use crate::supervise::{PointStatus, SuperviseOpts};
}

//! The paper's Figure-2 parameters, computed from measured statistics.
//!
//! Figure 2 contrasts three *algorithm-dependent* parameters
//! (congestion, wait, #send/rec) and two *distribution-dependent* ones
//! (av_msg_lgth, av_act_proc) for 2-Step, PersAlltoAll and Br_Lin on the
//! equal distribution. Here they are derived from the per-rank,
//! per-iteration [`CommStats`] any run produces, so the table can be
//! regenerated for every algorithm/distribution pair.

use mpp_runtime::CommStats;

/// One row of the Figure-2 style table.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure2Row {
    /// Algorithm (and variant) label.
    pub algorithm: String,
    /// Maximum sends+receives any processor handled in one iteration.
    pub congestion: u64,
    /// Maximum number of blocked receives on any processor.
    pub wait: u64,
    /// Maximum total send+receive operations on any processor.
    pub send_rec: u64,
    /// Maximum over processors of the average message length (bytes) per
    /// active iteration.
    pub av_msg_lgth: f64,
    /// Average number of processors communicating per iteration.
    pub av_act_proc: f64,
}

/// Compute the Figure-2 row for one run.
pub fn figure2_row(algorithm: impl Into<String>, stats: &[CommStats]) -> Figure2Row {
    let congestion = stats.iter().map(CommStats::congestion).max().unwrap_or(0);
    let wait = stats.iter().map(CommStats::total_waits).max().unwrap_or(0);
    let send_rec = stats.iter().map(CommStats::total_ops).max().unwrap_or(0);
    let av_msg_lgth = stats.iter().map(|s| s.avg_msg_len()).fold(0.0f64, f64::max);

    // Per-iteration activity across ranks: iteration k is "active" on a
    // rank if the rank sent or received in its k-th bucket.
    let iters = stats.iter().map(|s| s.iters.len()).max().unwrap_or(0);
    let mut total_active = 0u64;
    let mut counted_iters = 0u64;
    for k in 0..iters {
        let active = stats
            .iter()
            .filter(|s| s.iters.get(k).is_some_and(|i| i.active()))
            .count() as u64;
        if active > 0 {
            total_active += active;
            counted_iters += 1;
        }
    }
    let av_act_proc = if counted_iters == 0 {
        0.0
    } else {
        total_active as f64 / counted_iters as f64
    };

    Figure2Row {
        algorithm: algorithm.into(),
        congestion,
        wait,
        send_rec,
        av_msg_lgth,
        av_act_proc,
    }
}

/// Format a slice of rows as an aligned ASCII table (used by the
/// `repro-fig02` binary and examples).
pub fn format_table(rows: &[Figure2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>6} {:>9} {:>12} {:>12}\n",
        "algorithm", "congestion", "wait", "#send/rec", "av_msg_lgth", "av_act_proc"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>10} {:>6} {:>9} {:>12.1} {:>12.1}\n",
            r.algorithm, r.congestion, r.wait, r.send_rec, r.av_msg_lgth, r.av_act_proc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_runtime::CommStats;

    fn stats_with(ops: &[(u64, u64)]) -> CommStats {
        // ops[k] = (sends, recvs) in iteration k
        let mut s = CommStats::new();
        for (k, &(snd, rcv)) in ops.iter().enumerate() {
            for _ in 0..snd {
                s.record_send(100);
            }
            for _ in 0..rcv {
                s.record_recv(100, 0);
            }
            if k + 1 < ops.len() {
                s.next_iteration();
            }
        }
        s
    }

    #[test]
    fn congestion_and_ops_are_maxima() {
        let a = stats_with(&[(1, 1), (3, 0)]);
        let b = stats_with(&[(0, 0), (1, 1)]);
        let row = figure2_row("x", &[a, b]);
        assert_eq!(row.congestion, 3);
        assert_eq!(row.send_rec, 5);
    }

    #[test]
    fn active_processors_averaged_over_busy_iterations() {
        let a = stats_with(&[(1, 0), (1, 0)]);
        let b = stats_with(&[(1, 0), (0, 0)]);
        let row = figure2_row("x", &[a, b]);
        // iteration 0: both active; iteration 1: one active -> avg 1.5
        assert!((row.av_act_proc - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_zero_row() {
        let row = figure2_row("idle", &[CommStats::new(), CommStats::new()]);
        assert_eq!(row.congestion, 0);
        assert_eq!(row.av_act_proc, 0.0);
    }

    #[test]
    fn table_formats_all_rows() {
        let rows = vec![
            figure2_row("A", &[stats_with(&[(1, 1)])]),
            figure2_row("B", &[stats_with(&[(2, 2)])]),
        ];
        let t = format_table(&rows);
        assert!(t.contains("A"));
        assert!(t.contains("B"));
        assert_eq!(t.lines().count(), 3);
    }
}

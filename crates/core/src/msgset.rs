//! Combined broadcast messages.
//!
//! The merge-based algorithms of the paper combine messages whenever
//! messages from different sources meet at a processor: "subsequent steps
//! proceed with fewer messages having larger size". A [`MessageSet`] is
//! that combined object — a set of `(source rank, payload)` pairs with a
//! compact wire format, so the simulator charges realistic sizes
//! (payloads + per-entry headers) for combined messages.
//!
//! Wire format (little-endian):
//!
//! ```text
//! u32 count | count × (u32 src, u32 len) | payloads back-to-back
//! ```

/// A set of broadcast messages keyed by source rank (sorted, unique).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageSet {
    entries: Vec<(u32, Vec<u8>)>,
}

impl MessageSet {
    /// The empty set.
    pub fn new() -> Self {
        MessageSet { entries: Vec::new() }
    }

    /// A set holding a single source's payload.
    pub fn single(src: usize, payload: &[u8]) -> Self {
        MessageSet { entries: vec![(src as u32, payload.to_vec())] }
    }

    /// Number of distinct sources held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no messages are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Source ranks held, ascending.
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(s, _)| s as usize)
    }

    /// Payload of a given source, if held.
    pub fn get(&self, src: usize) -> Option<&[u8]> {
        self.entries
            .binary_search_by_key(&(src as u32), |&(s, _)| s)
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Total payload bytes (excluding headers).
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|(_, d)| d.len()).sum()
    }

    /// Bytes of the wire encoding.
    pub fn wire_bytes(&self) -> usize {
        4 + self.entries.len() * 8 + self.payload_bytes()
    }

    /// Merge another set into this one. Sources already present keep
    /// their existing payload (in s-to-p broadcasting duplicate arrivals
    /// always carry identical payloads). Returns the number of *new*
    /// payload bytes absorbed.
    pub fn merge(&mut self, other: MessageSet) -> usize {
        let mut absorbed = 0;
        for (src, data) in other.entries {
            match self.entries.binary_search_by_key(&src, |&(s, _)| s) {
                Ok(_) => {}
                Err(pos) => {
                    absorbed += data.len();
                    self.entries.insert(pos, (src, data));
                }
            }
        }
        absorbed
    }

    /// Insert one source's payload (no-op if present). Keeps ordering.
    pub fn insert(&mut self, src: usize, payload: &[u8]) {
        if let Err(pos) = self.entries.binary_search_by_key(&(src as u32), |&(s, _)| s) {
            self.entries.insert(pos, (src as u32, payload.to_vec()));
        }
    }

    /// Serialize to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (src, data) in &self.entries {
            out.extend_from_slice(&src.to_le_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        }
        for (_, data) in &self.entries {
            out.extend_from_slice(data);
        }
        out
    }

    /// Parse the wire format. Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let count = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let header_end = 4usize.checked_add(count.checked_mul(8)?)?;
        if bytes.len() < header_end {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        let mut offset = header_end;
        for i in 0..count {
            let at = 4 + i * 8;
            let src = u32::from_le_bytes(bytes[at..at + 4].try_into().ok()?);
            let len = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().ok()?) as usize;
            let end = offset.checked_add(len)?;
            if bytes.len() < end {
                return None;
            }
            entries.push((src, bytes[offset..end].to_vec()));
            offset = end;
        }
        if offset != bytes.len() {
            return None;
        }
        // Enforce the invariant: sorted, unique.
        for w in entries.windows(2) {
            if w[0].0 >= w[1].0 {
                return None;
            }
        }
        Some(MessageSet { entries })
    }

    /// Consume into the sorted `(src, payload)` list.
    pub fn into_entries(self) -> Vec<(u32, Vec<u8>)> {
        self.entries
    }
}

/// The deterministic test payload used throughout the experiments for
/// source `src` with message length `len`: every byte depends on the
/// source and its offset, so misrouted or truncated messages are caught.
pub fn payload_for(src: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| (src.wrapping_mul(31).wrapping_add(i) & 0xFF) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_wire_format() {
        let mut s = MessageSet::new();
        s.insert(3, b"ccc");
        s.insert(1, b"a");
        s.insert(7, b"");
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.wire_bytes());
        let back = MessageSet::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_roundtrip() {
        let s = MessageSet::new();
        let back = MessageSet::from_bytes(&s.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn merge_unions_and_counts_new_bytes() {
        let mut a = MessageSet::single(1, b"one");
        let b = {
            let mut b = MessageSet::single(2, b"two");
            b.insert(1, b"one");
            b
        };
        let absorbed = a.merge(b);
        assert_eq!(absorbed, 3); // only "two" is new
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1), Some(&b"one"[..]));
        assert_eq!(a.get(2), Some(&b"two"[..]));
    }

    #[test]
    fn entries_stay_sorted() {
        let mut s = MessageSet::new();
        for src in [9usize, 2, 5, 0, 7] {
            s.insert(src, &[src as u8]);
        }
        let srcs: Vec<_> = s.sources().collect();
        assert_eq!(srcs, vec![0, 2, 5, 7, 9]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(MessageSet::from_bytes(&[]).is_none());
        assert!(MessageSet::from_bytes(&[1, 0, 0, 0]).is_none()); // count=1, no header
        // trailing garbage
        let mut ok = MessageSet::single(1, b"x").to_bytes();
        ok.push(0);
        assert!(MessageSet::from_bytes(&ok).is_none());
        // unsorted entries
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        for src in [5u32, 3] {
            bad.extend_from_slice(&src.to_le_bytes());
            bad.extend_from_slice(&0u32.to_le_bytes());
        }
        assert!(MessageSet::from_bytes(&bad).is_none());
    }

    #[test]
    fn wire_bytes_accounts_for_headers() {
        let mut s = MessageSet::new();
        s.insert(0, &[0u8; 100]);
        s.insert(1, &[0u8; 50]);
        assert_eq!(s.wire_bytes(), 4 + 2 * 8 + 150);
    }

    #[test]
    fn payload_for_is_deterministic_and_distinct() {
        assert_eq!(payload_for(3, 16), payload_for(3, 16));
        assert_ne!(payload_for(3, 16), payload_for(4, 16));
        assert_eq!(payload_for(5, 0).len(), 0);
    }
}

//! Combined broadcast messages.
//!
//! The merge-based algorithms of the paper combine messages whenever
//! messages from different sources meet at a processor: "subsequent steps
//! proceed with fewer messages having larger size". A [`MessageSet`] is
//! that combined object — a set of `(source rank, payload)` pairs with a
//! compact wire format, so the simulator charges realistic sizes
//! (payloads + per-entry headers) for combined messages.
//!
//! Payloads are stored as shared-ownership [`Payload`] ropes, so
//! combining `k` sets ([`MessageSet::merge`]) and re-encoding the union
//! for the next hop ([`MessageSet::to_payload`]) move pointers, not
//! bytes: the only memcpy in an encode is the fresh `4 + 8·n`-byte
//! header. (The *virtual-time* cost of combining is still charged
//! explicitly by the algorithms through `charge_memcpy`, exactly as
//! before — the rope only removes the *host-side* copy tax.)
//!
//! Wire format (little-endian):
//!
//! ```text
//! u32 count | count × (u32 src, u32 len) | payloads back-to-back
//! ```

use mpp_sim::Payload;

/// A set of broadcast messages keyed by source rank (sorted, unique).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageSet {
    entries: Vec<(u32, Payload)>,
}

impl MessageSet {
    /// The empty set.
    pub fn new() -> Self {
        MessageSet {
            entries: Vec::new(),
        }
    }

    /// A set holding a single source's payload (copies the slice once).
    pub fn single(src: usize, payload: &[u8]) -> Self {
        MessageSet {
            entries: vec![(src as u32, Payload::from_slice(payload))],
        }
    }

    /// A set holding a single source's already-shared payload (no copy).
    pub fn single_payload(src: usize, payload: Payload) -> Self {
        MessageSet {
            entries: vec![(src as u32, payload)],
        }
    }

    /// Number of distinct sources held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no messages are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Source ranks held, ascending.
    pub fn sources(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().map(|&(s, _)| s as usize)
    }

    /// Payload of a given source, if held.
    pub fn get(&self, src: usize) -> Option<&Payload> {
        self.entries
            .binary_search_by_key(&(src as u32), |&(s, _)| s)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Total payload bytes (excluding headers).
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|(_, d)| d.len()).sum()
    }

    /// Bytes of the wire encoding.
    pub fn wire_bytes(&self) -> usize {
        4 + self.entries.len() * 8 + self.payload_bytes()
    }

    /// Merge another set into this one. Sources already present keep
    /// their existing payload (in s-to-p broadcasting duplicate arrivals
    /// always carry identical payloads). Returns the number of *new*
    /// payload bytes absorbed. Moves ropes — no byte copies.
    pub fn merge(&mut self, other: MessageSet) -> usize {
        if other.entries.is_empty() {
            return 0;
        }
        if self.entries.is_empty() {
            let absorbed = other.entries.iter().map(|(_, d)| d.len()).sum();
            self.entries = other.entries;
            return absorbed;
        }
        // Both sorted: a single merge walk instead of per-entry
        // binary-search inserts (each of which shifts the tail).
        let mut absorbed = 0;
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut a = std::mem::take(&mut self.entries).into_iter().peekable();
        let mut b = other.entries.into_iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&(sa, _)), Some(&(sb, _))) => {
                    if sa < sb {
                        merged.push(a.next().unwrap());
                    } else if sb < sa {
                        let e = b.next().unwrap();
                        absorbed += e.1.len();
                        merged.push(e);
                    } else {
                        // Duplicate source: keep the existing payload.
                        merged.push(a.next().unwrap());
                        b.next();
                    }
                }
                (Some(_), None) => merged.push(a.next().unwrap()),
                (None, Some(_)) => {
                    let e = b.next().unwrap();
                    absorbed += e.1.len();
                    merged.push(e);
                }
                (None, None) => break,
            }
        }
        self.entries = merged;
        absorbed
    }

    /// Insert one source's payload (no-op if present). Keeps ordering.
    /// Copies the slice once; see [`insert_payload`](Self::insert_payload)
    /// for the zero-copy variant.
    pub fn insert(&mut self, src: usize, payload: &[u8]) {
        if self
            .entries
            .binary_search_by_key(&(src as u32), |&(s, _)| s)
            .is_err()
        {
            self.insert_payload(src, Payload::from_slice(payload));
        }
    }

    /// Insert one source's already-shared payload (no-op if present,
    /// no byte copies). Keeps ordering.
    pub fn insert_payload(&mut self, src: usize, payload: Payload) {
        if let Err(pos) = self
            .entries
            .binary_search_by_key(&(src as u32), |&(s, _)| s)
        {
            self.entries.insert(pos, (src as u32, payload));
        }
    }

    /// Serialize to the wire format as an owned, contiguous buffer
    /// (copies every payload byte). Kept for wire-format tests and
    /// external interop; the algorithms use [`to_payload`](Self::to_payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_bytes());
        out.extend_from_slice(&self.header_bytes());
        for (_, data) in &self.entries {
            for chunk in data.chunks() {
                out.extend_from_slice(chunk);
            }
        }
        out
    }

    /// Serialize to the wire format as a zero-copy rope: one fresh
    /// `4 + 8·n` byte header allocation plus O(total segments) pointer
    /// pushes. Combining `k` messages and re-sending therefore costs
    /// O(k), not O(total payload bytes).
    pub fn to_payload(&self) -> Payload {
        let mut out = Payload::from_vec(self.header_bytes());
        for (_, data) in &self.entries {
            out.push_payload(data);
        }
        out
    }

    fn header_bytes(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(4 + self.entries.len() * 8);
        header.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (src, data) in &self.entries {
            header.extend_from_slice(&src.to_le_bytes());
            header.extend_from_slice(&(data.len() as u32).to_le_bytes());
        }
        header
    }

    /// Parse the wire format from a contiguous buffer. Returns `None`
    /// on malformed input. The input is copied once into shared storage;
    /// entry payloads then reference it without further copies.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Self::from_payload(&Payload::from_slice(bytes))
    }

    /// Parse the wire format from a rope without copying any payload
    /// bytes: only the `4 + 8·n` header bytes are read out; each entry
    /// payload is a zero-copy slice of `wire`. Returns `None` on
    /// malformed input.
    pub fn from_payload(wire: &Payload) -> Option<Self> {
        let mut r = wire.reader();
        let count = r.read_u32_le()? as usize;
        let mut lens = Vec::with_capacity(count);
        let mut last_src: Option<u32> = None;
        for _ in 0..count {
            let src = r.read_u32_le()?;
            let len = r.read_u32_le()? as usize;
            // Enforce the invariant: sorted, unique.
            if last_src.is_some_and(|prev| prev >= src) {
                return None;
            }
            last_src = Some(src);
            lens.push((src, len));
        }
        let mut entries = Vec::with_capacity(count);
        for (src, len) in lens {
            entries.push((src, r.take_payload(len)?));
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(MessageSet { entries })
    }

    /// Consume into the sorted `(src, payload)` list.
    pub fn into_entries(self) -> Vec<(u32, Payload)> {
        self.entries
    }
}

/// The deterministic test payload used throughout the experiments for
/// source `src` with message length `len`: every byte depends on the
/// source and its offset, so misrouted or truncated messages are caught.
pub fn payload_for(src: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (src.wrapping_mul(31).wrapping_add(i) & 0xFF) as u8)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_wire_format() {
        let mut s = MessageSet::new();
        s.insert(3, b"ccc");
        s.insert(1, b"a");
        s.insert(7, b"");
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), s.wire_bytes());
        let back = MessageSet::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rope_roundtrip_matches_flat() {
        let mut s = MessageSet::new();
        s.insert(3, b"ccc");
        s.insert(1, b"a");
        s.insert(7, b"");
        let rope = s.to_payload();
        assert_eq!(rope.len(), s.wire_bytes());
        assert_eq!(rope.to_vec(), s.to_bytes());
        let back = MessageSet::from_payload(&rope).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rope_encode_copies_only_the_header() {
        let mut s = MessageSet::new();
        for src in 0..16usize {
            s.insert(src, &payload_for(src, 1024));
        }
        let before = mpp_sim::copy_metrics();
        let rope = s.to_payload();
        let parsed = MessageSet::from_payload(&rope).unwrap();
        let delta = mpp_sim::copy_metrics().since(&before);
        assert_eq!(parsed, s);
        // Encode copies the 4+8·16 header; parse copies the same header
        // back out through the reader. Payload bytes (16 KiB) never move.
        assert!(
            delta.bytes_copied < 2 * (4 + 16 * 8) as u64 + 64,
            "encode+parse copied {} bytes",
            delta.bytes_copied
        );
    }

    #[test]
    fn empty_roundtrip() {
        let s = MessageSet::new();
        let back = MessageSet::from_bytes(&s.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn merge_unions_and_counts_new_bytes() {
        let mut a = MessageSet::single(1, b"one");
        let b = {
            let mut b = MessageSet::single(2, b"two");
            b.insert(1, b"one");
            b
        };
        let absorbed = a.merge(b);
        assert_eq!(absorbed, 3); // only "two" is new
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(1).unwrap(), b"one");
        assert_eq!(a.get(2).unwrap(), b"two");
    }

    #[test]
    fn entries_stay_sorted() {
        let mut s = MessageSet::new();
        for src in [9usize, 2, 5, 0, 7] {
            s.insert(src, &[src as u8]);
        }
        let srcs: Vec<_> = s.sources().collect();
        assert_eq!(srcs, vec![0, 2, 5, 7, 9]);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(MessageSet::from_bytes(&[]).is_none());
        assert!(MessageSet::from_bytes(&[1, 0, 0, 0]).is_none()); // count=1, no header
                                                                  // trailing garbage
        let mut ok = MessageSet::single(1, b"x").to_bytes();
        ok.push(0);
        assert!(MessageSet::from_bytes(&ok).is_none());
        // unsorted entries
        let mut bad = Vec::new();
        bad.extend_from_slice(&2u32.to_le_bytes());
        for src in [5u32, 3] {
            bad.extend_from_slice(&src.to_le_bytes());
            bad.extend_from_slice(&0u32.to_le_bytes());
        }
        assert!(MessageSet::from_bytes(&bad).is_none());
    }

    #[test]
    fn wire_bytes_accounts_for_headers() {
        let mut s = MessageSet::new();
        s.insert(0, &[0u8; 100]);
        s.insert(1, &[0u8; 50]);
        assert_eq!(s.wire_bytes(), 4 + 2 * 8 + 150);
    }

    #[test]
    fn payload_for_is_deterministic_and_distinct() {
        assert_eq!(payload_for(3, 16), payload_for(3, 16));
        assert_ne!(payload_for(3, 16), payload_for(4, 16));
        assert_eq!(payload_for(5, 0).len(), 0);
    }
}

//! The `Br_Lin` recursive pairing pattern, as pure data.
//!
//! `Br_Lin` views the processors as a linear array: in the first iteration
//! position `i` pairs with `i + ⌈n/2⌉`; the algorithm then recurses on the
//! two halves, for `⌈log₂ n⌉` iterations total. Whenever a pair meets:
//!
//! * both hold messages → they exchange and combine,
//! * one holds messages → a one-way send,
//! * neither holds anything → no communication at all.
//!
//! Because every processor knows the source positions, the entire
//! schedule is a *pure function* of the initial has-flags. Computing it
//! up front (this module) lets the runtime algorithm, the analytic
//! metrics, and the tests all share one definition.
//!
//! # Odd segments
//!
//! The paper describes the pattern for `p = 2^k`. For an odd-length
//! segment `[lo, hi)` we split at `mid = lo + ⌈len/2⌉` and pair
//! `A[i] ↔ B[i]`; the unpaired last element of the first half
//! additionally pairs with the last element of the second half, which is
//! the minimal extra exchange that keeps both halves' unions complete
//! (otherwise the second half could permanently miss the unpaired
//! element's messages). This costs one extra send/receive at a few
//! positions only in non-power-of-two machines — consistent with the
//! paper's observation that odd dimensions *change* which distributions
//! are good.

/// One communication a position performs in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerOp {
    /// Position (index into the linear order) of the partner.
    pub peer: usize,
    /// Whether this position sends its current set to the partner.
    pub send: bool,
    /// Whether this position receives the partner's set.
    pub recv: bool,
}

/// The full `Br_Lin` schedule for an initial has-flag vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrLinSchedule {
    /// `ops[level][pos]` — the operations of `pos` in iteration `level`.
    pub ops: Vec<Vec<Vec<PeerOp>>>,
    /// `holds[level][pos]` — whether `pos` holds any messages *before*
    /// iteration `level`; `holds[levels]` is the final state.
    pub holds: Vec<Vec<bool>>,
}

impl BrLinSchedule {
    /// Number of iterations (`⌈log₂ n⌉`).
    pub fn levels(&self) -> usize {
        self.ops.len()
    }

    /// Positions that communicate in a given level.
    pub fn active_positions(&self, level: usize) -> usize {
        self.ops[level].iter().filter(|v| !v.is_empty()).count()
    }
}

/// Compute the `Br_Lin` schedule for `has` initial message flags.
///
/// Positions correspond to indices of the caller's linear processor
/// order. If no position holds a message the schedule has the right
/// number of levels but no operations.
///
/// ```
/// use stp_core::pattern::br_lin_schedule;
/// // One source at position 0 of 8: ceil(log2 8) = 3 iterations,
/// // holders double every level.
/// let mut has = vec![false; 8];
/// has[0] = true;
/// let sched = br_lin_schedule(&has);
/// assert_eq!(sched.levels(), 3);
/// let holders: Vec<usize> = sched.holds.iter()
///     .map(|h| h.iter().filter(|&&b| b).count()).collect();
/// assert_eq!(holders, vec![1, 2, 4, 8]);
/// ```
pub fn br_lin_schedule(has: &[bool]) -> BrLinSchedule {
    let n = has.len();
    let mut holds = vec![has.to_vec()];
    let mut ops = Vec::new();
    if n == 0 {
        return BrLinSchedule { ops, holds };
    }

    let mut segments: Vec<(usize, usize)> = vec![(0, n)];
    let mut cur = has.to_vec();
    while segments.iter().any(|&(lo, hi)| hi - lo > 1) {
        let mut level_ops: Vec<Vec<PeerOp>> = vec![Vec::new(); n];
        let mut next_has = cur.clone();
        let mut next_segments = Vec::with_capacity(segments.len() * 2);

        for &(lo, hi) in &segments {
            let len = hi - lo;
            if len <= 1 {
                next_segments.push((lo, hi));
                continue;
            }
            let mid = lo + len.div_ceil(2);
            let b_len = hi - mid;
            let pair =
                |x: usize, y: usize, level_ops: &mut Vec<Vec<PeerOp>>, next_has: &mut Vec<bool>| {
                    match (cur[x], cur[y]) {
                        (true, true) => {
                            level_ops[x].push(PeerOp {
                                peer: y,
                                send: true,
                                recv: true,
                            });
                            level_ops[y].push(PeerOp {
                                peer: x,
                                send: true,
                                recv: true,
                            });
                        }
                        (true, false) => {
                            level_ops[x].push(PeerOp {
                                peer: y,
                                send: true,
                                recv: false,
                            });
                            level_ops[y].push(PeerOp {
                                peer: x,
                                send: false,
                                recv: true,
                            });
                            next_has[y] = true;
                        }
                        (false, true) => {
                            level_ops[x].push(PeerOp {
                                peer: y,
                                send: false,
                                recv: true,
                            });
                            level_ops[y].push(PeerOp {
                                peer: x,
                                send: true,
                                recv: false,
                            });
                            next_has[x] = true;
                        }
                        (false, false) => {}
                    }
                };
            for i in 0..b_len {
                pair(lo + i, mid + i, &mut level_ops, &mut next_has);
            }
            if len % 2 == 1 {
                // Unpaired last element of the first half also pairs with
                // the last element of the second half (see module docs).
                pair(mid - 1, hi - 1, &mut level_ops, &mut next_has);
            }
            next_segments.push((lo, mid));
            next_segments.push((mid, hi));
        }

        ops.push(level_ops);
        cur = next_has;
        holds.push(cur.clone());
        segments = next_segments;
    }

    BrLinSchedule { ops, holds }
}

/// [`br_lin_schedule`] behind a process-wide memo table, shared by all
/// ranks of a run.
///
/// The schedule is a pure function of `has`, and the paper's model says
/// every processor knows the source positions up front — so all `p`
/// ranks of one experiment compute byte-identical schedules. Computing
/// it once and handing out `Arc`s turns an O(p · n log n) per-run cost
/// (with ~n·log n small allocations *per rank*) into a single lookup.
/// Hot-path profile: on a 256-rank run this was the single largest
/// host-side cost of `Br_Lin`.
///
/// The table is keyed by the packed has-bits (plus length), bounded, and
/// safe to share across sweep workers and rank threads: entries are
/// immutable once inserted and identical regardless of who computes them,
/// so caching cannot perturb simulated time or determinism.
pub fn br_lin_schedule_shared(has: &[bool]) -> std::sync::Arc<BrLinSchedule> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};

    type Cache = Mutex<HashMap<Box<[u8]>, Arc<BrLinSchedule>>>;

    /// Bound on cached distinct distributions (a sweep touches a few
    /// dozen; clearing on overflow keeps pathological grids bounded).
    const CACHE_MAX: usize = 256;
    static CACHE: OnceLock<Cache> = OnceLock::new();

    let mut key = vec![0u8; 8 + has.len().div_ceil(8)];
    key[..8].copy_from_slice(&(has.len() as u64).to_le_bytes());
    for (i, &h) in has.iter().enumerate() {
        if h {
            key[8 + i / 8] |= 1 << (i % 8);
        }
    }
    let cache = CACHE.get_or_init(Default::default);
    let mut table = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sched) = table.get(key.as_slice()) {
        return Arc::clone(sched);
    }
    // Compute under the lock: in threaded runs every rank arrives at
    // once, and one computation plus p-1 waits beats p computations.
    let sched = Arc::new(br_lin_schedule(has));
    if table.len() >= CACHE_MAX {
        table.clear();
    }
    table.insert(key.into_boxed_slice(), Arc::clone(&sched));
    sched
}

/// Render the holder evolution of a schedule as text: one row per
/// iteration, `#` = holds messages, `.` = empty. Used in docs and the
/// `stp` CLI to explain why a placement is slow.
///
/// ```
/// use stp_core::pattern::render_holdings;
/// let mut has = vec![false; 8];
/// has[0] = true;
/// let text = render_holdings(&has);
/// assert_eq!(text.lines().count(), 4); // initial + 3 iterations
/// assert!(text.ends_with("########\n"));
/// ```
pub fn render_holdings(has: &[bool]) -> String {
    let sched = br_lin_schedule(has);
    let mut out = String::new();
    for row in &sched.holds {
        for &h in row {
            out.push(if h { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Simulate which *source positions'* messages each position holds after
/// the whole schedule — used by tests to prove full coverage.
pub fn simulate_coverage(has: &[bool]) -> Vec<std::collections::BTreeSet<usize>> {
    use std::collections::BTreeSet;
    let n = has.len();
    let mut sets: Vec<BTreeSet<usize>> = (0..n)
        .map(|i| {
            if has[i] {
                BTreeSet::from([i])
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    let sched = br_lin_schedule(has);
    for level in &sched.ops {
        // Simultaneous semantics: sends use the pre-level snapshot.
        let snapshot = sets.clone();
        for (pos, ops) in level.iter().enumerate() {
            for op in ops {
                if op.recv {
                    let incoming = snapshot[op.peer].clone();
                    sets[pos].extend(incoming);
                }
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn full_set(has: &[bool]) -> BTreeSet<usize> {
        has.iter()
            .enumerate()
            .filter(|(_, &h)| h)
            .map(|(i, _)| i)
            .collect()
    }

    fn assert_full_coverage(has: &[bool]) {
        let want = full_set(has);
        if want.is_empty() {
            return;
        }
        for (pos, got) in simulate_coverage(has).iter().enumerate() {
            assert_eq!(
                got, &want,
                "position {pos} missing messages for has={has:?}"
            );
        }
    }

    #[test]
    fn power_of_two_single_source() {
        for n in [2usize, 4, 8, 16, 32] {
            for src in 0..n {
                let mut has = vec![false; n];
                has[src] = true;
                assert_full_coverage(&has);
            }
        }
    }

    #[test]
    fn odd_sizes_single_source() {
        for n in [3usize, 5, 7, 9, 10, 11, 13, 100, 120] {
            for src in [0, n / 2, n - 1] {
                let mut has = vec![false; n];
                has[src] = true;
                assert_full_coverage(&has);
            }
        }
    }

    #[test]
    fn exhaustive_small_sizes_all_subsets() {
        for n in 1..=9usize {
            for mask in 1u32..(1 << n) {
                let has: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
                assert_full_coverage(&has);
            }
        }
    }

    #[test]
    fn level_count_is_ceil_log2() {
        for (n, want) in [
            (1usize, 0usize),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (100, 7),
            (256, 8),
        ] {
            let has = vec![true; n];
            assert_eq!(br_lin_schedule(&has).levels(), want, "n={n}");
        }
    }

    #[test]
    fn all_sources_always_exchange_pairwise() {
        // With every position a source, each level is pure pairwise
        // exchange; in even-power sizes everyone does exactly one
        // exchange per level.
        let has = vec![true; 16];
        let sched = br_lin_schedule(&has);
        for level in &sched.ops {
            for ops in level {
                assert_eq!(ops.len(), 1);
                assert!(ops[0].send && ops[0].recv);
            }
        }
    }

    #[test]
    fn empty_partner_means_one_way() {
        // sources = {0}: level 0 must be a single one-way send 0 -> mid.
        let mut has = vec![false; 8];
        has[0] = true;
        let sched = br_lin_schedule(&has);
        let l0: Vec<(usize, &Vec<PeerOp>)> = sched.ops[0]
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect();
        assert_eq!(l0.len(), 2);
        assert_eq!(l0[0].0, 0);
        assert_eq!(l0[1].0, 4);
        assert!(l0[0].1[0].send && !l0[0].1[0].recv);
        assert!(!l0[1].1[0].send && l0[1].1[0].recv);
    }

    #[test]
    fn holdings_grow_monotonically() {
        let mut has = vec![false; 12];
        has[3] = true;
        has[9] = true;
        let sched = br_lin_schedule(&has);
        for w in sched.holds.windows(2) {
            for (before, after) in w[0].iter().zip(&w[1]) {
                assert!(!before || *after, "a holder lost its messages");
            }
        }
        assert!(sched.holds.last().unwrap().iter().all(|&h| h));
    }

    #[test]
    fn no_sources_no_ops() {
        let sched = br_lin_schedule(&[false; 8]);
        for level in &sched.ops {
            assert!(level.iter().all(|v| v.is_empty()));
        }
    }

    #[test]
    fn paper_column_distribution_stalls_on_regular_sizes() {
        // The paper: when sources are the first and the sixth row of a
        // 10-high column (positions 0 and 5), the first iteration pairs
        // them with each other and introduces no new holder.
        let mut has = vec![false; 10];
        has[0] = true;
        has[5] = true;
        let sched = br_lin_schedule(&has);
        let new_after_l0 = sched.holds[1].iter().filter(|&&h| h).count();
        assert_eq!(new_after_l0, 2, "0 and 5 pair with each other: no growth");

        // Positions 0 and 6 instead: both spread in iteration one.
        let mut has2 = vec![false; 10];
        has2[0] = true;
        has2[6] = true;
        let sched2 = br_lin_schedule(&has2);
        let new_after_l0_2 = sched2.holds[1].iter().filter(|&&h| h).count();
        assert_eq!(new_after_l0_2, 4, "0 and 6 both activate a partner");
    }

    #[test]
    fn render_holdings_shows_growth() {
        let mut has = vec![false; 8];
        has[0] = true;
        let text = render_holdings(&has);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows[0], "#.......");
        assert_eq!(rows[3], "########");
        // monotone growth
        for w in rows.windows(2) {
            let a = w[0].matches('#').count();
            let b = w[1].matches('#').count();
            assert!(b >= a);
        }
    }

    #[test]
    fn congestion_at_most_two_ops_per_level() {
        // The odd-segment extra pair adds at most one extra op.
        for n in [5usize, 9, 10, 11, 15, 100, 120] {
            let has = vec![true; n];
            let sched = br_lin_schedule(&has);
            for level in &sched.ops {
                for ops in level {
                    assert!(ops.len() <= 2, "n={n}: {} ops in one level", ops.len());
                }
            }
        }
    }
}

//! Analytic cost prediction — the paper's Figure-2 style analysis as
//! executable closed forms.
//!
//! For each algorithm an α–β–γ estimate of the broadcast time is
//! derived from the same machine parameters the simulator uses,
//! *ignoring network contention and skew* (which only the simulator
//! captures). The predictions serve three purposes:
//!
//! * they document each algorithm's cost structure in code,
//! * they give `O(1)`-cost estimates for algorithm selection without
//!   running a simulation (see [`crate::select`]),
//! * the `predictions_bracket_simulation` tests pin the model: the
//!   simulated time must lie between the contention-free prediction and
//!   a small constant multiple of it.

use mpp_model::{LibraryKind, Machine, Time};

use crate::runner::AlgoKind;

/// Per-entry wire overhead of a combined message (see `msgset`).
const HDR: usize = 8;
/// Fixed wire overhead of a combined message.
const BASE: usize = 4;

/// Wire size of a combined message holding `k` payloads of `len` bytes.
pub fn wire_size(k: usize, len: usize) -> usize {
    BASE + k * (HDR + len)
}

/// Contention-free analytic estimate of the broadcast makespan (ns).
///
/// `p` processors, `s` sources, `len`-byte messages, under `lib`.
/// Returns `None` for algorithm variants without a closed form
/// (the partitioning algorithms, whose final permutation cost depends
/// on the group geometry).
pub fn estimate_ns(machine: &Machine, kind: AlgoKind, s: usize, len: usize) -> Option<Time> {
    let p = machine.p();
    let params = &machine.params;
    let lib = kind.default_lib();
    let a_s = params.alpha_send(lib);
    let a_r = params.alpha_recv(lib);
    let ports = params.ports_per_node as u64;
    let log_p = log2_ceil(p);
    let log_s = log2_ceil(s.max(1));

    let wire = |k: usize| params.serialize_ns_lib(wire_size(k, len), lib);
    let copy = |k: usize| params.memcpy_ns(wire_size(k, len));

    let t = match kind {
        AlgoKind::TwoStep | AlgoKind::MpiAllGather => {
            // Gather all s payloads at the root...
            let gather = if kind == AlgoKind::TwoStep {
                // direct: root's ejection ports serialize s messages,
                // plus a receive-software cost per message.
                s as u64 * (wire(1) / ports + a_r) + a_s + copy(s)
            } else {
                // tree: the root path carries doubling message sets,
                // with combining at each of log p levels.
                let mut t = 0;
                let mut k = (s.div_ceil(p)).max(1);
                for _ in 0..log_p {
                    let k_level = k.min(s);
                    t += a_s + a_r + wire(k_level) + copy(k_level);
                    k = (k * 2).min(s);
                }
                t
            };
            // ... then log p broadcast rounds of the full combined set.
            gather + log_p as u64 * (a_s + a_r + wire(s))
        }
        AlgoKind::PersAlltoAll | AlgoKind::MpiAlltoall => {
            // p-1 permutation rounds; a source pays the send startup in
            // every round, its injection ports serialize the payloads;
            // every rank receives s messages.
            (p as u64 - 1) * a_s + (p as u64 - 1) * wire(1) / ports + s as u64 * a_r
        }
        AlgoKind::BrLin | AlgoKind::ReposLin => {
            // ceil(log p) iterations; the set at a processor roughly
            // doubles from s/p-ish to s; total bytes ≈ wire(s), plus a
            // per-level software + combining cost.
            let mut t = 0;
            let mut k = (s / p).max(1);
            for _ in 0..log_p {
                let k_level = k.min(s);
                t += a_s + a_r + wire(k_level) + copy(k_level);
                k = (k * 2).min(s);
            }
            if kind == AlgoKind::ReposLin {
                t += repositioning_ns(machine, lib, len);
            }
            t
        }
        AlgoKind::BrXySource
        | AlgoKind::BrXyDim
        | AlgoKind::ReposXySource
        | AlgoKind::ReposXyDim => {
            // Phase 1 within the first dimension (say rows, length c):
            // sets grow to ~s/r; phase 2 within columns: sets grow to s.
            let (r, c) = (machine.shape.rows, machine.shape.cols);
            let per_row = s.div_ceil(r).max(1);
            let mut t = 0;
            let mut k = 1usize;
            for _ in 0..log2_ceil(c) {
                let k_level = k.min(per_row);
                t += a_s + a_r + wire(k_level) + copy(k_level);
                k = (k * 2).min(per_row);
            }
            let mut k = per_row;
            for _ in 0..log2_ceil(r) {
                let k_level = k.min(s);
                t += a_s + a_r + wire(k_level) + copy(k_level);
                k = (k * 2).min(s);
            }
            if matches!(kind, AlgoKind::ReposXySource | AlgoKind::ReposXyDim) {
                t += repositioning_ns(machine, lib, len);
            }
            t
        }
        AlgoKind::DissemAllGather | AlgoKind::DissemZeroCopy => {
            // log p rounds; the set roughly doubles; combining only for
            // the non-zero-copy variant.
            let mut t = 0;
            let mut k = (s / p).max(1);
            for _ in 0..log_p {
                let k_level = k.min(s);
                t += a_s + a_r + wire(k_level);
                if kind == AlgoKind::DissemAllGather {
                    t += copy(k_level);
                }
                k = (k * 2).min(s);
            }
            t
        }
        AlgoKind::ReposAdaptiveXySource => {
            // Upper bound: the always-reposition estimate.
            return estimate_ns(machine, AlgoKind::ReposXySource, s, len);
        }
        AlgoKind::NaiveIndependent => {
            // s independent trees: each processor receives one message
            // per source and forwards up to log p per tree; the root
            // path of each tree carries log p sequential sends.
            s as u64 * (a_r + wire(1)) + log_p as u64 * a_s * s as u64 / 2
        }
        AlgoKind::KPortLin => {
            // k source-striped Br_Lin lanes: one batched α_send per
            // level, per-lane sets are ~1/k of the single-port set and
            // their wires overlap on distinct ports; α_recv still
            // serializes one receive per lane at the receiver.
            let lanes = (ports as usize).clamp(1, 16).min(p);
            let mut t = 0;
            let mut k = (s / p).max(1);
            for _ in 0..log_p {
                let k_level = k.min(s);
                let per_lane = k_level.div_ceil(lanes).max(1);
                t += a_s + lanes as u64 * a_r + wire(per_lane) + copy(k_level);
                k = (k * 2).min(s);
            }
            t
        }
        AlgoKind::KPortScatter => {
            // Direct gather at the root, one batched k-way scatter,
            // then a k-lane broadcast of the ~s/k-entry parts.
            let lanes = (ports as usize).clamp(1, 16).min(p);
            let per_lane = s.div_ceil(lanes).max(1);
            let gather = s as u64 * (wire(1) / ports + a_r) + a_s + copy(s);
            let scatter = a_s + wire(per_lane) + a_r;
            let bcast = log_p as u64 * (a_s + lanes as u64 * a_r + wire(per_lane) + copy(per_lane));
            gather + scatter + bcast
        }
        AlgoKind::KPortAlltoall => {
            // PersAlltoAll with the send startup amortized over batches
            // of k destinations.
            let lanes = (ports as usize)
                .clamp(1, 16)
                .min(p.saturating_sub(1).max(1)) as u64;
            (p as u64 - 1).div_ceil(lanes) * a_s + (p as u64 - 1) * wire(1) / ports + s as u64 * a_r
        }
        AlgoKind::PartLin | AlgoKind::PartXySource | AlgoKind::PartXyDim => return None,
    };
    let _ = log_s;
    Some(t)
}

/// Cost of the repositioning permutation: one message of `len` bytes per
/// moving source, overlapped — a send plus a receive.
fn repositioning_ns(machine: &Machine, lib: LibraryKind, len: usize) -> Time {
    let params = &machine.params;
    params.alpha_send(lib) + params.alpha_recv(lib) + params.serialize_ns_lib(len, lib)
}

/// Contention-free estimate in milliseconds.
pub fn estimate_ms(machine: &Machine, kind: AlgoKind, s: usize, len: usize) -> Option<f64> {
    estimate_ns(machine, kind, s, len).map(|ns| ns as f64 / 1e6)
}

/// `⌈log₂ n⌉` (0 for n ≤ 1).
fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        (n - 1).ilog2() + 1
    }
}

/// A crude lower bound: every processor must *receive* all s payloads
/// it does not hold, at its ejection-port bandwidth.
pub fn lower_bound_ns(machine: &Machine, s: usize, len: usize) -> Time {
    let ports = machine.params.ports_per_node as u64;
    machine.params.serialize_ns(wire_size(s, len)) / ports
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::Machine;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(100), 7);
        assert_eq!(log2_ceil(256), 8);
    }

    #[test]
    fn predictions_positive_and_ordered_on_paragon() {
        // On the Paragon the analytic model must already rank the
        // library algorithms above the merge algorithms at large s.
        let m = Machine::paragon(10, 10);
        let br = estimate_ns(&m, AlgoKind::BrLin, 60, 4096).unwrap();
        let two = estimate_ns(&m, AlgoKind::TwoStep, 60, 4096).unwrap();
        let pers = estimate_ns(&m, AlgoKind::PersAlltoAll, 60, 4096).unwrap();
        assert!(br > 0);
        assert!(two > br, "2-Step {two} must exceed Br_Lin {br}");
        assert!(pers > br, "PersAlltoAll {pers} must exceed Br_Lin {br}");
    }

    #[test]
    fn predictions_flip_on_t3d() {
        let m = Machine::t3d(128, 42);
        let br = estimate_ns(&m, AlgoKind::BrLin, 64, 4096).unwrap();
        let alltoall = estimate_ns(&m, AlgoKind::MpiAlltoall, 64, 4096).unwrap();
        assert!(alltoall < br, "analytic model must reproduce the T3D flip");
    }

    #[test]
    fn repositioning_estimate_adds_cost() {
        let m = Machine::paragon(16, 16);
        let plain = estimate_ns(&m, AlgoKind::BrXySource, 40, 4096).unwrap();
        let repos = estimate_ns(&m, AlgoKind::ReposXySource, 40, 4096).unwrap();
        assert!(repos > plain);
    }

    #[test]
    fn partitioning_has_no_closed_form() {
        let m = Machine::paragon(16, 16);
        assert!(estimate_ns(&m, AlgoKind::PartLin, 10, 1024).is_none());
    }

    #[test]
    fn lower_bound_below_every_estimate() {
        let m = Machine::paragon(8, 8);
        for &kind in AlgoKind::all() {
            if let Some(t) = estimate_ns(&m, kind, 16, 2048) {
                assert!(t >= lower_bound_ns(&m, 16, 2048), "{}", kind.name());
            }
        }
    }

    #[test]
    fn prediction_brackets_simulation() {
        // Contention-free prediction ≤ simulated ≤ prediction × C for a
        // modest constant C; checks the formulas stay anchored to the
        // implementation.
        let m = Machine::paragon(8, 8);
        for kind in [
            AlgoKind::TwoStep,
            AlgoKind::PersAlltoAll,
            AlgoKind::BrLin,
            AlgoKind::BrXySource,
        ] {
            let predicted = estimate_ns(&m, kind, 16, 2048).unwrap() as f64;
            let simulated = crate::runner::Experiment {
                machine: &m,
                dist: crate::distribution::SourceDist::Equal,
                s: 16,
                msg_len: 2048,
                kind,
            }
            .run()
            .expect("run failed")
            .makespan_ns as f64;
            let ratio = simulated / predicted;
            assert!(
                (0.5..6.0).contains(&ratio),
                "{}: simulated/predicted = {ratio:.2} (sim {simulated}, pred {predicted})",
                kind.name()
            );
        }
    }
}

//! Distribution quality — how good is a source placement for a given
//! merge algorithm?
//!
//! The paper's §3 notes its repositioning implementations "do not check
//! whether the initial distribution is close to an ideal distribution
//! and always reposition", paying 1–2 ms on inputs that were already
//! fine (Figure 9's positive bars). This module provides the missing
//! check: a pure, communication-free score of a source placement under
//! the algorithm's actual merge schedule, plus the adaptive wrapper
//! [`crate::algorithms::adaptive::ReposAdaptive`] built on it.

use mpp_model::MeshShape;

use crate::distribution::{col_counts, row_counts};
use crate::pattern::br_lin_schedule;
use crate::runner::AlgoKind;

/// Growth score of a has-flag line under the `Br_Lin` schedule:
/// `Σ_levels holders` — larger means the number of active processors
/// grows faster (the paper's first objective).
pub fn line_growth_score(has: &[bool]) -> u64 {
    br_lin_schedule(has)
        .holds
        .iter()
        .skip(1)
        .map(|h| h.iter().filter(|&&b| b).count() as u64)
        .sum()
}

/// Maximum achievable growth score for `k` actives on `n` positions
/// (every level doubles until saturation).
pub fn line_growth_max(n: usize, k: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let levels = if n <= 1 { 0 } else { (n - 1).ilog2() + 1 };
    let mut active = k;
    let mut score = 0;
    for _ in 0..levels {
        active = (active * 2).min(n);
        score += active as u64;
    }
    score
}

/// Quality of a source placement for an algorithm, in `[0, 1]`:
/// the ratio of the achieved growth score to the optimum. `1.0` means
/// "as good as the ideal distribution"; low values mean repositioning
/// has something to gain.
///
/// Only defined for the merge-based algorithms (`Br_Lin`, `Br_xy_*` and
/// their wrappers); returns `None` otherwise.
///
/// ```
/// use mpp_model::MeshShape;
/// use stp_core::{distribution::SourceDist, quality::placement_quality, runner::AlgoKind};
/// let shape = MeshShape::new(16, 16);
/// let sq = SourceDist::SquareBlock.place(shape, 49);
/// let row = SourceDist::Row.place(shape, 48);
/// let q_sq = placement_quality(shape, &sq, AlgoKind::BrXySource).unwrap();
/// let q_row = placement_quality(shape, &row, AlgoKind::BrXySource).unwrap();
/// assert!(q_sq < q_row, "a clustered block is worse for Br_xy_source");
/// ```
pub fn placement_quality(shape: MeshShape, sources: &[usize], kind: AlgoKind) -> Option<f64> {
    let p = shape.p();
    debug_assert!(sources.windows(2).all(|w| w[0] < w[1]));
    match kind {
        AlgoKind::BrLin | AlgoKind::ReposLin | AlgoKind::PartLin => {
            // Score the snake-order line directly.
            let snake = shape.snake_order();
            let has: Vec<bool> = snake
                .iter()
                .map(|r| sources.binary_search(r).is_ok())
                .collect();
            let max = line_growth_max(p, sources.len());
            Some(ratio(line_growth_score(&has), max))
        }
        AlgoKind::BrXySource
        | AlgoKind::BrXyDim
        | AlgoKind::ReposXySource
        | AlgoKind::ReposXyDim
        | AlgoKind::PartXySource
        | AlgoKind::PartXyDim => {
            // The xy algorithms suffer when the first-phase lines are
            // *unevenly loaded*: a square block confines all traffic to
            // a few rows/columns, a cross overloads its arms. Score the
            // load balance of the dimension Br_xy_source would process
            // first: s sources spread perfectly over all lines give 1.0.
            let rows = row_counts(shape, sources);
            let cols = col_counts(shape, sources);
            let max_r = rows.iter().copied().max().unwrap_or(0);
            let max_c = cols.iter().copied().max().unwrap_or(0);
            // max_r < max_c → rows first (paper's rule).
            let (n_lines, max_count) = if max_r < max_c {
                (shape.rows, max_r)
            } else {
                (shape.cols, max_c)
            };
            if max_count == 0 {
                return Some(1.0);
            }
            Some((sources.len() as f64 / (n_lines as f64 * max_count as f64)).clamp(0.0, 1.0))
        }
        AlgoKind::ReposAdaptiveXySource => placement_quality(shape, sources, AlgoKind::BrXySource),
        // KPort_Lin's lane 0 is a plain snake-order Br_Lin; the rotated
        // lanes track the same growth score, so score it like Br_Lin.
        AlgoKind::KPortLin => placement_quality(shape, sources, AlgoKind::BrLin),
        AlgoKind::TwoStep
        | AlgoKind::PersAlltoAll
        | AlgoKind::MpiAllGather
        | AlgoKind::MpiAlltoall
        | AlgoKind::DissemAllGather
        | AlgoKind::DissemZeroCopy
        | AlgoKind::NaiveIndependent
        | AlgoKind::KPortScatter
        | AlgoKind::KPortAlltoall => None,
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        1.0
    } else {
        (a as f64 / b as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::SourceDist;
    use crate::ideal::{ideal_left_diagonal, ideal_rows};

    const TEN: MeshShape = MeshShape { rows: 10, cols: 10 };

    #[test]
    fn ideal_placements_score_high() {
        let dl = ideal_left_diagonal(TEN, 10);
        let q = placement_quality(TEN, &dl, AlgoKind::BrLin).unwrap();
        assert!(
            q > 0.85,
            "left diagonal should be near-ideal for Br_Lin, got {q}"
        );

        let rows = ideal_rows(TEN, 30);
        let q = placement_quality(TEN, &rows, AlgoKind::BrXySource).unwrap();
        assert!(
            q > 0.9,
            "ideal rows should be near-ideal for Br_xy_source, got {q}"
        );
    }

    #[test]
    fn clustered_placements_score_low() {
        let sq = SourceDist::SquareBlock.place(TEN, 16);
        let q_sq = placement_quality(TEN, &sq, AlgoKind::BrXySource).unwrap();
        let ideal = ideal_rows(TEN, 16);
        let q_ideal = placement_quality(TEN, &ideal, AlgoKind::BrXySource).unwrap();
        assert!(
            q_sq < q_ideal,
            "square block ({q_sq}) must score below ideal rows ({q_ideal})"
        );
    }

    #[test]
    fn paper_stall_example_scores_below_fixed_one() {
        // Sources at snake positions 0 and 5 of a 10-line stall; 0 and 6
        // double — quality must reflect it.
        let mut bad = vec![false; 10];
        bad[0] = true;
        bad[5] = true;
        let mut good = vec![false; 10];
        good[0] = true;
        good[6] = true;
        assert!(line_growth_score(&good) > line_growth_score(&bad));
    }

    #[test]
    fn quality_is_in_unit_range() {
        for dist in [
            SourceDist::Row,
            SourceDist::Column,
            SourceDist::Equal,
            SourceDist::Cross,
            SourceDist::SquareBlock,
        ] {
            for s in [1usize, 10, 30, 100] {
                let sources = dist.place(TEN, s);
                for kind in [AlgoKind::BrLin, AlgoKind::BrXySource, AlgoKind::BrXyDim] {
                    let q = placement_quality(TEN, &sources, kind).unwrap();
                    assert!((0.0..=1.0).contains(&q), "{} {s}: {q}", dist.name());
                }
            }
        }
    }

    #[test]
    fn library_algorithms_have_no_quality() {
        let sources = SourceDist::Equal.place(TEN, 10);
        assert!(placement_quality(TEN, &sources, AlgoKind::TwoStep).is_none());
        assert!(placement_quality(TEN, &sources, AlgoKind::MpiAlltoall).is_none());
    }

    #[test]
    fn growth_max_monotone_in_k() {
        for n in [8usize, 10, 16] {
            let mut prev = 0;
            for k in 0..=n {
                let m = line_growth_max(n, k);
                assert!(m >= prev);
                prev = m;
            }
        }
    }

    #[test]
    fn full_machine_quality_is_one() {
        let sources: Vec<usize> = (0..100).collect();
        for kind in [AlgoKind::BrLin, AlgoKind::BrXySource] {
            let q = placement_quality(TEN, &sources, kind).unwrap();
            assert!((q - 1.0).abs() < 1e-9, "{}: {q}", kind.name());
        }
    }
}

//! Experiment runner: one call from (machine, distribution, s, L,
//! algorithm) to a verified, timed outcome.

use mpp_model::{LibraryKind, Machine, Time};
use mpp_runtime::{
    schedule_log, try_run_simulated_with, CancelToken, CommStats, Communicator, ExecMode,
    FaultPlan, ScheduleEvent, SimBudget, SimConfig, SimError,
};

use crate::algorithms::{
    BrLin, BrXyDim, BrXySource, DissemAllGather, KPortAlltoall, KPortLin, KPortScatter,
    NaiveIndependent, Part, PersAlltoAll, Repos, ReposAdaptive, StpAlgorithm, StpCtx, TwoStep,
};
use crate::distribution::SourceDist;
use crate::msgset::payload_for;

/// Every algorithm variant the experiments exercise.
///
/// `MpiAllGather` / `MpiAlltoall` are the paper's names for the MPI
/// builds of `2-Step` / `PersAlltoAll` (§5.3); they run the same code
/// under [`LibraryKind::Mpi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// `2-Step`: gather at P₀ + one-to-all broadcast (NX build).
    TwoStep,
    /// `PersAlltoAll`: personalized all-to-all exchange (NX build).
    PersAlltoAll,
    /// `Br_Lin` on the snake order.
    BrLin,
    /// `Br_xy_source`.
    BrXySource,
    /// `Br_xy_dim`.
    BrXyDim,
    /// `Repos_Lin` = reposition to `Dl(s)` + `Br_Lin`.
    ReposLin,
    /// `Repos_xy_source` = reposition to ideal rows + `Br_xy_source`.
    ReposXySource,
    /// `Repos_xy_dim`.
    ReposXyDim,
    /// `Part_Lin`.
    PartLin,
    /// `Part_xy_source`.
    PartXySource,
    /// `Part_xy_dim`.
    PartXyDim,
    /// MPI build of 2-Step (the paper's `MPI_AllGather`).
    MpiAllGather,
    /// MPI build of PersAlltoAll (the paper's `MPI_Alltoall`).
    MpiAlltoall,
    /// Extension: dissemination all-gather with combining charges.
    DissemAllGather,
    /// Extension: dissemination all-gather, zero-copy block placement.
    DissemZeroCopy,
    /// Extension: quality-gated repositioning over `Br_xy_source`.
    ReposAdaptiveXySource,
    /// The baseline §2 rejects: uncoordinated independent broadcasts.
    NaiveIndependent,
    /// Extension: k source-striped `Br_Lin` lanes batched across the
    /// machine's injection ports.
    KPortLin,
    /// Extension: gather + batched k-way scatter + k-lane broadcast.
    KPortScatter,
    /// Extension: port-striped direct all-to-all.
    KPortAlltoall,
}

impl AlgoKind {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::TwoStep => "2-Step",
            AlgoKind::PersAlltoAll => "PersAlltoAll",
            AlgoKind::BrLin => "Br_Lin",
            AlgoKind::BrXySource => "Br_xy_source",
            AlgoKind::BrXyDim => "Br_xy_dim",
            AlgoKind::ReposLin => "Repos_Lin",
            AlgoKind::ReposXySource => "Repos_xy_source",
            AlgoKind::ReposXyDim => "Repos_xy_dim",
            AlgoKind::PartLin => "Part_Lin",
            AlgoKind::PartXySource => "Part_xy_source",
            AlgoKind::PartXyDim => "Part_xy_dim",
            AlgoKind::MpiAllGather => "MPI_AllGather",
            AlgoKind::MpiAlltoall => "MPI_Alltoall",
            AlgoKind::DissemAllGather => "DissemAllGather",
            AlgoKind::DissemZeroCopy => "DissemAllGather (zero-copy)",
            AlgoKind::ReposAdaptiveXySource => "ReposAdaptive_xy_source",
            AlgoKind::NaiveIndependent => "NaiveIndependent",
            AlgoKind::KPortLin => "KPort_Lin",
            AlgoKind::KPortScatter => "KPort_Scatter",
            AlgoKind::KPortAlltoall => "KPort_Alltoall",
        }
    }

    /// The algorithm variants evaluated in the paper (no extensions).
    pub fn paper_set() -> &'static [AlgoKind] {
        &[
            AlgoKind::TwoStep,
            AlgoKind::PersAlltoAll,
            AlgoKind::BrLin,
            AlgoKind::BrXySource,
            AlgoKind::BrXyDim,
            AlgoKind::ReposLin,
            AlgoKind::ReposXySource,
            AlgoKind::ReposXyDim,
            AlgoKind::PartLin,
            AlgoKind::PartXySource,
            AlgoKind::PartXyDim,
            AlgoKind::MpiAllGather,
            AlgoKind::MpiAlltoall,
        ]
    }

    /// The library flavour this variant runs under by default.
    pub fn default_lib(self) -> LibraryKind {
        match self {
            AlgoKind::MpiAllGather | AlgoKind::MpiAlltoall => LibraryKind::Mpi,
            _ => LibraryKind::Nx,
        }
    }

    /// All variants, including the extensions beyond the paper.
    pub fn all() -> &'static [AlgoKind] {
        &[
            AlgoKind::TwoStep,
            AlgoKind::PersAlltoAll,
            AlgoKind::BrLin,
            AlgoKind::BrXySource,
            AlgoKind::BrXyDim,
            AlgoKind::ReposLin,
            AlgoKind::ReposXySource,
            AlgoKind::ReposXyDim,
            AlgoKind::PartLin,
            AlgoKind::PartXySource,
            AlgoKind::PartXyDim,
            AlgoKind::MpiAllGather,
            AlgoKind::MpiAlltoall,
            AlgoKind::DissemAllGather,
            AlgoKind::DissemZeroCopy,
            AlgoKind::ReposAdaptiveXySource,
            AlgoKind::NaiveIndependent,
            AlgoKind::KPortLin,
            AlgoKind::KPortScatter,
            AlgoKind::KPortAlltoall,
        ]
    }

    /// Parse an algorithm name as used by the `stp` CLI and the serve
    /// request schema: the paper-style display name, matched
    /// case-insensitively, with `-`/` ` treated as `_`.
    pub fn parse(name: &str) -> Option<AlgoKind> {
        AlgoKind::all().iter().copied().find(|k| {
            k.name().eq_ignore_ascii_case(name)
                || k.name().to_lowercase().replace(['-', ' '], "_") == name.to_lowercase()
        })
    }

    /// Instantiate the algorithm object.
    pub fn build(self) -> Box<dyn StpAlgorithm> {
        match self {
            // The paper's NX 2-Step gathers directly; the MPI library
            // routine gathers over a binomial tree (see two_step docs).
            AlgoKind::TwoStep => Box::new(TwoStep::direct()),
            AlgoKind::MpiAllGather => Box::new(TwoStep::tree()),
            AlgoKind::PersAlltoAll | AlgoKind::MpiAlltoall => Box::new(PersAlltoAll),
            AlgoKind::BrLin => Box::new(BrLin::new()),
            AlgoKind::BrXySource => Box::new(BrXySource),
            AlgoKind::BrXyDim => Box::new(BrXyDim),
            AlgoKind::ReposLin => Box::new(Repos::new(BrLin::new(), "Repos_Lin")),
            AlgoKind::ReposXySource => Box::new(Repos::new(BrXySource, "Repos_xy_source")),
            AlgoKind::ReposXyDim => Box::new(Repos::new(BrXyDim, "Repos_xy_dim")),
            AlgoKind::PartLin => Box::new(Part::new(BrLin::new(), "Part_Lin")),
            AlgoKind::PartXySource => Box::new(Part::new(BrXySource, "Part_xy_source")),
            AlgoKind::PartXyDim => Box::new(Part::new(BrXyDim, "Part_xy_dim")),
            AlgoKind::DissemAllGather => Box::new(DissemAllGather::new()),
            AlgoKind::DissemZeroCopy => Box::new(DissemAllGather::zero_copy()),
            AlgoKind::ReposAdaptiveXySource => Box::new(ReposAdaptive::new(
                BrXySource,
                AlgoKind::BrXySource,
                "ReposAdaptive_xy_source",
            )),
            AlgoKind::NaiveIndependent => Box::new(NaiveIndependent),
            AlgoKind::KPortLin => Box::new(KPortLin),
            AlgoKind::KPortScatter => Box::new(KPortScatter),
            AlgoKind::KPortAlltoall => Box::new(KPortAlltoall),
        }
    }
}

/// A fully-specified experiment.
#[derive(Clone)]
pub struct Experiment<'a> {
    /// Machine to run on.
    pub machine: &'a Machine,
    /// Source distribution family.
    pub dist: SourceDist,
    /// Number of sources (`1..=p`).
    pub s: usize,
    /// Message length at each source, bytes (the paper's `L`).
    pub msg_len: usize,
    /// Algorithm variant.
    pub kind: AlgoKind,
}

/// Result of a run: virtual times, statistics, verification verdict.
#[derive(Debug)]
pub struct Outcome {
    /// Virtual makespan (ns) — the time the paper plots.
    pub makespan_ns: Time,
    /// Per-rank finish times (ns).
    pub finish_ns: Vec<Time>,
    /// Per-rank communication statistics.
    pub stats: Vec<CommStats>,
    /// Whether every rank ended with exactly the `s` expected payloads.
    pub verified: bool,
    /// Network contention stalls.
    pub contention_events: u64,
    /// Total stall time (ns).
    pub contention_ns: Time,
    /// The source ranks used.
    pub sources: Vec<usize>,
}

impl Outcome {
    /// Makespan in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }
}

/// Supervision knobs a sweep driver threads down into one run: fault
/// plan, watchdog budget, cooperative cancellation, and an optional
/// executor override. [`RunControl::default`] is an unsupervised run
/// honouring the `STP_WATCHDOG_EVENTS` / `STP_EXEC` environment.
#[derive(Debug, Clone)]
pub struct RunControl {
    /// Deterministic network fault plan (`None` = perfect network).
    pub faults: Option<FaultPlan>,
    /// Watchdog ceilings (events / virtual time / wall clock) turning
    /// livelocks into [`SimError::WatchdogTripped`].
    pub budget: SimBudget,
    /// Cooperative cancellation: the run exits with
    /// [`SimError::Cancelled`] at its next scheduling step.
    pub cancel: Option<CancelToken>,
    /// Executor override; `None` follows `STP_EXEC`.
    pub exec: Option<ExecMode>,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl {
            faults: None,
            budget: SimBudget::from_env(),
            cancel: None,
            exec: None,
        }
    }
}

impl RunControl {
    /// A control block carrying only a fault plan.
    pub fn with_faults(faults: Option<&FaultPlan>) -> Self {
        RunControl {
            faults: faults.cloned(),
            ..RunControl::default()
        }
    }
}

impl Experiment<'_> {
    /// Run under the algorithm's default library flavour.
    pub fn run(&self) -> Result<Outcome, SimError> {
        self.run_with_lib(self.kind.default_lib())
    }

    /// Run under an explicit library flavour.
    pub fn run_with_lib(&self, lib: LibraryKind) -> Result<Outcome, SimError> {
        let sources = self.dist.place(self.machine.shape, self.s);
        let len = self.msg_len;
        run_sources(
            self.machine,
            lib,
            &sources,
            &|src| payload_for(src, len),
            self.kind,
        )
    }

    /// Run under the algorithm's default library flavour with a fault
    /// plan active in the network.
    pub fn run_with_faults(&self, faults: &FaultPlan) -> Result<Outcome, SimError> {
        let sources = self.dist.place(self.machine.shape, self.s);
        let len = self.msg_len;
        run_sources_faulty(
            self.machine,
            self.kind.default_lib(),
            &sources,
            &|src| payload_for(src, len),
            self.kind,
            Some(faults),
        )
    }

    /// Run under full supervision ([`RunControl`]): watchdog budget,
    /// cancellation token, fault plan, executor override.
    pub fn run_controlled(&self, control: &RunControl) -> Result<Outcome, SimError> {
        let sources = self.dist.place(self.machine.shape, self.s);
        let len = self.msg_len;
        try_run_sources_controlled(
            self.machine,
            self.kind.default_lib(),
            &sources,
            &|src| payload_for(src, len),
            self.kind,
            control,
        )
    }

    /// Run with per-source message lengths (paper §5: "using different
    /// length messages did not influence the performance significantly").
    pub fn run_with_lengths(
        &self,
        len_of: &(dyn Fn(usize) -> usize + Sync),
    ) -> Result<Outcome, SimError> {
        let sources = self.dist.place(self.machine.shape, self.s);
        run_sources(
            self.machine,
            self.kind.default_lib(),
            &sources,
            &|src| payload_for(src, len_of(src)),
            self.kind,
        )
    }
}

/// Run an algorithm on explicit sources with explicit payloads.
///
/// Debug builds enable the kernel's strict schedule checks (unambiguous
/// receive matching, empty mailboxes at finish) — the runtime half of
/// the `stp-analyzer` checker — so schedule bugs surface as
/// [`SimError::StrictViolation`] at the offending operation instead of
/// a wrong makespan.
pub fn run_sources(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    kind: AlgoKind,
) -> Result<Outcome, SimError> {
    run_sources_faulty(machine, lib, sources, payload_of, kind, None)
}

/// [`run_sources`] with an optional fault plan active in the network.
///
/// Strict runtime schedule checks are disabled when a plan is given:
/// drops and retries legitimately perturb arrival order, so ambiguity
/// that is a bug on a clean network is expected behaviour here — the
/// interesting property under faults is *delivery* (`verified`), which
/// is still checked per rank.
pub fn run_sources_faulty(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    kind: AlgoKind,
    faults: Option<&FaultPlan>,
) -> Result<Outcome, SimError> {
    try_run_sources_controlled(
        machine,
        lib,
        sources,
        payload_of,
        kind,
        &RunControl::with_faults(faults),
    )
}

/// [`run_sources`] under a full [`RunControl`] block — the supervised
/// entry point sweep engines call.
pub fn try_run_sources_controlled(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    kind: AlgoKind,
    control: &RunControl,
) -> Result<Outcome, SimError> {
    let alg = kind.build();
    try_run_alg_controlled(machine, lib, sources, payload_of, alg.as_ref(), control)
}

/// [`try_run_sources_controlled`] over an arbitrary algorithm object —
/// used by the chaos-injection fixtures, which have no [`AlgoKind`].
pub fn try_run_alg_controlled(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    alg: &dyn StpAlgorithm,
    control: &RunControl,
) -> Result<Outcome, SimError> {
    let config = SimConfig {
        lib,
        strict: cfg!(debug_assertions) && control.faults.is_none(),
        faults: control.faults.clone(),
        budget: control.budget.clone(),
        cancel: control.cancel.clone(),
        exec: control.exec.unwrap_or_else(ExecMode::from_env_lenient),
        ..SimConfig::default()
    };
    try_run_alg_with(machine, &config, sources, payload_of, alg)
}

fn try_run_alg_with(
    machine: &Machine,
    config: &SimConfig,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    alg: &dyn StpAlgorithm,
) -> Result<Outcome, SimError> {
    let shape = machine.shape;
    let out = try_run_simulated_with(machine, config, async |comm| {
        let me = comm.rank();
        let payload = sources.binary_search(&me).is_ok().then(|| payload_of(me));
        let ctx = StpCtx {
            shape,
            sources,
            payload: payload.as_deref(),
        };
        let set = alg.run(comm, &ctx).await;
        // Verify on-rank: all sources present with the right payloads.
        set.sources().collect::<Vec<_>>() == sources
            && sources
                .iter()
                .all(|&s| set.get(s).is_some_and(|d| *d == payload_of(s)))
    })?;
    Ok(Outcome {
        makespan_ns: out.makespan_ns,
        finish_ns: out.finish_ns,
        stats: out.stats,
        verified: out.results.iter().all(|&ok| ok),
        contention_events: out.contention_events,
        contention_ns: out.contention_ns,
        sources: sources.to_vec(),
    })
}

// ---------------------------------------------------------------------------
// Schedule extraction (the ScheduleRecorder mode)
// ---------------------------------------------------------------------------

/// A run captured as a symbolic communication schedule.
///
/// Produced by [`record_sources`] / [`Experiment::record`]; consumed by
/// the `stp-analyzer` crate's static checks. The event list is complete
/// even when the run deadlocks — the kernel flushes the partial schedule
/// (with one `Blocked` event per stuck rank) before aborting, and the
/// recorder catches the abort.
#[derive(Debug)]
pub struct RecordedRun {
    /// Communication events in deterministic kernel order.
    pub events: Vec<ScheduleEvent>,
    /// True when the run aborted with every live rank blocked.
    pub deadlocked: bool,
    /// The timed outcome — `None` when the run deadlocked.
    pub outcome: Option<Outcome>,
}

/// Record the communication schedule of `alg` on explicit sources.
///
/// Works for any [`StpAlgorithm`], including deliberately broken ones
/// (the analyzer's seeded-bug fixtures): a deadlocking schedule returns
/// with [`RecordedRun::deadlocked`] set instead of panicking. Failures
/// that are not deadlocks (e.g. assertion failures inside the algorithm)
/// are propagated as panics; supervised callers use
/// [`try_record_sources`].
pub fn record_sources(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    alg: &dyn StpAlgorithm,
) -> RecordedRun {
    record_sources_exec(
        machine,
        lib,
        sources,
        payload_of,
        alg,
        ExecMode::from_env_lenient(),
    )
}

/// [`record_sources`] with an explicit executor choice, regardless of
/// `STP_EXEC` — the differential tests run the same schedule on both
/// executors and require the recordings to be identical.
pub fn record_sources_exec(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    alg: &dyn StpAlgorithm,
    exec: ExecMode,
) -> RecordedRun {
    record_sources_faulty(machine, lib, sources, payload_of, alg, exec, None)
}

/// [`record_sources_exec`] with an optional fault plan: the recorded
/// schedule then contains one [`ScheduleEvent::Dropped`] per lost
/// transmission attempt, which the analyzer's delivery-completeness
/// check consumes.
pub fn record_sources_faulty(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    alg: &dyn StpAlgorithm,
    exec: ExecMode,
    faults: Option<&FaultPlan>,
) -> RecordedRun {
    let control = RunControl {
        faults: faults.cloned(),
        exec: Some(exec),
        ..RunControl::default()
    };
    try_record_sources(machine, lib, sources, payload_of, alg, &control)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Supervised schedule recording: a deadlock is still a *recordable*
/// outcome (`Ok` with [`RecordedRun::deadlocked`] set and the partial
/// schedule flushed — that is exactly what the analyzer's deadlock check
/// consumes); every other abnormal termination (rank panic, watchdog
/// trip, cancellation, strict violation) comes back as `Err` with the
/// kernel shut down cleanly.
pub fn try_record_sources(
    machine: &Machine,
    lib: LibraryKind,
    sources: &[usize],
    payload_of: &(dyn Fn(usize) -> Vec<u8> + Sync),
    alg: &dyn StpAlgorithm,
    control: &RunControl,
) -> Result<RecordedRun, SimError> {
    let log = schedule_log();
    let config = SimConfig {
        lib,
        recorder: Some(log.clone()),
        exec: control.exec.unwrap_or_else(ExecMode::from_env_lenient),
        faults: control.faults.clone(),
        budget: control.budget.clone(),
        cancel: control.cancel.clone(),
        ..SimConfig::default()
    };
    let run = try_run_alg_with(machine, &config, sources, payload_of, alg);
    let recording = std::mem::take(
        &mut *log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    match run {
        Ok(outcome) => Ok(RecordedRun {
            events: recording.events,
            deadlocked: recording.deadlocked,
            outcome: Some(outcome),
        }),
        Err(SimError::Deadlock { .. }) => Ok(RecordedRun {
            events: recording.events,
            deadlocked: true,
            outcome: None,
        }),
        Err(e) => Err(e),
    }
}

impl Experiment<'_> {
    /// Capture this experiment's symbolic communication schedule under
    /// the algorithm's default library flavour.
    pub fn record(&self) -> RecordedRun {
        let sources = self.dist.place(self.machine.shape, self.s);
        let len = self.msg_len;
        let alg = self.kind.build();
        record_sources(
            self.machine,
            self.kind.default_lib(),
            &sources,
            &|src| payload_for(src, len),
            alg.as_ref(),
        )
    }
}

// ---------------------------------------------------------------------------
// Parallel sweep engine
// ---------------------------------------------------------------------------

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, PoisonError};

/// Weighted counting semaphore bounding the number of concurrently live
/// rank threads across all sweep jobs. A p-rank simulation spawns p OS
/// threads, so running many grid points at once can oversubscribe the
/// host; each job acquires `min(p, capacity)` permits before it starts.
struct RankBudget {
    permits: Mutex<usize>,
    cv: Condvar,
    capacity: usize,
}

impl RankBudget {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RankBudget {
            permits: Mutex::new(capacity),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Block until `want` permits (clamped to capacity, so a job bigger
    /// than the whole budget still runs — alone) are available; returns
    /// the number actually taken.
    ///
    /// Poisoning is ignored throughout: the permit counter is a plain
    /// integer that is never left mid-update, so a panic on another
    /// worker cannot corrupt it — propagating the poison would instead
    /// turn one bad grid point into a whole-sweep abort.
    fn acquire(&self, want: usize) -> usize {
        let need = want.clamp(1, self.capacity);
        let mut p = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *p < need {
            p = self.cv.wait(p).unwrap_or_else(PoisonError::into_inner);
        }
        *p -= need;
        need
    }

    fn release(&self, n: usize) {
        *self.permits.lock().unwrap_or_else(PoisonError::into_inner) += n;
        self.cv.notify_all();
    }
}

/// First sighting of a malformed environment variable? The registry
/// makes each `STP_*` warning fire once per process: `SweepRunner::new`
/// runs once per sweep *point group* and a long-lived driver would
/// otherwise repeat the same warning hundreds of times.
pub(crate) fn first_env_warning(name: &str) -> bool {
    static WARNED: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    let mut seen = WARNED
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if seen.iter().any(|n| n == name) {
        false
    } else {
        seen.push(name.to_string());
        true
    }
}

/// Parse one `STP_SWEEP_*` override. A set-but-malformed value is a user
/// error worth hearing about: warn once per process (naming the variable
/// and the value) and fall back to the default, instead of silently
/// ignoring it.
fn parse_env_usize(name: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            if first_env_warning(name) {
                eprintln!("warning: ignoring {name}={raw:?}: expected a non-negative integer");
            }
            None
        }
    }
}

pub(crate) fn env_usize(name: &str) -> Option<usize> {
    parse_env_usize(name, &std::env::var(name).ok()?)
}

/// Silence the panic hook for deliberate unit-test panics — they are
/// caught and handled by design, and would otherwise spam the test
/// output with one backtrace per injected failure.
#[cfg(test)]
pub(crate) fn tests_hush_deliberate_panics() {
    use std::sync::Once;
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .unwrap_or("");
            if !(msg.contains("deliberate test panic") || msg.contains("deliberate chaos panic")) {
                default_hook(info);
            }
        }));
    });
}

/// Executes independent sweep grid points concurrently on a small worker
/// pool, bounded by a global rank-thread budget.
///
/// Every grid point is a self-contained deterministic simulation, so the
/// *virtual-time* results are bit-identical no matter how many workers
/// run or in which order points complete — only wall-clock changes.
/// Results always come back in input order.
///
/// Environment overrides (useful for CI and for the speedup
/// measurements in `repro-fig02`):
///
/// * `STP_SWEEP_WORKERS` — number of concurrent grid points (default:
///   one per available core on the cooperative executor, where each
///   grid point is a single compute-bound thread; at least 2 on the
///   threaded executor; `1` forces sequential).
/// * `STP_SWEEP_RANK_BUDGET` — total concurrent rank threads allowed
///   across all in-flight simulations (default 512). Only the threaded
///   executor spawns rank threads; cooperative grid points are charged
///   a flat weight of 1, so the budget never throttles them.
/// * `STP_EXEC` — executor selection (`coop` default, `threaded`),
///   consumed by [`SimConfig::default`] and mirrored here for the
///   worker/budget defaults.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
    rank_budget: usize,
    exec: mpp_runtime::ExecMode,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

/// Default cap on concurrently live rank threads across all jobs.
const DEFAULT_RANK_BUDGET: usize = 512;

impl SweepRunner {
    /// A runner configured from the host (and the `STP_SWEEP_*` /
    /// `STP_EXEC` environment overrides).
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let exec = mpp_runtime::ExecMode::from_env_lenient();
        let default_workers = match exec {
            // A cooperative grid point is one compute-bound thread, so
            // one worker per core saturates the host exactly.
            mpp_runtime::ExecMode::Cooperative => cores,
            // A threaded grid point spends most of its life blocked in
            // channel waits; slight oversubscription keeps cores busy.
            mpp_runtime::ExecMode::Threaded => cores.max(2),
        };
        SweepRunner {
            workers: env_usize("STP_SWEEP_WORKERS")
                .unwrap_or(default_workers)
                .max(1),
            rank_budget: env_usize("STP_SWEEP_RANK_BUDGET")
                .unwrap_or(DEFAULT_RANK_BUDGET)
                .max(1),
            exec,
        }
    }

    /// A runner that executes grid points strictly one at a time
    /// (ignores the environment overrides).
    ///
    /// True to that contract, construction reads **no** environment at
    /// all — in particular it cannot die on a malformed `STP_EXEC` the
    /// way [`ExecMode::from_env`] deliberately does. The `exec` field
    /// only weighs jobs against the rank budget, which a one-at-a-time
    /// runner never contends on, so the env-free cooperative default is
    /// also behaviourally inert here.
    pub fn sequential() -> Self {
        SweepRunner {
            workers: 1,
            rank_budget: DEFAULT_RANK_BUDGET,
            exec: mpp_runtime::ExecMode::default(),
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Override the rank-thread budget.
    pub fn with_rank_budget(mut self, n: usize) -> Self {
        self.rank_budget = n.max(1);
        self
    }

    /// Configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `job` over every item, in parallel, returning results in
    /// input order. `weight(&item)` is the number of rank threads the
    /// job will spawn (use the machine's `p`); it is charged against the
    /// global rank budget for the duration of the job.
    ///
    /// A panicking job cannot take the sweep down mid-flight: the panic
    /// is caught at the grid-point boundary, every other point still
    /// runs to completion, and the earliest panic (in input order) is
    /// then resumed. Callers that need per-point failure *reporting*
    /// instead of a deferred panic use
    /// [`map_supervised`](SweepRunner::map_supervised).
    pub fn map<I, T, W, F>(&self, items: Vec<I>, weight: W, job: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        W: Fn(&I) -> usize + Sync,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            let mut first_panic = None;
            for item in items {
                match catch_unwind(AssertUnwindSafe(|| job(item))) {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            if let Some(payload) = first_panic {
                resume_unwind(payload);
            }
            return out;
        }
        let budget = RankBudget::new(self.rank_budget);
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Earliest panicking point (input order) and its payload; the
        // slots and budget mutexes are never poisoned because the only
        // user code — `job` — runs outside their critical sections.
        let panic_slot: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        {
            let (budget, slots, results, next, weight, job, panic_slot) =
                (&budget, &slots, &results, &next, &weight, &job, &panic_slot);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .take()
                            .expect("sweep item taken twice");
                        let got = budget.acquire(weight(&item));
                        let out = catch_unwind(AssertUnwindSafe(|| job(item)));
                        budget.release(got);
                        match out {
                            Ok(v) => {
                                *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(v)
                            }
                            Err(payload) => {
                                let mut slot =
                                    panic_slot.lock().unwrap_or_else(PoisonError::into_inner);
                                if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                    *slot = Some((i, payload));
                                }
                            }
                        }
                    });
                }
            });
        }
        if let Some((_, payload)) = panic_slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
        {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("sweep point finished without a result or a panic")
            })
            .collect()
    }

    /// Run a list of fully-specified experiments. On the threaded
    /// executor each experiment is weighted by its machine size (it
    /// spawns that many rank threads); on the cooperative executor a
    /// grid point is a single thread regardless of `p`, so every job
    /// weighs 1 and the rank budget never throttles the sweep.
    ///
    /// This is the convenience entry point for benches and repro bins:
    /// any abnormal termination panics (after the other grid points
    /// finish). Supervised sweeps — per-point failure reports, retries,
    /// deadlines, checkpointing — go through
    /// [`map_supervised`](SweepRunner::map_supervised).
    pub fn run_experiments(&self, exps: &[Experiment]) -> Vec<Outcome> {
        let exec = self.exec;
        self.map(
            exps.to_vec(),
            move |e| match exec {
                mpp_runtime::ExecMode::Cooperative => 1,
                mpp_runtime::ExecMode::Threaded => e.machine.p(),
            },
            |e| e.run().unwrap_or_else(|err| panic!("{err}")),
        )
    }

    /// The executor this runner weighs jobs for.
    pub fn exec(&self) -> mpp_runtime::ExecMode {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_verifies_on_a_paragon() {
        let machine = Machine::paragon(4, 4);
        for &kind in AlgoKind::all() {
            let exp = Experiment {
                machine: &machine,
                dist: SourceDist::Equal,
                s: 5,
                msg_len: 256,
                kind,
            };
            let out = exp.run().expect("run failed");
            assert!(out.verified, "{} failed verification", kind.name());
            assert!(out.makespan_ns > 0);
        }
    }

    #[test]
    fn every_algorithm_verifies_on_a_t3d() {
        let machine = Machine::t3d(16, 7);
        for &kind in AlgoKind::all() {
            let exp = Experiment {
                machine: &machine,
                dist: SourceDist::Random { seed: 3 },
                s: 6,
                msg_len: 128,
                kind,
            };
            let out = exp.run().expect("run failed");
            assert!(out.verified, "{} failed on T3D", kind.name());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let machine = Machine::paragon(4, 5);
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Cross,
            s: 8,
            msg_len: 512,
            kind: AlgoKind::BrXySource,
        };
        let a = exp.run().expect("run failed");
        let b = exp.run().expect("run failed");
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.finish_ns, b.finish_ns);
    }

    #[test]
    fn variable_length_messages_verify() {
        let machine = Machine::paragon(4, 4);
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::DiagRight,
            s: 4,
            msg_len: 0, // ignored by run_with_lengths
            kind: AlgoKind::BrLin,
        };
        let out = exp
            .run_with_lengths(&|src| 64 + src * 32)
            .expect("run failed");
        assert!(out.verified);
    }

    #[test]
    fn sweep_runner_matches_sequential_bit_for_bit() {
        let machine = Machine::paragon(4, 4);
        let exps: Vec<Experiment> = [AlgoKind::BrLin, AlgoKind::TwoStep, AlgoKind::BrXySource]
            .iter()
            .flat_map(|&kind| [2usize, 5, 9].into_iter().map(move |s| (kind, s)))
            .map(|(kind, s)| Experiment {
                machine: &machine,
                dist: SourceDist::Equal,
                s,
                msg_len: 128,
                kind,
            })
            .collect();
        let seq = SweepRunner::sequential().run_experiments(&exps);
        let par = SweepRunner::sequential()
            .with_workers(4)
            .run_experiments(&exps);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert!(a.verified && b.verified);
            assert_eq!(a.makespan_ns, b.makespan_ns);
            assert_eq!(a.finish_ns, b.finish_ns);
            assert_eq!(a.contention_events, b.contention_events);
        }
    }

    #[test]
    fn sweep_map_preserves_input_order() {
        let runner = SweepRunner::sequential().with_workers(8);
        let out = runner.map((0..100usize).collect(), |_| 1, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_budget_admits_oversized_jobs() {
        // A job heavier than the whole budget must still run (clamped),
        // not deadlock.
        let runner = SweepRunner::sequential()
            .with_workers(3)
            .with_rank_budget(2);
        let out = runner.map(vec![64usize, 64, 64, 64], |&w| w, |w| w + 1);
        assert_eq!(out, vec![65, 65, 65, 65]);
    }

    #[test]
    fn sweep_handles_empty_grid() {
        let out: Vec<usize> = SweepRunner::new().map(Vec::<usize>::new(), |_| 1, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn sweep_map_finishes_healthy_points_before_resuming_a_panic() {
        use std::sync::atomic::AtomicUsize;
        tests_hush_deliberate_panics();
        for workers in [1usize, 4] {
            let done = AtomicUsize::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                SweepRunner::sequential().with_workers(workers).map(
                    (0..16usize).collect(),
                    |_| 1,
                    |i| {
                        if i == 3 || i == 11 {
                            panic!("deliberate test panic in point {i}");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                        i
                    },
                )
            }));
            let payload = caught.expect_err("the sweep must resume the point's panic");
            let msg = payload
                .downcast_ref::<String>()
                .expect("panic payload is the formatted message");
            // The earliest bad point's panic is the one resumed...
            assert!(msg.contains("point 3"), "got {msg:?}");
            // ...and only after every healthy point completed.
            assert_eq!(done.load(Ordering::Relaxed), 14, "workers={workers}");
        }
    }

    #[test]
    fn env_warnings_fire_once_per_process() {
        assert!(first_env_warning("STP_TEST_WARN_ONCE"));
        assert!(!first_env_warning("STP_TEST_WARN_ONCE"));
        assert!(first_env_warning("STP_TEST_WARN_TWICE"));
        assert!(!first_env_warning("STP_TEST_WARN_TWICE"));
    }

    #[test]
    fn env_usize_parses_and_warns() {
        // Valid values (with surrounding whitespace) parse.
        assert_eq!(parse_env_usize("STP_SWEEP_WORKERS", "8"), Some(8));
        assert_eq!(
            parse_env_usize("STP_SWEEP_RANK_BUDGET", " 512\n"),
            Some(512)
        );
        assert_eq!(parse_env_usize("STP_SWEEP_WORKERS", "0"), Some(0));
        // Malformed values are rejected (with a warning) so the caller
        // falls back to its default — never silently misconfigured.
        assert_eq!(parse_env_usize("STP_SWEEP_WORKERS", "eight"), None);
        assert_eq!(parse_env_usize("STP_SWEEP_WORKERS", "-4"), None);
        assert_eq!(parse_env_usize("STP_SWEEP_WORKERS", "4.5"), None);
        assert_eq!(parse_env_usize("STP_SWEEP_WORKERS", ""), None);
    }

    #[test]
    fn faulted_run_delivers_with_retries() {
        let machine = Machine::paragon(4, 4);
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 5,
            msg_len: 256,
            kind: AlgoKind::BrXySource,
        };
        let plan = FaultPlan::transient_drops(9, 1, 8, 6);
        let out = exp.run_with_faults(&plan).expect("run failed");
        assert!(out.verified, "retry must restore full delivery");
        let retransmits: u64 = out.stats.iter().map(|s| s.retransmits).sum();
        assert!(retransmits > 0, "a 1/8 drop rate must hit some message");
        assert!(out.stats.iter().all(|s| s.dropped == 0));
        // The same plan is deterministic.
        let again = exp.run_with_faults(&plan).expect("run failed");
        assert_eq!(out.makespan_ns, again.makespan_ns);
        assert_eq!(out.finish_ns, again.finish_ns);
    }

    #[test]
    fn mpi_lib_is_slower_than_nx_on_paragon() {
        let machine = Machine::paragon(4, 4);
        let exp = Experiment {
            machine: &machine,
            dist: SourceDist::Equal,
            s: 6,
            msg_len: 1024,
            kind: AlgoKind::TwoStep,
        };
        let nx = exp.run_with_lib(LibraryKind::Nx).expect("run failed");
        let mpi = exp.run_with_lib(LibraryKind::Mpi).expect("run failed");
        assert!(mpi.makespan_ns > nx.makespan_ns);
        let pct = (mpi.makespan_ns - nx.makespan_ns) as f64 / nx.makespan_ns as f64 * 100.0;
        assert!(
            pct < 6.0,
            "MPI overhead {pct:.1}% outside the paper's 2-5% band"
        );
    }
}

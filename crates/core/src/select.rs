//! Algorithm selection — the paper's conclusions as executable advice.
//!
//! Paper §5.2 gives three conditions under which repositioning pays on
//! the Paragon (moderate `s < p/2`, `p > 16`, `1 KiB ≤ L ≤ 16 KiB`), and
//! §5.3 concludes that on the T3D — where the network is fast relative
//! to software costs — the wait-free `MPI_Alltoall` wins. This module
//! turns those findings into a recommendation function, which the
//! `algorithm_picker` example and the ablation benches exercise.

use mpp_model::Machine;

use crate::runner::AlgoKind;

/// Coarse classification of a machine's cost regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostRegime {
    /// Network-dominated: per-byte network cost exceeds the local copy
    /// cost (Paragon-like). Message combining pays.
    NetworkBound,
    /// Software-dominated: the network is fast enough that per-message
    /// software costs and combining dominate (T3D-like).
    SoftwareBound,
}

/// Classify a machine by comparing its per-byte network and memcpy costs.
pub fn cost_regime(machine: &Machine) -> CostRegime {
    if machine.params.gamma_ns_x1024 >= machine.params.beta_ns_x1024 {
        CostRegime::SoftwareBound
    } else {
        CostRegime::NetworkBound
    }
}

/// Recommend an algorithm for `s` sources of `msg_len` bytes on
/// `machine`, following the paper's conclusions:
///
/// * software-bound machines (T3D): `MPI_Alltoall` — minimal wait cost,
///   no combining;
/// * network-bound machines with k ≥ 2 injection ports per node:
///   `KPort_Lin` — the port-striped lanes roughly divide the dominant
///   wire time by k (≈2× at k = 5 on the Paragon figure workloads),
///   which no single-port merge schedule can recover;
/// * network-bound single-port machines (Paragon) where all three
///   repositioning conditions hold: `Repos_xy_source`;
/// * otherwise: `Br_xy_source` (best all-round merge algorithm).
pub fn recommend(machine: &Machine, s: usize, msg_len: usize) -> AlgoKind {
    let p = machine.p();
    match cost_regime(machine) {
        CostRegime::SoftwareBound => AlgoKind::MpiAlltoall,
        CostRegime::NetworkBound => {
            if machine.params.ports_per_node >= 2 {
                return AlgoKind::KPortLin;
            }
            let moderate_sources = s < p / 2;
            let big_enough_machine = p > 16;
            let length_band = (1024..=16 * 1024).contains(&msg_len);
            if moderate_sources && big_enough_machine && length_band {
                AlgoKind::ReposXySource
            } else {
                AlgoKind::BrXySource
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragon_is_network_bound() {
        assert_eq!(
            cost_regime(&Machine::paragon(10, 10)),
            CostRegime::NetworkBound
        );
    }

    #[test]
    fn t3d_is_software_bound() {
        assert_eq!(
            cost_regime(&Machine::t3d(128, 0)),
            CostRegime::SoftwareBound
        );
    }

    #[test]
    fn t3d_gets_alltoall() {
        assert_eq!(
            recommend(&Machine::t3d(128, 0), 40, 4096),
            AlgoKind::MpiAlltoall
        );
    }

    #[test]
    fn multiport_paragon_gets_kport() {
        // A multi-ported network-bound machine should stripe its lanes
        // across the ports regardless of the repositioning conditions.
        let mut m = Machine::paragon(16, 16);
        m.params = m.params.clone().with_ports(5);
        assert_eq!(recommend(&m, 75, 6 * 1024), AlgoKind::KPortLin);
        assert_eq!(recommend(&m, 200, 128), AlgoKind::KPortLin);
        // The T3D has six ports but is software-bound: combining (and
        // thus lane-merging) loses to the wait-free direct exchange.
        assert_eq!(
            recommend(&Machine::t3d(128, 0), 40, 4096),
            AlgoKind::MpiAlltoall
        );
    }

    #[test]
    fn paragon_sweet_spot_gets_repositioning() {
        let m = Machine::paragon(16, 16);
        assert_eq!(recommend(&m, 75, 6 * 1024), AlgoKind::ReposXySource);
    }

    #[test]
    fn paragon_outside_conditions_gets_plain_xy() {
        let m = Machine::paragon(16, 16);
        // too many sources
        assert_eq!(recommend(&m, 200, 4096), AlgoKind::BrXySource);
        // tiny machine
        assert_eq!(
            recommend(&Machine::paragon(4, 4), 3, 4096),
            AlgoKind::BrXySource
        );
        // tiny messages
        assert_eq!(recommend(&m, 75, 128), AlgoKind::BrXySource);
        // huge messages
        assert_eq!(recommend(&m, 75, 64 * 1024), AlgoKind::BrXySource);
    }
}

//! `stp serve` — a long-running broadcast-planning daemon.
//!
//! The paper's central result is that the best s-to-p broadcast
//! algorithm depends on machine shape, source count, and message length
//! — exactly the query a production planner answers per request. This
//! module turns the one-shot CLI into that service: newline-delimited
//! JSON requests over a local TCP or Unix socket, each carrying a
//! machine shape + source distribution + `L` + ports + fault budget,
//! answered with the chosen algorithm, its predicted and simulated
//! cost, and a ready-to-replay schedule recipe.
//!
//! Architecture (see DESIGN.md §12):
//!
//! * **Request lifecycle** — a connection thread parses each line and
//!   resolves it to a [`PlanSpec`] (including running [`recommend`] for
//!   `"algo":"auto"`, so auto and explicit requests share cache
//!   entries). Cache hits are answered directly on the connection
//!   thread; misses are handed to a bounded worker pool.
//! * **Supervised planning** — every cold plan runs as a one-point
//!   supervised sweep
//!   ([`SweepRunner::map_supervised`](crate::runner::SweepRunner)):
//!   `catch_unwind` containment, no retries (deterministic simulations
//!   fail deterministically), and a per-request wall-clock deadline
//!   armed on the request's own [`CancelToken`] — a poisoned or
//!   runaway request is quarantined with an error response, never the
//!   daemon.
//! * **Content-addressed cache** — results are memoized under a
//!   canonical `(algo, dist, shape, exec, faults, ports, s, L, lint)`
//!   key (FNV-1a content hash as the entry id) in a bounded LRU
//!   [`PlanCache`], persisted through the checkpoint file's
//!   sig-guarded atomic tmp+rename discipline: a corrupt or
//!   differently-versioned store starts fresh, a `SIGKILL` mid-save
//!   leaves the previous complete store intact.
//! * **Shutdown** — `SIGTERM`/`SIGINT` (or a `{"cmd":"shutdown"}`
//!   request) set a shared flag; the accept loop drains connections,
//!   joins the worker pool, and flushes the cache before exiting.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use mpp_model::{FaultPlan, Machine};
use mpp_runtime::{CancelToken, ExecMode, SimBudget, SimError};

use crate::checkpoint::{json_escape, parse_json, Checkpoint, JsonValue};
use crate::distribution::SourceDist;
use crate::msgset::payload_for;
use crate::predict;
use crate::runner::{env_usize, try_record_sources, AlgoKind, RunControl, SweepRunner};
use crate::select::{cost_regime, recommend, CostRegime};
use crate::supervise::{chaos_algorithms, PointStatus, SuperviseOpts};

/// Cache store signature — bump when the plan body schema changes so a
/// stale persisted cache starts fresh instead of replaying old bodies.
pub const CACHE_SIG: &str = "serve-cache:v1";

/// FNV-1a over the canonical key string — the content address of a
/// plan. 64 bits is plenty for a bounded cache of distinct grid points
/// (and a collision would only cost a wrong-but-well-formed answer for
/// a hand-crafted key; the canonical string is stored nowhere else).
fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in data.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The algorithm a request resolved to.
#[derive(Debug, Clone)]
pub enum PlanAlgo {
    /// A real algorithm (either requested by name or chosen by
    /// [`recommend`] for `"algo":"auto"`).
    Kind(AlgoKind),
    /// A chaos fixture (`chaos:panic` / `chaos:deadlock`) — planned for
    /// real so the supervision plane can be exercised end-to-end.
    Chaos(&'static str),
}

/// A fully resolved planning request: everything needed to run (and
/// cache) one plan.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: String,
    /// The machine to plan for (ports already applied).
    pub machine: Machine,
    /// Canonical machine key (`paragon:10x10` / `t3d:p=128:seed=7`).
    pub machine_key: String,
    /// Injection/ejection ports per node.
    pub ports: usize,
    /// Source distribution.
    pub dist: SourceDist,
    /// Canonical distribution key (seed-qualified for `Random`).
    pub dist_key: String,
    /// Number of sources.
    pub s: usize,
    /// Message length in bytes (the paper's `L`).
    pub msg_len: usize,
    /// The resolved algorithm.
    pub algo: PlanAlgo,
    /// True when the request said `"algo":"auto"`.
    pub auto: bool,
    /// Deterministic fault plan, if any.
    pub faults: Option<FaultPlan>,
    /// Canonical fault key (`-` when faultless, else the spec string).
    pub faults_key: String,
    /// Executor the plan runs under.
    pub exec: ExecMode,
    /// Attach an analyzer lint report to the plan body.
    pub lint: bool,
    /// Per-request wall-clock deadline.
    pub deadline: Duration,
}

impl PlanSpec {
    /// The canonical content key. Field order follows the cache-key
    /// tuple the design names: `(algo, dist, shape, exec, faults,
    /// ports)`, then the remaining discriminating fields.
    pub fn canonical_key(&self) -> String {
        let algo = match &self.algo {
            PlanAlgo::Kind(k) => k.name(),
            PlanAlgo::Chaos(name) => name,
        };
        format!(
            "algo={algo}|dist={dist}|shape={shape}|exec={exec}|faults={faults}|ports={ports}|s={s}|L={len}|lint={lint}|machine={machine}",
            dist = self.dist_key,
            shape = format_args!("{}x{}", self.machine.shape.rows, self.machine.shape.cols),
            exec = self.exec.name(),
            faults = self.faults_key,
            ports = self.ports,
            s = self.s,
            len = self.msg_len,
            lint = u8::from(self.lint),
            machine = self.machine_key,
        )
    }

    /// The content address: FNV-1a of the canonical key, as 16 hex
    /// digits.
    pub fn cache_id(&self) -> String {
        format!("{:016x}", fnv1a(&self.canonical_key()))
    }
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// A planning request.
    Plan(Box<PlanSpec>),
    /// Liveness probe.
    Ping,
    /// Counters snapshot.
    Stats,
    /// Clean shutdown (flushes the cache).
    Shutdown,
}

fn get_usize(v: &JsonValue, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(m) => m
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn get_str<'v>(v: &'v JsonValue, key: &str) -> Result<Option<&'v str>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(m) => m
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a string")),
    }
}

fn get_bool(v: &JsonValue, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(m) => m
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a boolean")),
    }
}

/// Ceilings keeping one request's simulation bounded: the planner
/// serves interactive traffic, not capacity runs.
const MAX_P: usize = 4096;
const MAX_LEN: usize = 1 << 20;

/// Parse one request line against the given defaults. Every malformed
/// field is a clean `Err` (one error response), never a panic.
pub fn parse_request(
    line: &str,
    default_exec: ExecMode,
    default_deadline: Duration,
) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| format!("bad JSON: {e}"))?;
    if let Some(cmd) = get_str(&v, "cmd")? {
        return match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown cmd {other:?} (expected ping|stats|shutdown)"
            )),
        };
    }

    let id = get_str(&v, "id")?.unwrap_or("").to_string();
    let seed = get_usize(&v, "seed")?.unwrap_or(0) as u64;

    // Machine + ports.
    let machine_kind = get_str(&v, "machine")?.unwrap_or("paragon");
    let (mut machine, machine_key) = match machine_kind {
        "paragon" => {
            let rows = get_usize(&v, "rows")?.ok_or("paragon requests need \"rows\"")?;
            let cols = get_usize(&v, "cols")?.ok_or("paragon requests need \"cols\"")?;
            if rows == 0 || cols == 0 {
                return Err("mesh dimensions must be positive".into());
            }
            (
                Machine::paragon(rows, cols),
                format!("paragon:{rows}x{cols}"),
            )
        }
        "t3d" => {
            let p = get_usize(&v, "p")?.ok_or("t3d requests need \"p\"")?;
            if p == 0 {
                return Err("\"p\" must be positive".into());
            }
            (Machine::t3d(p, seed), format!("t3d:p={p}:seed={seed}"))
        }
        other => return Err(format!("unknown machine {other:?} (expected paragon|t3d)")),
    };
    if machine.p() > MAX_P {
        return Err(format!("machine too large: p={} > {MAX_P}", machine.p()));
    }
    if let Some(ports) = get_usize(&v, "ports")? {
        if ports == 0 {
            return Err("\"ports\" must be positive".into());
        }
        machine.params = machine.params.clone().with_ports(ports);
    }
    let ports = machine.params.ports_per_node;

    // Distribution + sources + length.
    let dist_name = get_str(&v, "dist")?.unwrap_or("equal");
    let dist = SourceDist::parse(dist_name, seed)
        .ok_or_else(|| format!("unknown distribution {dist_name:?}"))?;
    let dist_key = match &dist {
        SourceDist::Random { seed } => format!("Rand:{seed}"),
        d => d.name().to_string(),
    };
    let s = get_usize(&v, "s")?.ok_or("requests need \"s\" (number of sources)")?;
    if s == 0 || s > machine.p() {
        return Err(format!("s={s} outside 1..={}", machine.p()));
    }
    let msg_len = match get_usize(&v, "L")? {
        Some(l) => l,
        None => get_usize(&v, "len")?.unwrap_or(1024),
    };
    if msg_len > MAX_LEN {
        return Err(format!("L={msg_len} exceeds the {MAX_LEN}-byte ceiling"));
    }

    // Algorithm: auto (recommend), explicit name, or chaos fixture —
    // resolved *before* the cache key is formed, so auto and explicit
    // requests for the same point share one entry.
    let algo_name = get_str(&v, "algo")?.unwrap_or("auto");
    let (algo, auto) = if algo_name.eq_ignore_ascii_case("auto") {
        (PlanAlgo::Kind(recommend(&machine, s, msg_len)), true)
    } else if let Some((name, _)) = chaos_algorithms()
        .into_iter()
        .find(|(name, _)| *name == algo_name)
    {
        (PlanAlgo::Chaos(name), false)
    } else {
        let kind =
            AlgoKind::parse(algo_name).ok_or_else(|| format!("unknown algorithm {algo_name:?}"))?;
        (PlanAlgo::Kind(kind), false)
    };

    // Fault plan (canonical key is the spec string as given).
    let (faults, faults_key) = match get_str(&v, "faults")? {
        Some(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(spec).map_err(|e| format!("faults: {e}"))?;
            (Some(plan), spec.trim().to_string())
        }
        _ => (None, "-".to_string()),
    };

    // Executor: per-request override is *rejected* when invalid (the
    // request is wrong); only the daemon-level env default is lenient.
    let exec = match get_str(&v, "exec")? {
        Some(name) => ExecMode::parse(name).map_err(|e| format!("exec: {e}"))?,
        None => default_exec,
    };

    let lint = get_bool(&v, "lint")?.unwrap_or(false);
    let deadline = match get_usize(&v, "deadline_ms")? {
        Some(0) => return Err("\"deadline_ms\" must be positive".into()),
        Some(ms) => Duration::from_millis(ms as u64),
        None => default_deadline,
    };

    Ok(Request::Plan(Box::new(PlanSpec {
        id,
        machine,
        machine_key,
        ports,
        dist,
        dist_key,
        s,
        msg_len,
        algo,
        auto,
        faults,
        faults_key,
        exec,
        lint,
        deadline,
    })))
}

// ---------------------------------------------------------------------------
// Bounded persistent plan cache
// ---------------------------------------------------------------------------

struct CacheInner {
    store: Checkpoint,
    /// LRU stamps per entry id (monotone clock; least stamp evicts).
    stamps: HashMap<String, u64>,
    clock: u64,
    evictions: u64,
}

/// A bounded, persistent, content-addressed plan cache.
///
/// Entries map the FNV-1a content address of a [`PlanSpec`] to the
/// exact plan-body JSON the cold run produced, so a hit replays the
/// plan **byte-identically**. The store rides on [`Checkpoint`]:
/// sig-guarded (a schema bump or corrupt file starts fresh with a
/// warning, never a crash) and persisted through the atomic
/// tmp+rename+fsync discipline on every insert and on
/// [`flush`](PlanCache::flush).
pub struct PlanCache {
    path: Option<PathBuf>,
    cap: usize,
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// Open the cache. `path: None` keeps it in-memory only. A bound of
    /// `cap` entries is enforced on insert (least-recently-used entry
    /// evicted first).
    pub fn open(path: Option<PathBuf>, cap: usize) -> PlanCache {
        let store = match path.as_deref().map(Checkpoint::load) {
            Some(Ok(Some(cp))) if cp.sig() == CACHE_SIG => cp,
            Some(Ok(Some(cp))) => {
                eprintln!(
                    "note: plan cache has signature {:?} (want {CACHE_SIG:?}); starting fresh",
                    cp.sig()
                );
                Checkpoint::new(CACHE_SIG)
            }
            Some(Err(e)) => {
                eprintln!("warning: could not read plan cache: {e}; starting fresh");
                Checkpoint::new(CACHE_SIG)
            }
            // Missing or malformed (Checkpoint::load warns) — fresh.
            _ => Checkpoint::new(CACHE_SIG),
        };
        let mut inner = CacheInner {
            stamps: store.ids().map(|id| (id.to_string(), 0)).collect(),
            store,
            clock: 0,
            evictions: 0,
        };
        // An oversized store (cap lowered between runs) shrinks now.
        Self::evict_to_cap(&mut inner, cap);
        PlanCache {
            path,
            cap: cap.max(1),
            inner: Mutex::new(inner),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a plan body, refreshing its LRU stamp.
    pub fn get(&self, id: &str) -> Option<String> {
        let mut inner = self.lock();
        let body = inner.store.get(id).map(str::to_string)?;
        inner.clock += 1;
        let clock = inner.clock;
        inner.stamps.insert(id.to_string(), clock);
        Some(body)
    }

    /// Insert a plan body, evict past the cap, and persist (best
    /// effort — an I/O failure costs persistence, not the request).
    pub fn insert(&self, id: &str, body: &str) {
        let mut inner = self.lock();
        inner.store.insert(id, body);
        inner.clock += 1;
        let clock = inner.clock;
        inner.stamps.insert(id.to_string(), clock);
        Self::evict_to_cap(&mut inner, self.cap);
        if let Some(path) = &self.path {
            if let Err(e) = inner.store.save(path) {
                eprintln!("warning: could not save plan cache {}: {e}", path.display());
            }
        }
    }

    fn evict_to_cap(inner: &mut CacheInner, cap: usize) {
        while inner.store.len() > cap.max(1) {
            let Some(victim) = inner
                .stamps
                .iter()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(id, _)| id.clone())
            else {
                break;
            };
            inner.store.remove(&victim);
            inner.stamps.remove(&victim);
            inner.evictions += 1;
        }
    }

    /// Persist now (shutdown path).
    pub fn flush(&self) {
        let inner = self.lock();
        if let Some(path) = &self.path {
            if let Err(e) = inner.store.save(path) {
                eprintln!(
                    "warning: could not flush plan cache {}: {e}",
                    path.display()
                );
            }
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.lock().store.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the bound so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

/// Hook attaching an analyzer lint report to a plan body: given the
/// resolved spec, return the report JSON (or an error string). Injected
/// by the `stp` CLI — `stp-core` cannot depend on `stp-analyzer`.
pub type LintFn = dyn Fn(&PlanSpec) -> Result<String, String> + Send + Sync;

#[derive(Default)]
struct PlanStats {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    planned: AtomicU64,
    quarantined: AtomicU64,
    errors: AtomicU64,
}

/// Serve-daemon configuration (see the README's environment table).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address: `host:port` for TCP, an absolute path (or
    /// `unix:<path>`) for a Unix socket.
    pub addr: String,
    /// Persistent cache file (`None` = in-memory only).
    pub cache_path: Option<PathBuf>,
    /// Cache entry bound.
    pub cache_cap: usize,
    /// Cold-planning worker threads.
    pub workers: usize,
    /// Default per-request deadline.
    pub deadline: Duration,
    /// Default executor for plans.
    pub exec: ExecMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7411".to_string(),
            cache_path: None,
            cache_cap: 4096,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            deadline: Duration::from_secs(30),
            exec: ExecMode::default(),
        }
    }
}

impl ServeConfig {
    /// Defaults plus the environment: `STP_SERVE_ADDR`,
    /// `STP_SERVE_CACHE`, `STP_SERVE_CACHE_CAP`, `STP_SERVE_WORKERS`,
    /// `STP_SERVE_DEADLINE_MS`, and the (lenient — a daemon must not
    /// die on a typo'd deploy) `STP_EXEC`.
    pub fn from_env() -> Self {
        let mut config = ServeConfig {
            exec: ExecMode::from_env_lenient(),
            ..ServeConfig::default()
        };
        if let Ok(addr) = std::env::var("STP_SERVE_ADDR") {
            if !addr.trim().is_empty() {
                config.addr = addr.trim().to_string();
            }
        }
        if let Ok(path) = std::env::var("STP_SERVE_CACHE") {
            if !path.trim().is_empty() {
                config.cache_path = Some(PathBuf::from(path.trim()));
            }
        }
        if let Some(cap) = env_usize("STP_SERVE_CACHE_CAP") {
            config.cache_cap = cap.max(1);
        }
        if let Some(workers) = env_usize("STP_SERVE_WORKERS") {
            config.workers = workers.clamp(1, 64);
        }
        if let Some(ms) = env_usize("STP_SERVE_DEADLINE_MS") {
            config.deadline = Duration::from_millis(ms.max(1) as u64);
        }
        config
    }
}

/// The planning engine behind the daemon: parse → cache → supervised
/// cold run. Shared (`Arc`) between connection threads and the worker
/// pool; also usable directly (without a socket) from tests.
pub struct Planner {
    cache: PlanCache,
    exec: ExecMode,
    deadline: Duration,
    budget: SimBudget,
    lint: Option<Box<LintFn>>,
    stats: PlanStats,
}

impl Planner {
    /// Build a planner from the config (opens/repairs the cache).
    pub fn new(config: &ServeConfig, lint: Option<Box<LintFn>>) -> Planner {
        Planner {
            cache: PlanCache::open(config.cache_path.clone(), config.cache_cap),
            exec: config.exec,
            deadline: config.deadline,
            budget: SimBudget::from_env(),
            lint,
            stats: PlanStats::default(),
        }
    }

    /// Parse one request line against this planner's defaults.
    pub fn parse(&self, line: &str) -> Result<Request, String> {
        parse_request(line, self.exec, self.deadline)
    }

    /// The cache (tests inspect entry counts and evictions).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Serve a plan request end to end (cache hit or supervised cold
    /// run on the calling thread). Returns the full response line.
    /// The daemon splits this into [`lookup`](Planner::lookup) (on the
    /// connection thread) + [`execute`](Planner::execute) (on a pool
    /// worker); tests and single-threaded callers use this directly.
    pub fn plan(&self, spec: &PlanSpec) -> String {
        match self.lookup(spec) {
            Some(response) => response,
            None => self.execute(spec),
        }
    }

    /// Cache-hit fast path: `Some(response)` iff the plan is cached.
    pub fn lookup(&self, spec: &PlanSpec) -> Option<String> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let key = spec.cache_id();
        match self.cache.get(&key) {
            Some(body) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(ok_response(&spec.id, true, &key, &body))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Cold path: run the plan as a one-point supervised sweep, cache
    /// the body on success, and render the response line.
    pub fn execute(&self, spec: &PlanSpec) -> String {
        let key = spec.cache_id();
        let token = CancelToken::new();
        let opts = SuperviseOpts {
            retries: 0,
            deadline: Some(spec.deadline),
            cancel: token.clone(),
            budget: self.budget.clone(),
        };
        let statuses = SweepRunner::sequential().map_supervised(
            vec![()],
            |_| 1,
            |_| self.run_point(spec, &token),
            &opts,
            |_, _| {},
        );
        match statuses.into_iter().next() {
            Some(PointStatus::Done(Ok(body))) => {
                self.stats.planned.fetch_add(1, Ordering::Relaxed);
                self.cache.insert(&key, &body);
                ok_response(&spec.id, false, &key, &body)
            }
            Some(PointStatus::Done(Err(plan_error))) => {
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                error_response(&spec.id, &format!("plan failed: {plan_error}"), true)
            }
            Some(PointStatus::Failed { error, .. }) => {
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                error_response(&spec.id, &format!("quarantined: {error}"), true)
            }
            Some(PointStatus::Skipped) | None => {
                self.stats.errors.fetch_add(1, Ordering::Relaxed);
                error_response(&spec.id, "deadline exceeded", false)
            }
        }
    }

    /// One supervised grid point: simulate, verify, render the plan
    /// body. Outer `Err(SimError)` quarantines (rank panic, watchdog,
    /// strict violation); inner `Err(String)` is a clean plan failure
    /// (deadlocked schedule).
    fn run_point(
        &self,
        spec: &PlanSpec,
        token: &CancelToken,
    ) -> Result<Result<String, String>, SimError> {
        let sources = spec.dist.place(spec.machine.shape, spec.s);
        let len = spec.msg_len;
        let payload_of = move |src: usize| payload_for(src, len);
        let control = RunControl {
            faults: spec.faults.clone(),
            budget: self.budget.clone(),
            cancel: Some(token.clone()),
            exec: Some(spec.exec),
        };
        let (alg, lib, kind) = match &spec.algo {
            PlanAlgo::Kind(kind) => (kind.build(), kind.default_lib(), Some(*kind)),
            PlanAlgo::Chaos(name) => {
                let builder = chaos_algorithms()
                    .into_iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, b)| b)
                    .expect("chaos fixture resolved at parse time");
                (builder(), mpp_model::LibraryKind::Nx, None)
            }
        };
        let run = try_record_sources(
            &spec.machine,
            lib,
            &sources,
            &payload_of,
            alg.as_ref(),
            &control,
        )?;
        if run.deadlocked {
            return Ok(Err("simulation deadlocked: every rank blocked".into()));
        }
        let Some(outcome) = run.outcome else {
            return Ok(Err("simulation produced no outcome".into()));
        };

        let mut body = String::with_capacity(512);
        let algo_name = match &spec.algo {
            PlanAlgo::Kind(k) => k.name(),
            PlanAlgo::Chaos(name) => name,
        };
        let regime = match cost_regime(&spec.machine) {
            CostRegime::NetworkBound => "network_bound",
            CostRegime::SoftwareBound => "software_bound",
        };
        body.push_str(&format!(
            "{{\"algo\":\"{}\",\"auto\":{},\"regime\":\"{regime}\",\"machine\":\"{}\",\"shape\":\"{}x{}\",\"p\":{},\"ports\":{},\"exec\":\"{}\",\"dist\":\"{}\",\"s\":{},\"L\":{}",
            json_escape(algo_name),
            spec.auto,
            json_escape(&spec.machine.name),
            spec.machine.shape.rows,
            spec.machine.shape.cols,
            spec.machine.p(),
            spec.ports,
            spec.exec.name(),
            json_escape(&spec.dist_key),
            spec.s,
            spec.msg_len,
        ));
        body.push_str(&format!(
            ",\"faults\":\"{}\"",
            json_escape(&spec.faults_key)
        ));
        match kind.and_then(|k| predict::estimate_ms(&spec.machine, k, spec.s, spec.msg_len)) {
            Some(ms) => body.push_str(&format!(",\"predicted_ms\":{ms:.6}")),
            None => body.push_str(",\"predicted_ms\":null"),
        }
        // Virtual (simulated) time — never host wall-clock; the field
        // names carry the unit (see the BENCH record schema note).
        body.push_str(&format!(
            ",\"virtual_makespan_ms\":{:.6},\"virtual_makespan_ns\":{},\"verified\":{},\"contention_events\":{},\"contention_ns\":{}",
            outcome.makespan_ms(),
            outcome.makespan_ns,
            outcome.verified,
            outcome.contention_events,
            outcome.contention_ns,
        ));
        let sends = run
            .events
            .iter()
            .filter(|e| matches!(e, mpp_runtime::ScheduleEvent::Send { .. }))
            .count();
        let recvs = run
            .events
            .iter()
            .filter(|e| matches!(e, mpp_runtime::ScheduleEvent::Recv { .. }))
            .count();
        body.push_str(&format!(
            ",\"schedule\":{{\"events\":{},\"sends\":{sends},\"recvs\":{recvs}}}",
            run.events.len(),
        ));
        // The replay recipe: the simulation is deterministic, so the
        // source set + algorithm + machine spec re-derive the schedule.
        body.push_str(",\"replay\":{\"sources\":[");
        for (i, src) in outcome.sources.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&src.to_string());
        }
        body.push_str(&format!("],\"lib\":\"{}\"}}", lib.name()));
        if spec.lint {
            match &self.lint {
                Some(lint) => match lint(spec) {
                    Ok(report) => body.push_str(&format!(",\"lint\":{report}")),
                    Err(e) => return Ok(Err(format!("lint failed: {e}"))),
                },
                None => {
                    return Ok(Err(
                        "lint requested but this daemon has no analyzer attached".into(),
                    ))
                }
            }
        }
        body.push('}');
        Ok(Ok(body))
    }

    /// Note a non-plan request (ping/stats) in the counters.
    fn note_request(&self) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a malformed line.
    fn note_error(&self) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Flush the cache to disk (shutdown path).
    pub fn flush(&self) {
        self.cache.flush();
    }

    /// The counters, as one JSON object.
    pub fn stats_json(&self) -> String {
        let peak = peak_rss_kb().unwrap_or(0);
        format!(
            "{{\"requests\":{},\"hits\":{},\"misses\":{},\"planned\":{},\"quarantined\":{},\"errors\":{},\"entries\":{},\"evictions\":{},\"cache_cap\":{},\"peak_rss_kb\":{peak}}}",
            self.stats.requests.load(Ordering::Relaxed),
            self.stats.hits.load(Ordering::Relaxed),
            self.stats.misses.load(Ordering::Relaxed),
            self.stats.planned.load(Ordering::Relaxed),
            self.stats.quarantined.load(Ordering::Relaxed),
            self.stats.errors.load(Ordering::Relaxed),
            self.cache.len(),
            self.cache.evictions(),
            self.cache.cap,
        )
    }
}

fn ok_response(id: &str, cached: bool, key: &str, body: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"status\":\"ok\",\"cached\":{cached},\"key\":\"{key}\",\"plan\":{body}}}",
        json_escape(id),
    )
}

fn error_response(id: &str, error: &str, quarantined: bool) -> String {
    format!(
        "{{\"id\":\"{}\",\"status\":\"error\",\"quarantined\":{quarantined},\"error\":\"{}\"}}",
        json_escape(id),
        json_escape(error),
    )
}

/// Peak resident set size (`VmHWM`) in KiB from `/proc/self/status` —
/// the bounded-memory number `stp-loadgen` reports.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("VmHWM:"))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
}

// ---------------------------------------------------------------------------
// Signal-driven shutdown
// ---------------------------------------------------------------------------

static SIGNAL_FLAG: std::sync::OnceLock<Arc<AtomicBool>> = std::sync::OnceLock::new();

extern "C" fn on_shutdown_signal(_sig: i32) {
    // Async-signal-safe: one atomic store, no locks, no allocation.
    if let Some(flag) = SIGNAL_FLAG.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Route `SIGTERM`/`SIGINT` to `flag` so the accept loop shuts down
/// cleanly (drained pool, flushed cache). Uses the libc `signal` entry
/// point directly — the build is offline and carries no libc crate.
pub fn arm_signal_shutdown(flag: &Arc<AtomicBool>) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let _ = SIGNAL_FLAG.set(flag.clone());
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_shutdown_signal as *const () as usize);
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(Some(timeout)),
            Stream::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    /// Responses are a single small write each; Nagle + delayed ACK
    /// would otherwise stall every warm hit by ~40ms.
    fn set_nodelay(&self) {
        if let Stream::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

type Job = (Box<PlanSpec>, mpsc::Sender<String>);

/// The serve daemon: accept loop + connection threads + worker pool
/// around a shared [`Planner`].
pub struct Server {
    listener: Listener,
    addr: String,
    planner: Arc<Planner>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
}

impl Server {
    /// Bind the listen socket (TCP `host:port`, or a Unix socket for an
    /// absolute path / `unix:<path>` address). Port 0 picks a free
    /// port; read the bound address back with
    /// [`local_addr`](Server::local_addr).
    pub fn bind(config: &ServeConfig, lint: Option<Box<LintFn>>) -> io::Result<Server> {
        let raw = config.addr.trim();
        let (listener, addr) = if let Some(path) = raw
            .strip_prefix("unix:")
            .or_else(|| raw.starts_with('/').then_some(raw))
        {
            let path = PathBuf::from(path);
            // A previous unclean exit leaves the socket file behind;
            // rebinding the same path is the expected restart flow.
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path)?;
            let addr = format!("unix:{}", path.display());
            (Listener::Unix(listener, path), addr)
        } else {
            let listener = TcpListener::bind(raw)?;
            let addr = listener.local_addr()?.to_string();
            (Listener::Tcp(listener), addr)
        };
        Ok(Server {
            listener,
            addr,
            planner: Arc::new(Planner::new(config, lint)),
            shutdown: Arc::new(AtomicBool::new(false)),
            workers: config.workers.max(1),
        })
    }

    /// The bound address (`host:port` or `unix:<path>`).
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// The shared shutdown flag (hand it to
    /// [`arm_signal_shutdown`] or flip it from a test).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// The shared planner (tests inspect cache/stat counters).
    pub fn planner(&self) -> Arc<Planner> {
        self.planner.clone()
    }

    /// Serve until the shutdown flag is set, then drain: close the
    /// accept loop, join connections and workers, flush the cache.
    /// Returns the final stats JSON.
    pub fn run(self) -> io::Result<String> {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut worker_handles = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let planner = self.planner.clone();
            let job_rx = job_rx.clone();
            worker_handles.push(std::thread::spawn(move || loop {
                let job = {
                    let rx = job_rx.lock().unwrap_or_else(PoisonError::into_inner);
                    rx.recv()
                };
                let Ok((spec, reply)) = job else { break };
                let response = planner.execute(&spec);
                let _ = reply.send(response);
            }));
        }

        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            let accepted = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            match accepted {
                Ok(stream) => {
                    let planner = self.planner.clone();
                    let job_tx = job_tx.clone();
                    let shutdown = self.shutdown.clone();
                    conn_handles.push(std::thread::spawn(move || {
                        handle_connection(stream, planner, job_tx, shutdown);
                    }));
                    // Joined-and-done threads are reaped opportunistically
                    // so a long-lived daemon does not accumulate handles.
                    conn_handles.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }

        // Drain: connections observe the flag via their read timeout,
        // the pool closes when the last sender drops.
        for handle in conn_handles {
            let _ = handle.join();
        }
        drop(job_tx);
        for handle in worker_handles {
            let _ = handle.join();
        }
        self.planner.flush();
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        Ok(self.planner.stats_json())
    }
}

fn handle_connection(
    stream: Stream,
    planner: Arc<Planner>,
    job_tx: mpsc::Sender<Job>,
    shutdown: Arc<AtomicBool>,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if stream.set_read_timeout(Duration::from_millis(200)).is_err() {
        return;
    }
    stream.set_nodelay();
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    while !shutdown.load(Ordering::SeqCst) {
        // `line` is cleared after each processed request, not here: a
        // read timeout can leave a partial line behind, and the next
        // read must append to it, not drop it.
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        let (mut response, quit) = process_line(&line, &planner, &job_tx);
        line.clear();
        response.push('\n');
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if quit {
            shutdown.store(true, Ordering::SeqCst);
            break;
        }
    }
}

fn process_line(line: &str, planner: &Arc<Planner>, job_tx: &mpsc::Sender<Job>) -> (String, bool) {
    match planner.parse(line) {
        Err(e) => {
            planner.note_error();
            (error_response("", &e, false), false)
        }
        Ok(Request::Ping) => {
            planner.note_request();
            ("{\"status\":\"ok\",\"pong\":true}".to_string(), false)
        }
        Ok(Request::Stats) => {
            planner.note_request();
            (
                format!("{{\"status\":\"ok\",\"stats\":{}}}", planner.stats_json()),
                false,
            )
        }
        Ok(Request::Shutdown) => {
            planner.note_request();
            ("{\"status\":\"ok\",\"shutdown\":true}".to_string(), true)
        }
        Ok(Request::Plan(spec)) => {
            if let Some(response) = planner.lookup(&spec) {
                return (response, false);
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            if job_tx.send((spec, reply_tx)).is_err() {
                return (error_response("", "daemon is shutting down", false), false);
            }
            match reply_rx.recv() {
                Ok(response) => (response, false),
                Err(_) => (
                    error_response("", "worker pool dropped the request", false),
                    false,
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_plan(line: &str) -> Box<PlanSpec> {
        match parse_request(line, ExecMode::Cooperative, Duration::from_secs(5))
            .expect("parse failed")
        {
            Request::Plan(spec) => spec,
            other => panic!("expected a plan, got {other:?}"),
        }
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned reference values: the cache file format depends on
        // this hash staying put.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a("ab"), fnv1a("ba"));
    }

    #[test]
    fn auto_and_explicit_requests_share_a_cache_key() {
        let auto = parse_plan(
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":4096,"algo":"auto"}"#,
        );
        // recommend() picks Repos_xy_source for this point.
        let explicit = parse_plan(
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":4096,"algo":"Repos_xy_source"}"#,
        );
        assert!(auto.auto && !explicit.auto);
        assert_eq!(auto.canonical_key(), explicit.canonical_key());
        assert_eq!(auto.cache_id(), explicit.cache_id());
    }

    #[test]
    fn cache_key_discriminates_every_tuple_field() {
        let base = r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":4096,"algo":"Br_Lin"}"#;
        let variants = [
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":4096,"algo":"Br_xy_source"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"col","s":30,"L":4096,"algo":"Br_Lin"}"#,
            r#"{"machine":"paragon","rows":5,"cols":20,"dist":"row","s":30,"L":4096,"algo":"Br_Lin"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":4096,"algo":"Br_Lin","exec":"threaded"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":4096,"algo":"Br_Lin","faults":"drop=1/100,seed=3"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"ports":5,"dist":"row","s":30,"L":4096,"algo":"Br_Lin"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":31,"L":4096,"algo":"Br_Lin"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"row","s":30,"L":8192,"algo":"Br_Lin"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"dist":"rand","seed":9,"s":30,"L":4096,"algo":"Br_Lin"}"#,
        ];
        let base_key = parse_plan(base).canonical_key();
        for line in variants {
            assert_ne!(parse_plan(line).canonical_key(), base_key, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_clean_errors() {
        let cases = [
            "not json",
            r#"{"machine":"paragon","rows":10,"cols":10}"#, // no s
            r#"{"machine":"paragon","rows":10,"cols":10,"s":500}"#, // s > p
            r#"{"machine":"paragon","rows":10,"cols":10,"s":0}"#,
            r#"{"machine":"cm5","rows":4,"cols":4,"s":2}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"s":4,"algo":"nope"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"s":4,"dist":"nope"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"s":4,"exec":"treaded"}"#,
            r#"{"machine":"paragon","rows":10,"cols":10,"s":4,"faults":"bogus"}"#,
            r#"{"machine":"paragon","rows":200,"cols":200,"s":4}"#, // p cap
            r#"{"machine":"paragon","rows":10,"cols":10,"s":4,"deadline_ms":0}"#,
            r#"{"cmd":"reboot"}"#,
        ];
        for line in cases {
            let parsed = parse_request(line, ExecMode::Cooperative, Duration::from_secs(5));
            assert!(parsed.is_err(), "{line} should be rejected");
        }
    }

    #[test]
    fn cache_bound_evicts_least_recently_used() {
        let cache = PlanCache::open(None, 3);
        cache.insert("a", "1");
        cache.insert("b", "2");
        cache.insert("c", "3");
        // Refresh "a" so "b" is the LRU victim.
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        cache.insert("d", "4");
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("b").is_none(), "LRU entry must be evicted");
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.get("d").as_deref(), Some("4"));
    }

    #[test]
    fn cache_persists_and_corrupt_store_starts_fresh() {
        let mut path = std::env::temp_dir();
        path.push(format!("stp-serve-cache-test-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let cache = PlanCache::open(Some(path.clone()), 16);
            cache.insert("k1", "{\"algo\":\"Br_Lin\"}");
            cache.flush();
        }
        {
            let cache = PlanCache::open(Some(path.clone()), 16);
            assert_eq!(cache.get("k1").as_deref(), Some("{\"algo\":\"Br_Lin\"}"));
        }
        std::fs::write(&path, "corrupt { not json").unwrap();
        {
            let cache = PlanCache::open(Some(path.clone()), 16);
            assert!(cache.is_empty(), "corrupt store must start fresh");
            cache.insert("k2", "x");
        }
        {
            let cache = PlanCache::open(Some(path.clone()), 16);
            assert_eq!(cache.get("k2").as_deref(), Some("x"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn planner_round_trip_is_byte_identical_and_cached() {
        let config = ServeConfig {
            cache_path: None,
            ..ServeConfig::default()
        };
        let planner = Planner::new(&config, None);
        let spec = parse_plan(
            r#"{"id":"q1","machine":"paragon","rows":4,"cols":4,"dist":"equal","s":4,"L":256,"algo":"Br_Lin"}"#,
        );
        let cold = planner.plan(&spec);
        let warm = planner.plan(&spec);
        assert!(cold.contains("\"cached\":false"), "{cold}");
        assert!(warm.contains("\"cached\":true"), "{warm}");
        let plan_of = |r: &str| r.split_once(",\"plan\":").map(|(_, p)| p.to_string());
        assert_eq!(plan_of(&cold), plan_of(&warm), "plan bodies must match");
        assert!(cold.contains("\"virtual_makespan_ms\""));
        assert!(cold.contains("\"verified\":true"));
        assert_eq!(planner.cache().len(), 1);
    }

    #[test]
    fn chaos_plan_is_quarantined_without_poisoning_the_cache() {
        crate::runner::tests_hush_deliberate_panics();
        let config = ServeConfig {
            cache_path: None,
            ..ServeConfig::default()
        };
        let planner = Planner::new(&config, None);
        let chaos = parse_plan(
            r#"{"id":"x","machine":"paragon","rows":4,"cols":4,"dist":"equal","s":2,"L":64,"algo":"chaos:panic"}"#,
        );
        let response = planner.plan(&chaos);
        assert!(response.contains("\"status\":\"error\""), "{response}");
        assert!(response.contains("\"quarantined\":true"), "{response}");
        assert_eq!(planner.cache().len(), 0, "failures must not be cached");
        // The planner still serves healthy requests afterwards.
        let healthy = parse_plan(
            r#"{"machine":"paragon","rows":4,"cols":4,"dist":"equal","s":4,"L":256,"algo":"auto"}"#,
        );
        assert!(planner.plan(&healthy).contains("\"status\":\"ok\""));
    }

    #[test]
    fn deadlocked_plan_fails_cleanly() {
        let config = ServeConfig {
            cache_path: None,
            ..ServeConfig::default()
        };
        let planner = Planner::new(&config, None);
        let spec = parse_plan(
            r#"{"machine":"paragon","rows":2,"cols":2,"dist":"equal","s":2,"L":64,"algo":"chaos:deadlock"}"#,
        );
        let response = planner.plan(&spec);
        assert!(response.contains("\"status\":\"error\""), "{response}");
        assert!(response.contains("deadlock"), "{response}");
        assert_eq!(planner.cache().len(), 0);
    }
}

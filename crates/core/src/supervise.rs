//! Supervised sweeps: panic-isolated grid points, retry + quarantine,
//! wall-clock deadlines, and cooperative cancellation.
//!
//! [`SweepRunner::map`](crate::runner::SweepRunner::map) executes grid
//! points in parallel but still *propagates* failures — the right
//! behaviour for benches, where a broken point means the bench is
//! broken. Long sweeps over possibly-broken algorithms (the lint
//! matrix, chaos-injection CI) instead go through
//! [`SweepRunner::map_supervised`]: every grid point runs under
//! `catch_unwind`, a failed point is retried once and then quarantined
//! as [`PointStatus::Failed`] with the error text, and the sweep always
//! completes every healthy point. A shared [`CancelToken`] — optionally
//! armed by a wall-clock deadline (`STP_SWEEP_DEADLINE_MS`) — aborts
//! the remainder of the sweep cleanly: in-flight simulations exit at
//! their next scheduling step, unstarted points come back
//! [`PointStatus::Skipped`] so a checkpoint/resume cycle re-runs them.
//!
//! The module also hosts the chaos-injection fixtures ([`ChaosPanic`],
//! [`ChaosDeadlock`]) that CI uses to prove the supervision plane works:
//! deliberately broken algorithms a supervised sweep must survive and
//! report, not die from.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread::JoinHandle;
use std::time::Duration;

use mpp_runtime::{CancelToken, CommFuture, Communicator, SimBudget, SimError};

use crate::algorithms::{StpAlgorithm, StpCtx};
use crate::msgset::MessageSet;
use crate::runner::{env_usize, SweepRunner};

/// Supervision policy for one sweep.
#[derive(Debug, Clone)]
pub struct SuperviseOpts {
    /// Re-runs granted to a failed point before it is quarantined.
    /// Deterministic simulations fail deterministically, so this guards
    /// against *host* flakiness (OOM kills, thread-spawn failures), not
    /// algorithm bugs. Default 1.
    pub retries: usize,
    /// Wall-clock budget for the whole sweep; on expiry the shared
    /// token is cancelled and the remaining points are skipped.
    pub deadline: Option<Duration>,
    /// The shared cancellation token. Cancel it from a signal handler
    /// or another thread to stop the sweep at the next point boundary.
    pub cancel: CancelToken,
    /// Per-run watchdog budget threaded into every grid point's
    /// simulation (livelock containment).
    pub budget: SimBudget,
}

impl Default for SuperviseOpts {
    fn default() -> Self {
        SuperviseOpts {
            retries: 1,
            deadline: None,
            cancel: CancelToken::new(),
            budget: SimBudget::from_env(),
        }
    }
}

impl SuperviseOpts {
    /// Defaults plus the environment overrides: `STP_SWEEP_DEADLINE_MS`
    /// (whole-sweep wall-clock budget) and `STP_WATCHDOG_EVENTS`
    /// (per-run event budget, via [`SimBudget::from_env`]).
    pub fn from_env() -> Self {
        let mut opts = SuperviseOpts::default();
        if let Some(ms) = env_usize("STP_SWEEP_DEADLINE_MS") {
            opts.deadline = Some(Duration::from_millis(ms as u64));
        }
        opts
    }

    /// Override the whole-sweep deadline.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Override the retry count.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Override the per-run watchdog budget.
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// How one supervised grid point ended.
#[derive(Debug)]
pub enum PointStatus<T> {
    /// The point completed; its result.
    Done(T),
    /// The point failed every attempt and was quarantined.
    Failed {
        /// Attempts consumed (1 + retries).
        attempts: usize,
        /// The final attempt's error or panic message.
        error: String,
    },
    /// The point was not run (or was cancelled mid-run) because the
    /// sweep was cancelled or hit its deadline. A checkpoint/resume
    /// cycle re-runs skipped points.
    Skipped,
}

impl<T> PointStatus<T> {
    /// True for [`PointStatus::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, PointStatus::Done(_))
    }

    /// The result, if the point completed.
    pub fn as_done(&self) -> Option<&T> {
        match self {
            PointStatus::Done(v) => Some(v),
            _ => None,
        }
    }

    /// Consume into the result, if the point completed.
    pub fn into_done(self) -> Option<T> {
        match self {
            PointStatus::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// `(done, failed, skipped)` counts over a finished supervised sweep.
pub fn tally<T>(statuses: &[PointStatus<T>]) -> (usize, usize, usize) {
    let done = statuses.iter().filter(|s| s.is_done()).count();
    let failed = statuses
        .iter()
        .filter(|s| matches!(s, PointStatus::Failed { .. }))
        .count();
    (done, failed, statuses.len() - done - failed)
}

/// Arms a background timer that cancels `token` after `after`, unless
/// dropped first (sweep finished under budget).
struct DeadlineGuard {
    stop_tx: mpsc::Sender<()>,
    timer: Option<JoinHandle<()>>,
}

impl DeadlineGuard {
    fn arm(after: Duration, token: CancelToken) -> Self {
        let (stop_tx, stop_rx) = mpsc::channel();
        let timer = std::thread::spawn(move || {
            if stop_rx.recv_timeout(after) == Err(RecvTimeoutError::Timeout) {
                token.cancel();
            }
        });
        DeadlineGuard {
            stop_tx,
            timer: Some(timer),
        }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        let _ = self.stop_tx.send(());
        if let Some(timer) = self.timer.take() {
            let _ = timer.join();
        }
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one point under the supervision policy: panic containment,
/// retry-once, cancellation awareness.
fn supervise_point<I, T>(
    item: &I,
    job: &(dyn Fn(&I) -> Result<T, SimError> + Sync),
    opts: &SuperviseOpts,
) -> PointStatus<T> {
    if opts.cancel.is_cancelled() {
        return PointStatus::Skipped;
    }
    let attempts = opts.retries + 1;
    let mut error = String::new();
    for _ in 0..attempts {
        match catch_unwind(AssertUnwindSafe(|| job(item))) {
            Ok(Ok(v)) => return PointStatus::Done(v),
            // The run was stopped by the sweep-level token, not by its
            // own bug: the point is unfinished work, not a failure.
            Ok(Err(SimError::Cancelled)) => return PointStatus::Skipped,
            Ok(Err(e)) => error = e.to_string(),
            Err(payload) => error = panic_message(payload),
        }
        if opts.cancel.is_cancelled() {
            return PointStatus::Skipped;
        }
    }
    PointStatus::Failed { attempts, error }
}

impl SweepRunner {
    /// [`map`](SweepRunner::map) under a supervision policy: each grid
    /// point runs under `catch_unwind`, failures are retried
    /// (`opts.retries`) and then quarantined as
    /// [`PointStatus::Failed`], and the shared token / deadline skips
    /// the remainder of the sweep on cancellation. Statuses come back
    /// in input order; `observe(index, &status)` fires as each point
    /// settles (checkpoint writers hook in here — it may be called
    /// concurrently from several workers).
    pub fn map_supervised<I, T, W, F, O>(
        &self,
        items: Vec<I>,
        weight: W,
        job: F,
        opts: &SuperviseOpts,
        observe: O,
    ) -> Vec<PointStatus<T>>
    where
        I: Send + Sync,
        T: Send,
        W: Fn(&I) -> usize + Sync,
        F: Fn(&I) -> Result<T, SimError> + Sync,
        O: Fn(usize, &PointStatus<T>) + Sync,
    {
        let _deadline = opts
            .deadline
            .map(|after| DeadlineGuard::arm(after, opts.cancel.clone()));
        let indexed: Vec<(usize, I)> = items.into_iter().enumerate().collect();
        self.map(
            indexed,
            |(_, item)| weight(item),
            |(index, item)| {
                let status = supervise_point(&item, &job, opts);
                observe(index, &status);
                status
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Chaos-injection fixtures
// ---------------------------------------------------------------------------

/// Panic message planted by [`ChaosPanic`] — panic-hook filters and the
/// failure-report assertions match on this text.
pub const CHAOS_PANIC_MSG: &str = "deliberate chaos panic";

/// A deliberately panicking algorithm: the highest rank panics before
/// communicating. A supervised sweep must quarantine this point as
/// [`PointStatus::Failed`] (kind `rank_panic`) and keep going.
pub struct ChaosPanic;

impl StpAlgorithm for ChaosPanic {
    fn name(&self) -> &'static str {
        "chaos:panic"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        _ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            if comm.rank() == comm.size() - 1 {
                panic!("{CHAOS_PANIC_MSG} on rank {}", comm.rank());
            }
            MessageSet::new()
        })
    }
}

/// A deliberately deadlocking algorithm: ring forwarding with an
/// off-by-one receive partner, so every rank blocks on a message nobody
/// sends. The kernel detects the full-machine deadlock instantly and a
/// supervised sweep quarantines the point (kind `deadlock`).
pub struct ChaosDeadlock;

impl StpAlgorithm for ChaosDeadlock {
    fn name(&self) -> &'static str {
        "chaos:deadlock"
    }

    fn run<'a>(
        &'a self,
        comm: &'a mut dyn Communicator,
        _ctx: &'a StpCtx<'a>,
    ) -> CommFuture<'a, MessageSet> {
        Box::pin(async move {
            let (me, p) = (comm.rank(), comm.size());
            comm.send((me + 1) % p, 9_900, &[me as u8]);
            let _ = comm.recv(Some((me + 2) % p), Some(9_900)).await;
            MessageSet::new()
        })
    }
}

/// Constructor for a chaos fixture algorithm.
pub type ChaosBuilder = fn() -> Box<dyn StpAlgorithm>;

/// The chaos fixtures by stable name, for `--chaos` flags and tests.
pub fn chaos_algorithms() -> Vec<(&'static str, ChaosBuilder)> {
    vec![
        ("chaos:panic", || Box::new(ChaosPanic)),
        ("chaos:deadlock", || Box::new(ChaosDeadlock)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn healthy_points_all_complete() {
        let observed = Mutex::new(Vec::new());
        let statuses = SweepRunner::sequential().with_workers(4).map_supervised(
            (0..12usize).collect(),
            |_| 1,
            |&i| Ok(i * 3),
            &SuperviseOpts::default(),
            |index, status: &PointStatus<usize>| {
                observed.lock().unwrap().push((index, status.is_done()));
            },
        );
        let (done, failed, skipped) = tally(&statuses);
        assert_eq!((done, failed, skipped), (12, 0, 0));
        for (i, s) in statuses.iter().enumerate() {
            assert_eq!(s.as_done(), Some(&(i * 3)));
        }
        let mut observed = observed.into_inner().unwrap();
        observed.sort();
        assert_eq!(
            observed,
            (0..12).map(|i| (i, true)).collect::<Vec<_>>(),
            "observer fires exactly once per point"
        );
    }

    #[test]
    fn failed_points_are_retried_then_quarantined() {
        crate::runner::tests_hush_deliberate_panics();
        let attempts_on_3 = AtomicUsize::new(0);
        let statuses = SweepRunner::sequential().with_workers(3).map_supervised(
            (0..8usize).collect(),
            |_| 1,
            |&i| {
                if i == 3 {
                    attempts_on_3.fetch_add(1, Ordering::Relaxed);
                    panic!("deliberate test panic in point {i}");
                }
                if i == 5 {
                    return Err(SimError::RankPanic {
                        rank: 0,
                        message: "synthetic".into(),
                    });
                }
                Ok(i)
            },
            &SuperviseOpts::default(),
            |_, _| {},
        );
        let (done, failed, skipped) = tally(&statuses);
        assert_eq!((done, failed, skipped), (6, 2, 0));
        assert_eq!(attempts_on_3.load(Ordering::Relaxed), 2, "retried once");
        match &statuses[3] {
            PointStatus::Failed { attempts, error } => {
                assert_eq!(*attempts, 2);
                assert!(error.contains("point 3"), "got {error:?}");
            }
            other => panic!("point 3 should be Failed, got {other:?}"),
        }
        match &statuses[5] {
            PointStatus::Failed { error, .. } => {
                assert!(error.contains("rank 0"), "got {error:?}")
            }
            other => panic!("point 5 should be Failed, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_sweep_skips_everything() {
        let opts = SuperviseOpts::default();
        opts.cancel.cancel();
        let ran = AtomicUsize::new(0);
        let statuses = SweepRunner::sequential().with_workers(4).map_supervised(
            (0..6usize).collect(),
            |_| 1,
            |&i| {
                ran.fetch_add(1, Ordering::Relaxed);
                Ok(i)
            },
            &opts,
            |_, _| {},
        );
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(tally(&statuses), (0, 0, 6));
    }

    #[test]
    fn a_cancelled_run_is_skipped_not_failed() {
        let statuses = SweepRunner::sequential().map_supervised(
            vec![0usize],
            |_| 1,
            |_| Err::<usize, _>(SimError::Cancelled),
            &SuperviseOpts::default(),
            |_, _| {},
        );
        assert!(matches!(statuses[0], PointStatus::Skipped));
    }

    #[test]
    fn deadline_guard_fires_and_disarms() {
        // Fires: a zero deadline cancels the token almost immediately.
        let token = CancelToken::new();
        let guard = DeadlineGuard::arm(Duration::ZERO, token.clone());
        let t0 = std::time::Instant::now();
        while !token.is_cancelled() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "deadline never fired"
            );
            std::thread::yield_now();
        }
        drop(guard);
        // Disarms: dropping the guard before expiry never cancels.
        let token = CancelToken::new();
        drop(DeadlineGuard::arm(Duration::from_secs(3600), token.clone()));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn chaos_fixtures_fail_with_the_right_error_kinds() {
        use crate::runner::{try_run_alg_controlled, RunControl};
        use mpp_model::{LibraryKind, Machine};
        use mpp_runtime::ExecMode;
        crate::runner::tests_hush_deliberate_panics();
        let machine = Machine::paragon(4, 4);
        let sources = vec![0usize, 5];
        let payload_of = |src: usize| vec![src as u8; 16];
        for exec in [ExecMode::Cooperative, ExecMode::Threaded] {
            let control = RunControl {
                exec: Some(exec),
                ..RunControl::default()
            };
            let err = try_run_alg_controlled(
                &machine,
                LibraryKind::Nx,
                &sources,
                &payload_of,
                &ChaosPanic,
                &control,
            )
            .expect_err("chaos:panic must fail");
            assert_eq!(err.kind(), "rank_panic", "{exec:?}: {err}");
            assert!(err.to_string().contains(CHAOS_PANIC_MSG), "{exec:?}: {err}");

            let err = try_run_alg_controlled(
                &machine,
                LibraryKind::Nx,
                &sources,
                &payload_of,
                &ChaosDeadlock,
                &control,
            )
            .expect_err("chaos:deadlock must fail");
            assert_eq!(err.kind(), "deadlock", "{exec:?}: {err}");
        }
    }
}

//! Golden pins for [`stp_core::select::recommend`] — the function every
//! serve-daemon `"algo":"auto"` request routes through, so a silent
//! change here silently changes (and mis-caches) production plans. The
//! table walks Paragon and T3D across ports {1, 5}, source-count bands
//! (sparse / exactly-half / dense) and message-length bands (below,
//! inside, and above the paper's 1 KiB–16 KiB repositioning window).
//!
//! These values are the paper's §5.2/§5.3 conclusions; changing any of
//! them is a behaviour change that must be made deliberately, with this
//! table updated in the same commit.

use mpp_model::Machine;
use stp_core::runner::AlgoKind;
use stp_core::select::{cost_regime, recommend, CostRegime};

fn paragon(rows: usize, cols: usize, ports: usize) -> Machine {
    let mut m = Machine::paragon(rows, cols);
    if ports > 1 {
        m.params = m.params.clone().with_ports(ports);
    }
    m
}

#[test]
fn regimes_are_pinned() {
    assert_eq!(
        cost_regime(&Machine::paragon(10, 10)),
        CostRegime::NetworkBound
    );
    // Port count never changes the regime — it is a β/γ comparison.
    assert_eq!(cost_regime(&paragon(10, 10, 5)), CostRegime::NetworkBound);
    assert_eq!(
        cost_regime(&Machine::t3d(128, 0)),
        CostRegime::SoftwareBound
    );
}

#[test]
fn paragon_single_port_golden_grid() {
    use AlgoKind::{BrXySource, ReposXySource};
    // (rows, cols, s, L) -> expected. p = 100, so s bands are
    // 30 (sparse, < p/2), 50 (exactly half — NOT < p/2), 90 (dense).
    let grid = [
        // L inside the repositioning window [1024, 16384]:
        (10, 10, 30, 1024, ReposXySource),
        (10, 10, 30, 4096, ReposXySource),
        (10, 10, 30, 16384, ReposXySource),
        (10, 10, 49, 16384, ReposXySource),
        // s = p/2 exactly: the paper's condition is strict.
        (10, 10, 50, 4096, BrXySource),
        (10, 10, 90, 4096, BrXySource),
        // L outside the window:
        (10, 10, 30, 512, BrXySource),
        (10, 10, 30, 1023, BrXySource),
        (10, 10, 30, 16385, BrXySource),
        (10, 10, 30, 65536, BrXySource),
        // Machine too small (p = 16 is not > 16) — never reposition:
        (4, 4, 3, 4096, BrXySource),
        (4, 4, 7, 4096, BrXySource),
        // Just over the size threshold (p = 20 > 16):
        (4, 5, 8, 4096, ReposXySource),
    ];
    for (rows, cols, s, len, expected) in grid {
        assert_eq!(
            recommend(&paragon(rows, cols, 1), s, len),
            expected,
            "paragon {rows}x{cols} ports=1 s={s} L={len}"
        );
    }
}

#[test]
fn paragon_five_port_golden_grid() {
    // With k >= 2 ports, lane striping beats every single-port merge
    // schedule on a network-bound machine: KPort_Lin regardless of the
    // repositioning conditions.
    for (rows, cols) in [(10, 10), (4, 4), (16, 16)] {
        for s in [3, 30, 50, 90_usize] {
            for len in [128, 4096, 65536] {
                let m = paragon(rows, cols, 5);
                if s > m.p() {
                    continue;
                }
                assert_eq!(
                    recommend(&m, s, len),
                    AlgoKind::KPortLin,
                    "paragon {rows}x{cols} ports=5 s={s} L={len}"
                );
            }
        }
    }
}

#[test]
fn t3d_golden_grid() {
    // Software-bound: the wait-free direct exchange wins everywhere —
    // sources, length, and the T3D's six ports are all irrelevant.
    for p in [64, 128, 256] {
        for s in [2, 16, 64_usize] {
            for len in [128, 4096, 65536] {
                if s > p {
                    continue;
                }
                assert_eq!(
                    recommend(&Machine::t3d(p, 0), s, len),
                    AlgoKind::MpiAlltoall,
                    "t3d p={p} s={s} L={len}"
                );
            }
        }
    }
}

#[test]
fn recommendation_is_placement_independent_on_t3d() {
    // The scattered-partition T3D variant keeps the same cost params,
    // so the recommendation must not depend on placement or seed.
    for seed in [0, 7, 99] {
        assert_eq!(
            recommend(&Machine::t3d_scattered(128, seed), 40, 4096),
            AlgoKind::MpiAlltoall,
            "t3d_scattered seed={seed}"
        );
    }
}

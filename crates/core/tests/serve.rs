//! End-to-end tests of the serve daemon over a real socket: identical
//! requests must hit the content-addressed cache with byte-identical
//! plans, a poisoned request must be quarantined without killing the
//! daemon or its cache, the per-request deadline must cut runaway
//! plans, and the persisted cache must survive a restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Once;
use std::time::Duration;

use stp_core::serve::{PlanCache, ServeConfig, Server, CACHE_SIG};

/// Silence the chaos fixture's deliberate rank panic (integration tests
/// cannot see the crate-internal hush hook).
fn hush() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("deliberate chaos panic") {
                default_hook(info);
            }
        }));
    });
}

fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("stp-serve-test-{tag}-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let writer = TcpStream::connect(addr).expect("connect to daemon");
        writer.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(writer.try_clone().unwrap()),
            writer,
        }
    }

    fn request(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        response.trim_end().to_string()
    }
}

/// Start a daemon on an ephemeral port; returns the client address and
/// the join handle delivering the final stats JSON.
fn start_daemon(config: ServeConfig) -> (String, std::thread::JoinHandle<String>) {
    hush();
    let server = Server::bind(&config, None).expect("bind daemon");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

fn plan_of(response: &str) -> &str {
    response
        .split_once(",\"plan\":")
        .map(|(_, plan)| plan)
        .expect("response carries a plan")
}

#[test]
fn daemon_round_trip_cache_quarantine_and_persistence() {
    let cache_path = temp_path("roundtrip");
    let (addr, handle) = start_daemon(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_path: Some(cache_path.clone()),
        cache_cap: 64,
        workers: 2,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr);

    assert_eq!(
        client.request("{\"cmd\":\"ping\"}"),
        "{\"status\":\"ok\",\"pong\":true}"
    );

    // Identical requests: cold then cached, byte-identical plan bodies.
    let req = "{\"id\":\"q\",\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\
               \"dist\":\"equal\",\"s\":4,\"L\":256,\"algo\":\"Br_Lin\"}";
    let cold = client.request(req);
    let warm = client.request(req);
    assert!(cold.contains("\"cached\":false"), "{cold}");
    assert!(warm.contains("\"cached\":true"), "{warm}");
    assert_eq!(
        plan_of(&cold),
        plan_of(&warm),
        "hit must replay byte-identically"
    );
    assert!(cold.contains("\"verified\":true"), "{cold}");

    // A second connection shares the same cache.
    let mut other = Client::connect(&addr);
    let warm2 = other.request(req);
    assert!(warm2.contains("\"cached\":true"), "{warm2}");
    assert_eq!(plan_of(&cold), plan_of(&warm2));

    // `auto` resolves to the same algorithm and thus the same entry:
    // recommend() picks Br_xy_source on a 4x4 (p = 16 is not > 16).
    let auto = client.request(
        "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"equal\",\
         \"s\":4,\"L\":256,\"algo\":\"auto\"}",
    );
    let explicit = client.request(
        "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"equal\",\
         \"s\":4,\"L\":256,\"algo\":\"Br_xy_source\"}",
    );
    assert!(auto.contains("\"cached\":false"), "{auto}");
    assert!(explicit.contains("\"cached\":true"), "{explicit}");

    // A poisoned request is quarantined; the daemon and cache live on.
    let chaos = client.request(
        "{\"id\":\"boom\",\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\
         \"dist\":\"equal\",\"s\":2,\"L\":64,\"algo\":\"chaos:panic\"}",
    );
    assert!(chaos.contains("\"status\":\"error\""), "{chaos}");
    assert!(chaos.contains("\"quarantined\":true"), "{chaos}");
    let after = client.request(req);
    assert!(
        after.contains("\"cached\":true"),
        "daemon must keep serving: {after}"
    );

    // Malformed input: one clean error response, connection stays up.
    let bad = client.request("{{{{");
    assert!(bad.contains("\"status\":\"error\""), "{bad}");
    assert_eq!(
        client.request("{\"cmd\":\"ping\"}"),
        "{\"status\":\"ok\",\"pong\":true}"
    );

    // Shutdown flushes the cache; stats confirm the quarantine count.
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert!(stats.contains("\"quarantined\":1"), "{stats}");
    let shut = client.request("{\"cmd\":\"shutdown\"}");
    assert!(shut.contains("\"shutdown\":true"), "{shut}");
    let final_stats = handle.join().expect("daemon thread");
    assert!(final_stats.contains("\"hits\":"), "{final_stats}");

    // The persisted store replays the plans after a restart.
    let reopened = PlanCache::open(Some(cache_path.clone()), 64);
    assert_eq!(reopened.len(), 2, "both planned points persisted");
    let _ = std::fs::remove_file(&cache_path);
}

#[test]
fn per_request_deadline_cuts_runaway_plans() {
    let (addr, handle) = start_daemon(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_path: None,
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr);
    // 1 ms is far below any 16x16 cold plan; the deadline must fire and
    // the response must be an error, not a hung daemon.
    let response = client.request(
        "{\"id\":\"slow\",\"machine\":\"paragon\",\"rows\":16,\"cols\":16,\
         \"dist\":\"equal\",\"s\":64,\"L\":16384,\"algo\":\"Br_Lin\",\"deadline_ms\":1}",
    );
    assert!(response.contains("\"status\":\"error\""), "{response}");
    // The daemon still serves fresh work afterwards.
    let ok = client.request(
        "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"equal\",\
         \"s\":4,\"L\":64,\"algo\":\"Br_Lin\"}",
    );
    assert!(ok.contains("\"status\":\"ok\""), "{ok}");
    client.request("{\"cmd\":\"shutdown\"}");
    handle.join().expect("daemon thread");
}

#[test]
fn corrupt_cache_store_starts_fresh_and_reseals() {
    let cache_path = temp_path("corrupt");
    std::fs::write(&cache_path, "garbage, not a checkpoint").unwrap();
    let (addr, handle) = start_daemon(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_path: Some(cache_path.clone()),
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr);
    let req = "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"row\",\
               \"s\":4,\"L\":128,\"algo\":\"Br_Lin\"}";
    assert!(client.request(req).contains("\"cached\":false"));
    assert!(client.request(req).contains("\"cached\":true"));
    client.request("{\"cmd\":\"shutdown\"}");
    handle.join().expect("daemon thread");
    // The rewritten store is now a valid, correctly-signed checkpoint.
    let cp = stp_core::checkpoint::Checkpoint::load(&cache_path)
        .expect("read cache")
        .expect("cache parses after reseal");
    assert_eq!(cp.sig(), CACHE_SIG);
    assert_eq!(cp.len(), 1);
    let _ = std::fs::remove_file(&cache_path);
}

//! Regression test for the serving-path `STP_EXEC` bug: constructors
//! documented as "ignores the environment overrides" called
//! `ExecMode::from_env()`, which panics on an unknown value — so a
//! typo'd `STP_EXEC` in a daemon's environment killed every request
//! (and `SweepRunner::sequential()` construction itself).
//!
//! This lives in its own integration-test binary because it poisons the
//! process environment: cargo runs each test file as a separate
//! process, so the bogus value cannot leak into other tests.

use mpp_runtime::ExecMode;
use stp_core::runner::SweepRunner;
use stp_core::serve::{Planner, Request, ServeConfig};

#[test]
fn bogus_stp_exec_cannot_kill_the_serving_path() {
    std::env::set_var("STP_EXEC", "bogus-executor");

    // The fallible probe reports the problem...
    assert!(ExecMode::try_from_env().is_err());
    // ...the lenient reader warns once and falls back to cooperative...
    assert_eq!(ExecMode::from_env_lenient(), ExecMode::Cooperative);
    // ...and the env-free constructors never look at all.
    assert_eq!(ExecMode::default(), ExecMode::Cooperative);
    let runner = SweepRunner::sequential();
    assert_eq!(runner.workers(), 1);

    // The whole daemon path works under the poisoned environment:
    // config, parse, cold plan, warm hit.
    let config = ServeConfig::from_env();
    assert_eq!(config.exec, ExecMode::Cooperative);
    let planner = Planner::new(
        &ServeConfig {
            cache_path: None,
            ..config
        },
        None,
    );
    let line = "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"equal\",\
                \"s\":4,\"L\":128,\"algo\":\"Br_Lin\"}";
    let Ok(Request::Plan(spec)) = planner.parse(line) else {
        panic!("plan request must parse under a bogus STP_EXEC");
    };
    let cold = planner.plan(&spec);
    assert!(cold.contains("\"status\":\"ok\""), "{cold}");
    assert!(cold.contains("\"cached\":false"), "{cold}");
    let warm = planner.plan(&spec);
    assert!(warm.contains("\"cached\":true"), "{warm}");

    // A *request-level* exec override is different: the request itself
    // is wrong, so it gets a clean per-request error, not a fallback.
    let bad = planner.parse(
        "{\"machine\":\"paragon\",\"rows\":4,\"cols\":4,\"dist\":\"equal\",\
         \"s\":4,\"L\":128,\"algo\":\"Br_Lin\",\"exec\":\"bogus\"}",
    );
    assert!(bad.is_err(), "per-request exec typos must be rejected");
}

#[test]
fn supervised_one_point_sweep_survives_bogus_exec() {
    std::env::set_var("STP_EXEC", "bogus-executor");
    use stp_core::supervise::SuperviseOpts;
    // The serve cold path in miniature: sequential supervised map with
    // a deadline — construction and execution must not panic.
    let opts = SuperviseOpts::default().with_deadline_ms(30_000);
    let statuses = SweepRunner::sequential().map_supervised(
        vec![1usize, 2, 3],
        |_| 1,
        |&i| Ok::<usize, mpp_runtime::SimError>(i * 2),
        &opts,
        |_, _| {},
    );
    assert_eq!(statuses.len(), 3);
    assert!(statuses.iter().all(|s| s.is_done()));
}

//! End-to-end tests of the supervised execution plane: a sweep with
//! deliberately broken algorithms (one panicking, one deadlocking) must
//! finish every healthy point and quarantine the bad ones on *both*
//! executors, and an interrupted sweep must resume from its checkpoint
//! replaying zero completed points with a byte-identical report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

use mpp_model::{LibraryKind, Machine};
use mpp_runtime::ExecMode;
use stp_core::checkpoint::CheckpointFile;
use stp_core::distribution::SourceDist;
use stp_core::msgset::payload_for;
use stp_core::runner::{
    try_run_alg_controlled, try_run_sources_controlled, AlgoKind, RunControl, SweepRunner,
};
use stp_core::supervise::{chaos_algorithms, PointStatus, SuperviseOpts};

/// Silence the two expected panic flavours (this is an integration test
/// — the crate-internal test hook is not visible here).
fn hush() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("deliberate chaos panic") && !msg.contains("simulation deadlock on") {
                default_hook(info);
            }
        }));
    });
}

/// One grid point: a real algorithm or a chaos fixture, by name.
struct Point {
    name: String,
    kind: Option<AlgoKind>,
    dist: SourceDist,
    s: usize,
}

/// A small mixed grid: twelve healthy points plus the two chaos
/// fixtures, chaos in the middle so healthy points run on both sides.
fn grid() -> Vec<Point> {
    let mut points = Vec::new();
    for kind in [AlgoKind::TwoStep, AlgoKind::BrLin, AlgoKind::BrXySource] {
        for dist in [SourceDist::Equal, SourceDist::Cross] {
            for s in [4usize, 16] {
                points.push(Point {
                    name: kind.name().to_string(),
                    kind: Some(kind),
                    dist: dist.clone(),
                    s,
                });
            }
        }
    }
    for (i, (name, _)) in chaos_algorithms().into_iter().enumerate() {
        points.insert(
            4 + i,
            Point {
                name: name.to_string(),
                kind: None,
                dist: SourceDist::Equal,
                s: 2,
            },
        );
    }
    points
}

fn point_id(pt: &Point) -> String {
    format!("{}/{}/s{}", pt.name, pt.dist.name(), pt.s)
}

/// Run one grid point to its deterministic record string (virtual
/// quantities only, so records are comparable across runs and resumes).
fn run_point(
    pt: &Point,
    exec: ExecMode,
    opts: &SuperviseOpts,
) -> Result<String, mpp_runtime::SimError> {
    let machine = Machine::paragon(4, 4);
    let sources = pt.dist.place(machine.shape, pt.s);
    let payload_of = |src: usize| payload_for(src, 256);
    let control = RunControl {
        faults: None,
        budget: opts.budget.clone(),
        cancel: Some(opts.cancel.clone()),
        exec: Some(exec),
    };
    let out = match pt.kind {
        Some(kind) => try_run_sources_controlled(
            &machine,
            kind.default_lib(),
            &sources,
            &payload_of,
            kind,
            &control,
        )?,
        None => {
            let build = chaos_algorithms()
                .into_iter()
                .find(|(name, _)| *name == pt.name)
                .expect("chaos fixture by name")
                .1;
            let alg = build();
            try_run_alg_controlled(
                &machine,
                LibraryKind::Nx,
                &sources,
                &payload_of,
                alg.as_ref(),
                &control,
            )?
        }
    };
    Ok(format!(
        "{}:makespan={},verified={}",
        point_id(pt),
        out.makespan_ns,
        out.verified
    ))
}

/// Supervised sweep over `points`, splicing checkpointed records in
/// verbatim. Returns the final report lines plus how many points the
/// job actually executed.
fn sweep(
    points: Vec<Point>,
    exec: ExecMode,
    checkpoint: Option<&CheckpointFile>,
) -> (Vec<String>, usize) {
    let opts = SuperviseOpts::default();
    let ids: Vec<String> = points.iter().map(point_id).collect();
    let mut slots: Vec<Option<PointStatus<String>>> = Vec::with_capacity(points.len());
    let mut to_run = Vec::new();
    let mut run_ids = Vec::new();
    for (pt, id) in points.into_iter().zip(&ids) {
        match checkpoint.and_then(|cp| cp.get(id)) {
            Some(record) => slots.push(Some(PointStatus::Done(record))),
            None => {
                slots.push(None);
                run_ids.push(id.clone());
                to_run.push(pt);
            }
        }
    }
    let executed = AtomicUsize::new(0);
    let run_ids = &run_ids;
    let opts_ref = &opts;
    let statuses = SweepRunner::new().map_supervised(
        to_run,
        |_| 1,
        |pt| {
            executed.fetch_add(1, Ordering::Relaxed);
            run_point(pt, exec, opts_ref)
        },
        &opts,
        |index, status| {
            if let (Some(cp), PointStatus::Done(record)) = (checkpoint, status) {
                cp.record(&run_ids[index], record);
            }
        },
    );
    let mut statuses = statuses.into_iter();
    for slot in slots.iter_mut() {
        if slot.is_none() {
            *slot = Some(statuses.next().expect("one status per fresh point"));
        }
    }
    let report = slots
        .into_iter()
        .zip(ids)
        .map(|(slot, id)| match slot.expect("slot filled") {
            PointStatus::Done(record) => record,
            PointStatus::Failed { attempts, error } => {
                format!("{id}:FAILED after {attempts} attempts: {error}")
            }
            PointStatus::Skipped => format!("{id}:SKIPPED"),
        })
        .collect();
    // Retries make `executed` overshoot the failed points; report the
    // number of *distinct* points the job saw instead.
    (report, executed.load(Ordering::Relaxed))
}

#[test]
fn chaos_sweep_finishes_healthy_points_on_both_executors() {
    hush();
    for exec in [ExecMode::Cooperative, ExecMode::Threaded] {
        let (report, _) = sweep(grid(), exec, None);
        assert_eq!(report.len(), 14, "{}: wrong point count", exec.name());
        let failed: Vec<&String> = report.iter().filter(|l| l.contains(":FAILED")).collect();
        assert_eq!(
            failed.len(),
            2,
            "{}: exactly the two chaos points must fail: {report:?}",
            exec.name()
        );
        let panic_line = failed
            .iter()
            .find(|l| l.starts_with("chaos:panic/"))
            .unwrap_or_else(|| panic!("{}: no chaos:panic failure in {failed:?}", exec.name()));
        assert!(
            panic_line.contains("deliberate chaos panic"),
            "{}: {panic_line}",
            exec.name()
        );
        let deadlock_line = failed
            .iter()
            .find(|l| l.starts_with("chaos:deadlock/"))
            .unwrap_or_else(|| panic!("{}: no chaos:deadlock failure in {failed:?}", exec.name()));
        assert!(
            deadlock_line.contains("simulation deadlock on"),
            "{}: {deadlock_line}",
            exec.name()
        );
        // Every healthy point completed and verified.
        let done = report
            .iter()
            .filter(|l| l.contains("verified=true"))
            .count();
        assert_eq!(done, 12, "{}: healthy points lost: {report:?}", exec.name());
        assert!(!report.iter().any(|l| l.contains(":SKIPPED")));
    }
}

#[test]
fn interrupted_sweep_resumes_without_replaying_completed_points() {
    hush();
    for exec in [ExecMode::Cooperative, ExecMode::Threaded] {
        let path = std::env::temp_dir().join(format!(
            "stp-supervision-{}-{}.ckpt",
            std::process::id(),
            exec.name()
        ));
        let _ = std::fs::remove_file(&path);
        let sig = format!("supervision-test:{}", exec.name());

        // The uninterrupted reference run.
        let (reference, ran_all) = sweep(grid(), exec, None);
        assert_eq!(ran_all, 14 + 2, "every point once, failed points twice");

        // "Interrupted" run: only the first half of the grid reaches the
        // checkpoint before the (simulated) kill.
        let cp = CheckpointFile::open(&path, &sig).expect("open checkpoint");
        let half: Vec<Point> = grid().into_iter().take(7).collect();
        let (_, ran_half) = sweep(half, exec, Some(&cp));
        let completed_half = cp.completed();
        assert!(completed_half >= 5, "most of the half-grid must complete");
        drop(cp);

        // Resume over the full grid: completed points replay verbatim,
        // only the remainder (and the failed chaos points) re-run.
        let cp = CheckpointFile::open(&path, &sig).expect("re-open checkpoint");
        assert_eq!(cp.completed(), completed_half, "checkpoint must persist");
        let (resumed, ran_resume) = sweep(grid(), exec, Some(&cp));
        assert_eq!(
            ran_resume,
            ran_all - completed_half,
            "{}: resume must replay zero completed points",
            exec.name()
        );
        assert_eq!(
            resumed,
            reference,
            "{}: resumed report must be byte-identical to the uninterrupted run",
            exec.name()
        );
        let _ = std::fs::remove_file(&path);
        let _ = ran_half;
    }
}

//! Deterministic fault plans: seeded per-transfer drop/delay decisions,
//! timed link outages, node crashes, and bounded retransmission.
//!
//! A [`FaultPlan`] is pure data — no clocks, no RNG streams. Every
//! decision ("is attempt `k` of message `seq` dropped?") is a pure hash
//! of `(seed, seq, attempt)`, so the same plan produces bit-identical
//! fault behaviour on any executor and any host, and is independent of
//! the order in which the simulator happens to ask. Structural faults
//! (link outages, node crashes) are windows in *virtual* time; the
//! router consults [`FaultPlan::dead_links_at`] at each transmission
//! attempt's injection instant.
//!
//! Plans are built programmatically or parsed from the compact spec
//! strings the `stp` CLI accepts (see [`FaultPlan::parse`]).

use std::collections::HashSet;

use crate::topology::{Link, NodeId, Topology};
use crate::Time;

/// A directed link forced down for a window of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutage {
    /// The affected directed link.
    pub link: Link,
    /// First instant the link is down (inclusive).
    pub from_ns: Time,
    /// Instant the link recovers (exclusive); `Time::MAX` means the
    /// link never comes back.
    pub until_ns: Time,
}

/// A node removed from service at a point in virtual time. All links
/// incident to the node (both directions) are dead from `at_ns` on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashed node.
    pub node: NodeId,
    /// Crash instant (inclusive).
    pub at_ns: Time,
}

/// Bounded retransmission with exponential backoff, in exact integer
/// virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per message (`1` = no retry).
    pub max_attempts: u32,
    /// Base backoff: attempt `k` (0-based) is injected
    /// `backoff_ns · (2^k − 1)` after the message was first ready, i.e.
    /// the gaps between consecutive attempts double each time.
    pub backoff_ns: Time,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_ns: 0,
        }
    }
}

impl RetryPolicy {
    /// Extra injection delay of attempt `attempt` relative to the
    /// message's first-ready instant: `backoff_ns · (2^attempt − 1)`.
    pub fn delay_for(self, attempt: u32) -> Time {
        if attempt == 0 || self.backoff_ns == 0 {
            return 0;
        }
        let factor = (1u64 << attempt.min(63)) - 1;
        self.backoff_ns.saturating_mul(factor)
    }
}

/// A complete, deterministic fault scenario.
///
/// The default plan is inert: nothing is dropped, delayed, or taken
/// down, and no retransmissions happen.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed of the per-transfer decision hash. Two plans with different
    /// seeds drop/delay different message sets at the same rates.
    pub seed: u64,
    /// Drop a transmission attempt with probability
    /// `drop_num / drop_den` (`drop_den == 0` disables drops).
    pub drop_num: u64,
    /// Denominator of the drop ratio.
    pub drop_den: u64,
    /// Delay an attempt's injection with probability
    /// `delay_num / delay_den` (`delay_den == 0` disables delays).
    pub delay_num: u64,
    /// Denominator of the delay ratio.
    pub delay_den: u64,
    /// Injection delay applied when the delay decision fires (ns).
    pub delay_ns: Time,
    /// Directed links down for explicit time windows.
    pub link_outages: Vec<LinkOutage>,
    /// Nodes that crash (their incident links die permanently).
    pub node_crashes: Vec<NodeCrash>,
    /// Retransmission policy for dropped or unroutable attempts.
    pub retry: RetryPolicy,
}

/// SplitMix64 finalizer — the avalanche core, used as a stateless hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An inert plan (equivalent to no fault injection at all).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that drops each transmission attempt with probability
    /// `num/den` and retries up to `max_attempts` times with `backoff_ns`
    /// exponential backoff — the canonical "transient loss" scenario.
    pub fn transient_drops(seed: u64, num: u64, den: u64, max_attempts: u32) -> Self {
        FaultPlan {
            seed,
            drop_num: num,
            drop_den: den,
            retry: RetryPolicy {
                max_attempts: max_attempts.max(1),
                backoff_ns: 500,
            },
            ..FaultPlan::default()
        }
    }

    /// True when the plan can never affect a run (no drops, delays,
    /// outages or crashes).
    pub fn is_inert(&self) -> bool {
        (self.drop_den == 0 || self.drop_num == 0)
            && (self.delay_den == 0 || self.delay_num == 0 || self.delay_ns == 0)
            && !self.has_structural_faults()
    }

    /// True when the plan contains link outages or node crashes (the
    /// faults that force rerouting).
    pub fn has_structural_faults(&self) -> bool {
        !self.link_outages.is_empty() || !self.node_crashes.is_empty()
    }

    /// Stateless decision hash for `(seq, attempt)` under `salt`
    /// (distinct salts keep the drop and delay decisions independent).
    fn decision(&self, seq: u64, attempt: u32, salt: u64) -> u64 {
        mix(self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seq.wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((attempt as u64) << 48)
            .wrapping_add(salt))
    }

    /// Whether transmission attempt `attempt` of message `seq` is
    /// dropped by the network.
    pub fn should_drop(&self, seq: u64, attempt: u32) -> bool {
        self.drop_den != 0 && self.decision(seq, attempt, 1) % self.drop_den < self.drop_num
    }

    /// Extra injection delay (ns) the network imposes on attempt
    /// `attempt` of message `seq` — `delay_ns` or 0.
    pub fn injection_delay_ns(&self, seq: u64, attempt: u32) -> Time {
        if self.delay_den != 0 && self.decision(seq, attempt, 2) % self.delay_den < self.delay_num {
            self.delay_ns
        } else {
            0
        }
    }

    /// The set of directed links dead at instant `t`: every link inside
    /// an active outage window, plus both directions of every link
    /// incident to an already-crashed node.
    pub fn dead_links_at(&self, t: Time, topology: &Topology) -> HashSet<Link> {
        let mut dead = HashSet::new();
        for o in &self.link_outages {
            if t >= o.from_ns && t < o.until_ns {
                dead.insert(o.link);
            }
        }
        for c in &self.node_crashes {
            if t >= c.at_ns && c.node < topology.num_nodes() {
                for nb in topology.neighbors(c.node) {
                    dead.insert(Link::new(c.node, nb));
                    dead.insert(Link::new(nb, c.node));
                }
            }
        }
        dead
    }

    /// Parse the compact spec strings the `stp` CLI accepts.
    ///
    /// Comma-separated `key=value` terms, each optional, in any order;
    /// `link` and `crash` may repeat:
    ///
    /// ```text
    /// seed=7                seed of the decision hash (default 0)
    /// drop=1/64             drop each attempt with probability 1/64
    /// delay=1/32:5000       delay 1/32 of attempts by 5000 ns
    /// link=3-4@1000..5000   link 3→4 down for [1000, 5000) ns
    /// link=3-4@1000..       link 3→4 down from 1000 ns forever
    /// crash=5@2000          node 5 crashes at 2000 ns
    /// retry=4:500           up to 4 attempts, 500 ns base backoff
    /// ```
    ///
    /// ```
    /// use mpp_model::fault::FaultPlan;
    /// let plan = FaultPlan::parse("seed=7,drop=1/64,retry=4:500").unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!((plan.drop_num, plan.drop_den), (1, 64));
    /// assert_eq!(plan.retry.max_attempts, 4);
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn num<T: std::str::FromStr>(what: &str, v: &str) -> Result<T, String> {
            v.trim()
                .parse()
                .map_err(|_| format!("fault spec: bad {what} {v:?}"))
        }
        let mut plan = FaultPlan::default();
        for term in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, val) = term
                .split_once('=')
                .ok_or_else(|| format!("fault spec term {term:?} is not key=value"))?;
            match key.trim() {
                "seed" => plan.seed = num("seed", val)?,
                "drop" => {
                    let (n, d) = val
                        .split_once('/')
                        .ok_or_else(|| format!("drop wants num/den, got {val:?}"))?;
                    plan.drop_num = num("drop numerator", n)?;
                    plan.drop_den = num("drop denominator", d)?;
                    if plan.drop_den == 0 {
                        return Err("drop denominator must be nonzero".into());
                    }
                }
                "delay" => {
                    let (ratio, ns) = val
                        .split_once(':')
                        .ok_or_else(|| format!("delay wants num/den:ns, got {val:?}"))?;
                    let (n, d) = ratio
                        .split_once('/')
                        .ok_or_else(|| format!("delay wants num/den:ns, got {val:?}"))?;
                    plan.delay_num = num("delay numerator", n)?;
                    plan.delay_den = num("delay denominator", d)?;
                    plan.delay_ns = num("delay ns", ns)?;
                    if plan.delay_den == 0 {
                        return Err("delay denominator must be nonzero".into());
                    }
                }
                "link" => {
                    let (ends, window) = val
                        .split_once('@')
                        .ok_or_else(|| format!("link wants from-to@start..end, got {val:?}"))?;
                    let (f, t) = ends
                        .split_once('-')
                        .ok_or_else(|| format!("link wants from-to@start..end, got {val:?}"))?;
                    let (start, end) = window
                        .split_once("..")
                        .ok_or_else(|| format!("link wants from-to@start..end, got {val:?}"))?;
                    let until_ns = if end.trim().is_empty() {
                        Time::MAX
                    } else {
                        num("link outage end", end)?
                    };
                    plan.link_outages.push(LinkOutage {
                        link: Link::new(num("link endpoint", f)?, num("link endpoint", t)?),
                        from_ns: num("link outage start", start)?,
                        until_ns,
                    });
                }
                "crash" => {
                    let (node, at) = val
                        .split_once('@')
                        .ok_or_else(|| format!("crash wants node@ns, got {val:?}"))?;
                    plan.node_crashes.push(NodeCrash {
                        node: num("crash node", node)?,
                        at_ns: num("crash time", at)?,
                    });
                }
                "retry" => {
                    let (attempts, backoff) = val
                        .split_once(':')
                        .ok_or_else(|| format!("retry wants attempts:backoff_ns, got {val:?}"))?;
                    plan.retry = RetryPolicy {
                        max_attempts: num::<u32>("retry attempts", attempts)?.max(1),
                        backoff_ns: num("retry backoff", backoff)?,
                    };
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_inert());
        assert!(!plan.should_drop(1, 0));
        assert_eq!(plan.injection_delay_ns(1, 0), 0);
        let topo = Topology::Linear { n: 4 };
        assert!(plan.dead_links_at(0, &topo).is_empty());
    }

    #[test]
    fn drop_decisions_are_pure_and_seed_sensitive() {
        let a = FaultPlan {
            seed: 1,
            drop_num: 1,
            drop_den: 4,
            ..FaultPlan::default()
        };
        // Pure: same question, same answer, regardless of call order.
        let first: Vec<bool> = (0..256).map(|seq| a.should_drop(seq, 0)).collect();
        let again: Vec<bool> = (0..256).map(|seq| a.should_drop(seq, 0)).collect();
        assert_eq!(first, again);
        // Roughly the configured rate.
        let dropped = first.iter().filter(|&&d| d).count();
        assert!(
            (20..110).contains(&dropped),
            "1/4 of 256 ≈ 64, got {dropped}"
        );
        // A different seed drops a different set.
        let b = FaultPlan {
            seed: 2,
            ..a.clone()
        };
        let other: Vec<bool> = (0..256).map(|seq| b.should_drop(seq, 0)).collect();
        assert_ne!(first, other);
        // Attempts decide independently: some dropped first attempt
        // succeeds on retry.
        assert!((0..256).any(|seq| a.should_drop(seq, 0) && !a.should_drop(seq, 1)));
    }

    #[test]
    fn backoff_is_exponential() {
        let r = RetryPolicy {
            max_attempts: 5,
            backoff_ns: 100,
        };
        assert_eq!(r.delay_for(0), 0);
        assert_eq!(r.delay_for(1), 100);
        assert_eq!(r.delay_for(2), 300);
        assert_eq!(r.delay_for(3), 700);
        // No overflow panic at absurd attempt counts.
        let _ = r.delay_for(200);
    }

    #[test]
    fn outage_windows_are_half_open() {
        let plan = FaultPlan {
            link_outages: vec![LinkOutage {
                link: Link::new(1, 2),
                from_ns: 100,
                until_ns: 200,
            }],
            ..FaultPlan::default()
        };
        let topo = Topology::Linear { n: 4 };
        assert!(plan.dead_links_at(99, &topo).is_empty());
        assert!(plan.dead_links_at(100, &topo).contains(&Link::new(1, 2)));
        assert!(plan.dead_links_at(199, &topo).contains(&Link::new(1, 2)));
        assert!(plan.dead_links_at(200, &topo).is_empty());
    }

    #[test]
    fn crash_kills_incident_links_permanently() {
        let plan = FaultPlan {
            node_crashes: vec![NodeCrash { node: 2, at_ns: 50 }],
            ..FaultPlan::default()
        };
        let topo = Topology::Linear { n: 4 };
        assert!(plan.dead_links_at(49, &topo).is_empty());
        let dead = plan.dead_links_at(50, &topo);
        assert_eq!(
            dead,
            HashSet::from([
                Link::new(2, 1),
                Link::new(1, 2),
                Link::new(2, 3),
                Link::new(3, 2)
            ])
        );
        assert_eq!(plan.dead_links_at(1 << 40, &topo).len(), 4);
    }

    #[test]
    fn parse_full_spec() {
        let plan =
            FaultPlan::parse("seed=7, drop=1/64, delay=1/32:5000, link=3-4@1000..5000, link=4-3@1000.., crash=5@2000, retry=4:500")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!((plan.drop_num, plan.drop_den), (1, 64));
        assert_eq!(
            (plan.delay_num, plan.delay_den, plan.delay_ns),
            (1, 32, 5000)
        );
        assert_eq!(plan.link_outages.len(), 2);
        assert_eq!(plan.link_outages[0].link, Link::new(3, 4));
        assert_eq!(plan.link_outages[0].until_ns, 5000);
        assert_eq!(plan.link_outages[1].until_ns, Time::MAX);
        assert_eq!(
            plan.node_crashes,
            vec![NodeCrash {
                node: 5,
                at_ns: 2000
            }]
        );
        assert_eq!(
            plan.retry,
            RetryPolicy {
                max_attempts: 4,
                backoff_ns: 500
            }
        );
        assert!(!plan.is_inert());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("drop=1").is_err());
        assert!(FaultPlan::parse("drop=1/0").is_err());
        assert!(FaultPlan::parse("link=3-4").is_err());
        assert!(FaultPlan::parse("retry=x:1").is_err());
        assert!(FaultPlan::parse("seed").is_err());
        // Empty spec is the inert plan.
        assert!(FaultPlan::parse("").unwrap().is_inert());
    }
}

//! Machine models for message-passing MPPs.
//!
//! This crate describes the *hardware* side of the reproduction: network
//! topologies (linear array, 2-D mesh, 3-D torus, hypercube), deterministic
//! dimension-ordered routing, per-machine cost parameters (software startup,
//! per-byte bandwidth, per-hop latency, memory-copy cost), and the mapping
//! from *virtual* processor ranks (what an application sees) to *physical*
//! network nodes.
//!
//! Two concrete machines from the paper are provided as presets:
//!
//! * [`Machine::paragon`] — the Intel Paragon: a 2-D mesh with
//!   dimension-ordered (XY) wormhole routing and identity placement
//!   (applications execute on sub-meshes of a specified dimension).
//! * [`Machine::t3d`] — the Cray T3D: a 3-D torus with higher link
//!   bandwidth and a *random* virtual-to-physical mapping, reflecting that
//!   production T3D users could not control placement.
//!
//! Everything here is pure data + arithmetic; the discrete-event engine
//! that consumes these models lives in `mpp-sim`.

pub mod fault;
pub mod machine;
pub mod params;
pub mod placement;
pub mod shape;
pub mod topology;

pub use fault::{FaultPlan, LinkOutage, NodeCrash, RetryPolicy};
pub use machine::Machine;
pub use params::{ContentionModel, LibraryKind, MachineParams};
pub use placement::Placement;
pub use shape::MeshShape;
pub use topology::{Link, NodeId, Topology};

/// Virtual time in nanoseconds. All simulator arithmetic is integral so
/// runs are bit-for-bit deterministic across platforms.
pub type Time = u64;

//! A complete machine: topology + cost parameters + placement + the
//! logical mesh shape applications see.

use crate::params::MachineParams;
use crate::placement::Placement;
use crate::shape::MeshShape;
use crate::topology::{Link, NodeId, Topology};

/// A fully-specified machine instance the simulator can execute on.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Human-readable name, e.g. `"Paragon 10x10 (NX)"`.
    pub name: String,
    /// Physical interconnect.
    pub topology: Topology,
    /// Cost parameters.
    pub params: MachineParams,
    /// Virtual-rank to physical-node mapping policy.
    pub placement: Placement,
    /// The logical grid applications index sources and dimensions with.
    pub shape: MeshShape,
    /// Materialized `rank -> node` map (placement applied).
    mapping: Vec<NodeId>,
}

impl Machine {
    /// Build a machine from parts, materializing the placement.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        params: MachineParams,
        placement: Placement,
        shape: MeshShape,
    ) -> Self {
        let p = shape.p();
        assert!(
            p <= topology.num_nodes(),
            "logical shape needs {p} nodes but topology has {}",
            topology.num_nodes()
        );
        params.validate();
        let mapping = placement.mapping(topology.num_nodes());
        Machine {
            name: name.into(),
            topology,
            params,
            placement,
            shape,
            mapping,
        }
    }

    /// An Intel Paragon sub-mesh of `rows × cols` nodes under NX.
    ///
    /// Physical topology equals the logical shape; identity placement
    /// (Paragon applications own a contiguous sub-mesh).
    ///
    /// ```
    /// let m = mpp_model::Machine::paragon(4, 8);
    /// assert_eq!(m.p(), 32);
    /// assert_eq!(m.distance(0, 31), 3 + 7); // Manhattan on the mesh
    /// ```
    pub fn paragon(rows: usize, cols: usize) -> Self {
        Machine::new(
            format!("Paragon {rows}x{cols}"),
            Topology::Mesh2D { rows, cols },
            MachineParams::paragon_nx(),
            Placement::Identity,
            MeshShape::new(rows, cols),
        )
    }

    /// A Cray T3D partition of `p` virtual processors under MPI.
    ///
    /// Physical topology is a near-cubic 3-D torus; the partition is a
    /// contiguous block at a seed-derived rotation — the user cannot
    /// *choose* the mapping on a production T3D, but consecutive virtual
    /// processors stay physically clustered. The logical shape used by
    /// source distributions is the near-square factorization of `p`.
    pub fn t3d(p: usize, seed: u64) -> Self {
        Machine::new(
            format!("T3D p={p}"),
            Topology::torus_for(p),
            MachineParams::t3d_mpi(),
            Placement::RotatedBlock { seed },
            MeshShape::near_square(p),
        )
    }

    /// An nCUBE-2-class hypercube MPP with `2^dim` nodes — an extension
    /// machine (the paper's related work is largely hypercube-based:
    /// Johnsson & Ho, Bokhari, Lan et al.). Paragon-class software costs
    /// with one channel per dimension modelled as multiple ports.
    pub fn hypercube(dim: u32) -> Self {
        let p = 1usize << dim;
        // One DMA channel per hypercube dimension was the nCUBE-2's
        // signature feature; model as parallel port slots.
        let params = MachineParams::paragon_nx().with_ports(dim.max(1) as usize);
        Machine::new(
            format!("Hypercube-{p}"),
            Topology::Hypercube { dim },
            params,
            Placement::Identity,
            MeshShape::near_square(p),
        )
    }

    /// A T3D variant whose ranks are *fully scattered* over the torus —
    /// the worst-case placement used by the placement ablation bench.
    pub fn t3d_scattered(p: usize, seed: u64) -> Self {
        Machine::new(
            format!("T3D p={p} (scattered)"),
            Topology::torus_for(p),
            MachineParams::t3d_mpi(),
            Placement::Random { seed },
            MeshShape::near_square(p),
        )
    }

    /// Number of virtual processors.
    #[inline]
    pub fn p(&self) -> usize {
        self.shape.p()
    }

    /// Physical node of a virtual rank.
    #[inline]
    pub fn node_of(&self, rank: usize) -> NodeId {
        self.mapping[rank]
    }

    /// Physical route between two virtual ranks (dimension-ordered).
    pub fn route(&self, from_rank: usize, to_rank: usize) -> Vec<Link> {
        self.topology
            .route(self.node_of(from_rank), self.node_of(to_rank))
    }

    /// Physical hop distance between two virtual ranks.
    #[inline]
    pub fn distance(&self, from_rank: usize, to_rank: usize) -> usize {
        self.topology
            .distance(self.node_of(from_rank), self.node_of(to_rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LibraryKind;

    #[test]
    fn paragon_is_identity_mapped() {
        let m = Machine::paragon(4, 5);
        assert_eq!(m.p(), 20);
        for r in 0..20 {
            assert_eq!(m.node_of(r), r);
        }
        assert_eq!(m.shape, MeshShape::new(4, 5));
    }

    #[test]
    fn paragon_route_matches_mesh() {
        let m = Machine::paragon(4, 4);
        assert_eq!(m.distance(0, 15), 6);
        assert_eq!(m.route(0, 15).len(), 6);
    }

    #[test]
    fn t3d_rotates_ranks() {
        let m = Machine::t3d(64, 99);
        assert_eq!(m.p(), 64);
        // bijection
        let mut seen = [false; 64];
        for r in 0..64 {
            let n = m.node_of(r);
            assert!(!seen[n]);
            seen[n] = true;
        }
        // consecutive ranks stay adjacent in node-id space (mod wrap)
        assert_eq!((m.node_of(0) + 1) % 64, m.node_of(1));
    }

    #[test]
    fn t3d_scattered_destroys_locality() {
        let m = Machine::t3d_scattered(64, 99);
        let moved = (0..64).filter(|&r| m.node_of(r) != r).count();
        assert!(moved > 32);
        let adjacent = (0..63)
            .filter(|&r| (m.node_of(r) + 1) % 64 == m.node_of(r + 1))
            .count();
        assert!(
            adjacent < 16,
            "random placement should break most adjacency"
        );
    }

    #[test]
    fn t3d_shape_is_logical_grid() {
        let m = Machine::t3d(128, 1);
        assert_eq!(m.shape, MeshShape::new(8, 16));
        match m.topology {
            Topology::Torus3D { dx, dy, dz } => assert_eq!(dx * dy * dz, 128),
            _ => panic!("T3D must be a torus"),
        }
    }

    #[test]
    fn machines_expose_calibrated_params() {
        let para = Machine::paragon(10, 10);
        let t3d = Machine::t3d(100, 0);
        assert!(t3d.params.alpha_send(LibraryKind::Mpi) < para.params.alpha_send(LibraryKind::Nx));
    }

    #[test]
    fn hypercube_machine() {
        let m = Machine::hypercube(5);
        assert_eq!(m.p(), 32);
        assert_eq!(m.topology.diameter(), 5);
        assert_eq!(m.params.ports_per_node, 5);
    }

    #[test]
    #[should_panic]
    fn shape_larger_than_topology_panics() {
        Machine::new(
            "bad",
            Topology::Linear { n: 4 },
            MachineParams::paragon_nx(),
            Placement::Identity,
            MeshShape::new(2, 4),
        );
    }
}

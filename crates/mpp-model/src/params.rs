//! Cost parameters of a machine's communication system.
//!
//! The timing model is the classic α–β (postal/LogGP-flavoured) model
//! extended with per-hop latency and link reservation:
//!
//! ```text
//! message of m bytes, route with h hops:
//!   sender software cost        α_send
//!   network occupancy           h·τ + m·β      (reserved on every link)
//!   receiver software cost      α_recv
//!   message-combining memcpy    m·γ            (charged explicitly)
//! ```
//!
//! Calibration targets the published characteristics the paper reports:
//! Paragon channels at 200 MB/s peak (≈70 MB/s effective under NX),
//! NX startup in the tens of microseconds, T3D channels at 300 MB/s with
//! lower-latency MPI built over shmem. MPI on the Paragon is modelled as
//! NX plus a small multiplicative overhead (the paper observed 2–5%).

/// How link contention is resolved in the network model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum ContentionModel {
    /// Pipelined wormhole: each link of a route is reserved for a
    /// staggered window; overlapping routes serialize on shared links
    /// only. The default — closest to the Paragon/T3D routers.
    #[default]
    Pipelined,
    /// Circuit-style: the entire route is held until the transfer
    /// drains. Overstates contention (models severe head-of-line
    /// blocking); used by the contention ablation to bound how much the
    /// paper's distribution gaps depend on blocking behaviour.
    Circuit,
    /// Bandwidth sharing: each link is a queueing server at the *link*
    /// rate (`beta_link`), which on the Paragon is ~3× the software
    /// injection rate — concurrent software-limited streams can share a
    /// physical channel with little slowdown. Understates head-of-line
    /// blocking; the optimistic bound of the ablation.
    Shared,
}

/// Which communication library "flavour" an algorithm runs under.
///
/// The paper compares Paragon NX against MPI implementations of the same
/// algorithms and observes a uniform 2–5% software penalty for MPI.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LibraryKind {
    /// Intel's native NX message-passing library.
    Nx,
    /// MPI over the native transport.
    Mpi,
}

impl LibraryKind {
    /// Human-readable short name.
    pub fn name(self) -> &'static str {
        match self {
            LibraryKind::Nx => "NX",
            LibraryKind::Mpi => "MPI",
        }
    }
}

/// Per-machine timing parameters. All times in nanoseconds; `beta`/`gamma`
/// are in nanoseconds per byte (stored ×1024 as integer ratios so the
/// simulator can stay in exact integer arithmetic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineParams {
    /// Software send startup per message (ns).
    pub alpha_send_ns: u64,
    /// Software receive completion cost per message (ns).
    pub alpha_recv_ns: u64,
    /// Network serialization cost, ns per byte, scaled by 1024
    /// (i.e. `beta_ns = beta_milli / 1024`).
    pub beta_ns_x1024: u64,
    /// Per-hop router latency (ns).
    pub tau_hop_ns: u64,
    /// Local memory-copy cost for message combining, ns per byte ×1024.
    pub gamma_ns_x1024: u64,
    /// Multiplicative software overhead for MPI, in parts-per-thousand
    /// added on top of the α costs (e.g. 35 = +3.5%).
    pub mpi_overhead_permille: u64,
    /// Independent injection/ejection ports per node. The Paragon NIC
    /// drives one channel at a time; each T3D interconnect node has six
    /// outgoing channels and can overlap transfers, modelled as parallel
    /// port slots.
    pub ports_per_node: usize,
    /// How overlapping transfers contend for links.
    pub contention: ContentionModel,
    /// Raw link serialization cost, ns per byte ×1024 (the hardware
    /// channel rate; only used by [`ContentionModel::Shared`]).
    pub beta_link_ns_x1024: u64,
}

impl MachineParams {
    /// Intel Paragon under the native NX library.
    ///
    /// ≈72 µs startup, ≈70 MB/s effective bandwidth (β ≈ 14.3 ns/B),
    /// sub-µs per-hop latency, i860 memcpy ≈160 MB/s (γ ≈ 6.25 ns/B).
    pub fn paragon_nx() -> Self {
        MachineParams {
            alpha_send_ns: 46_000,
            alpha_recv_ns: 26_000,
            beta_ns_x1024: (14.3 * 1024.0) as u64,
            tau_hop_ns: 400,
            gamma_ns_x1024: (6.25 * 1024.0) as u64,
            mpi_overhead_permille: 35,
            ports_per_node: 1,
            contention: ContentionModel::Pipelined,
            // 200 MB/s hardware channels (5 ns/B).
            beta_link_ns_x1024: 5 * 1024,
        }
    }

    /// Cray T3D under MPI.
    ///
    /// Lower startup (shmem-based MPI ≈22 µs split send/recv), 300 MB/s
    /// channels (β ≈ 3.3 ns/B), fast routers, but message combining costs
    /// relatively *much more* than the network (γ ≈ 22 ns/B ≈ 45 MB/s
    /// effective copy rate on the EV4), which is what flips the algorithm
    /// ranking on this machine (paper §5.3: Br_Lin loses "primarily due
    /// to the higher wait cost and the cost of combining messages").
    pub fn t3d_mpi() -> Self {
        MachineParams {
            alpha_send_ns: 14_000,
            alpha_recv_ns: 8_000,
            beta_ns_x1024: (3.33 * 1024.0) as u64,
            tau_hop_ns: 150,
            gamma_ns_x1024: (22.0 * 1024.0) as u64,
            mpi_overhead_permille: 0, // MPI is the baseline library here
            ports_per_node: 6,
            contention: ContentionModel::Pipelined,
            // 300 MB/s channels — the software path runs at channel rate.
            beta_link_ns_x1024: (3.33 * 1024.0) as u64,
        }
    }

    /// Builder: the same machine with `k` injection/ejection port slots
    /// per node. The canonical way to derive a multi-port variant of a
    /// calibrated parameter set (perf fixtures, k-ported benches).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` — a node with no ports cannot transmit, and
    /// letting zero through would force clamps back into every consumer.
    pub fn with_ports(self, k: usize) -> Self {
        assert!(k > 0, "a machine needs at least one port per node");
        MachineParams {
            ports_per_node: k,
            ..self
        }
    }

    /// Validate the parameter set; called by `Machine::new` so an
    /// invalid configuration is rejected at construction instead of
    /// being papered over with `.max(1)` clamps downstream.
    pub fn validate(&self) {
        assert!(
            self.ports_per_node > 0,
            "ports_per_node must be >= 1 (got 0); use with_ports(k)"
        );
    }

    /// Effective α_send under the given library.
    #[inline]
    pub fn alpha_send(&self, lib: LibraryKind) -> u64 {
        self.with_lib(self.alpha_send_ns, lib)
    }

    /// Effective α_recv under the given library.
    #[inline]
    pub fn alpha_recv(&self, lib: LibraryKind) -> u64 {
        self.with_lib(self.alpha_recv_ns, lib)
    }

    /// Network serialization time for `bytes` payload bytes (ns).
    #[inline]
    pub fn serialize_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.beta_ns_x1024) >> 10
    }

    /// Serialization time under a library flavour: MPI's extra buffering
    /// shows up as a slightly lower effective bandwidth, matching the
    /// paper's observed 2–5% overall MPI penalty.
    #[inline]
    pub fn serialize_ns_lib(&self, bytes: usize, lib: LibraryKind) -> u64 {
        self.with_lib(self.serialize_ns(bytes), lib)
    }

    /// Raw link (hardware channel) serialization time for `bytes` (ns).
    #[inline]
    pub fn link_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.beta_link_ns_x1024) >> 10
    }

    /// Memory-copy (combining) time for `bytes` bytes (ns).
    #[inline]
    pub fn memcpy_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * self.gamma_ns_x1024) >> 10
    }

    /// Router latency for an `hops`-hop route (ns).
    #[inline]
    pub fn hops_ns(&self, hops: usize) -> u64 {
        hops as u64 * self.tau_hop_ns
    }

    #[inline]
    fn with_lib(&self, base: u64, lib: LibraryKind) -> u64 {
        match lib {
            LibraryKind::Nx => base,
            LibraryKind::Mpi => base + base * self.mpi_overhead_permille / 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_costs_slightly_more_than_nx() {
        let p = MachineParams::paragon_nx();
        let nx = p.alpha_send(LibraryKind::Nx);
        let mpi = p.alpha_send(LibraryKind::Mpi);
        assert!(mpi > nx);
        let pct = (mpi - nx) as f64 / nx as f64;
        assert!(
            pct > 0.02 && pct < 0.05,
            "MPI overhead {pct} outside the paper's 2-5% band"
        );
    }

    #[test]
    fn serialization_is_linear() {
        let p = MachineParams::paragon_nx();
        let one = p.serialize_ns(1024);
        assert_eq!(p.serialize_ns(2048), 2 * one);
        assert_eq!(p.serialize_ns(0), 0);
    }

    #[test]
    fn t3d_has_more_bandwidth_than_paragon() {
        let para = MachineParams::paragon_nx();
        let t3d = MachineParams::t3d_mpi();
        assert!(t3d.serialize_ns(1 << 20) < para.serialize_ns(1 << 20));
        assert!(t3d.alpha_send(LibraryKind::Mpi) < para.alpha_send(LibraryKind::Nx));
    }

    #[test]
    fn t3d_memcpy_relatively_expensive() {
        // The T3D ranking flip requires γ to exceed β there, but not on the
        // Paragon.
        let para = MachineParams::paragon_nx();
        let t3d = MachineParams::t3d_mpi();
        assert!(t3d.gamma_ns_x1024 > t3d.beta_ns_x1024);
        assert!(para.gamma_ns_x1024 < para.beta_ns_x1024);
    }

    #[test]
    fn with_ports_builds_multi_port_variants() {
        let p = MachineParams::paragon_nx().with_ports(5);
        assert_eq!(p.ports_per_node, 5);
        // Everything else stays calibrated.
        assert_eq!(p.alpha_send_ns, MachineParams::paragon_nx().alpha_send_ns);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_is_rejected_at_construction() {
        let _ = MachineParams::paragon_nx().with_ports(0);
    }

    #[test]
    #[should_panic(expected = "ports_per_node")]
    fn validate_rejects_zero_ports() {
        let p = MachineParams {
            ports_per_node: 0,
            ..MachineParams::paragon_nx()
        };
        p.validate();
    }

    #[test]
    fn integer_model_rounds_down_consistently() {
        let p = MachineParams::paragon_nx();
        // 1 byte at 14.3ns/B -> floor((1*14643)/1024) = 14ns
        assert_eq!(p.serialize_ns(1), (p.beta_ns_x1024) >> 10);
    }
}

//! Virtual-to-physical processor placement.
//!
//! Algorithms address *virtual ranks* `0..p`. The machine maps each rank to
//! a physical node of its topology. On the Paragon an application owns a
//! contiguous sub-mesh, so the mapping is the identity; on the T3D the
//! paper stresses that "the mapping to physical processors cannot be
//! controlled by the user" — the default model is a contiguous block at
//! a seed-derived rotation ([`Placement::RotatedBlock`]; locality
//! survives, position is unknown), with a fully random bijection
//! ([`Placement::Random`]) kept for the placement ablation.

use crate::topology::NodeId;

/// Policy mapping virtual ranks onto physical nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Rank `i` runs on node `i`.
    Identity,
    /// A random bijection derived deterministically from the seed
    /// (Fisher–Yates over a SplitMix64 stream). A worst-case model of
    /// uncontrollable placement: all locality destroyed. Used by the
    /// placement ablation.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// A contiguous block at an unknown (seed-derived) rotation:
    /// rank `i` → node `(i + offset) mod n`. This models how production
    /// T3D partitions actually behaved — the user cannot *choose* the
    /// mapping, but consecutive virtual processors stay physically
    /// clustered, so communication locality survives.
    RotatedBlock {
        /// Offset seed.
        seed: u64,
    },
}

impl Placement {
    /// Materialize the mapping for `p` ranks: `result[rank] = node`.
    pub fn mapping(&self, p: usize) -> Vec<NodeId> {
        match *self {
            Placement::Identity => (0..p).collect(),
            Placement::Random { seed } => {
                let mut map: Vec<NodeId> = (0..p).collect();
                let mut state = SplitMix64::new(seed);
                // Fisher–Yates shuffle.
                for i in (1..p).rev() {
                    let j = (state.next() % (i as u64 + 1)) as usize;
                    map.swap(i, j);
                }
                map
            }
            Placement::RotatedBlock { seed } => {
                if p == 0 {
                    return Vec::new();
                }
                let offset = (SplitMix64::new(seed).next() % p as u64) as usize;
                (0..p).map(|i| (i + offset) % p).collect()
            }
        }
    }
}

/// Minimal deterministic PRNG (SplitMix64). Kept local so `mpp-model`
/// stays dependency-free; workload-level randomness elsewhere uses `rand`.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_straight_through() {
        assert_eq!(Placement::Identity.mapping(5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_is_a_bijection() {
        let m = Placement::Random { seed: 42 }.mapping(128);
        let mut seen = [false; 128];
        for &node in &m {
            assert!(!seen[node], "node {node} mapped twice");
            seen[node] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Placement::Random { seed: 7 }.mapping(64);
        let b = Placement::Random { seed: 7 }.mapping(64);
        assert_eq!(a, b);
        let c = Placement::Random { seed: 8 }.mapping(64);
        assert_ne!(a, c);
    }

    #[test]
    fn random_actually_permutes() {
        let m = Placement::Random { seed: 1 }.mapping(64);
        let moved = m.iter().enumerate().filter(|&(i, &n)| i != n).count();
        assert!(moved > 32, "suspiciously few ranks moved: {moved}");
    }

    #[test]
    fn empty_and_single() {
        assert!(Placement::Random { seed: 3 }.mapping(0).is_empty());
        assert_eq!(Placement::Random { seed: 3 }.mapping(1), vec![0]);
        assert!(Placement::RotatedBlock { seed: 3 }.mapping(0).is_empty());
    }

    #[test]
    fn rotated_block_preserves_adjacency() {
        let m = Placement::RotatedBlock { seed: 9 }.mapping(64);
        // bijection
        let mut seen = [false; 64];
        for &n in &m {
            assert!(!seen[n]);
            seen[n] = true;
        }
        // consecutive ranks stay consecutive (mod wrap)
        for w in m.windows(2) {
            assert_eq!((w[0] + 1) % 64, w[1]);
        }
    }

    #[test]
    fn rotated_block_is_seeded() {
        let a = Placement::RotatedBlock { seed: 1 }.mapping(128);
        let b = Placement::RotatedBlock { seed: 1 }.mapping(128);
        assert_eq!(a, b);
        let c = Placement::RotatedBlock { seed: 2 }.mapping(128);
        assert_ne!(a, c);
    }
}

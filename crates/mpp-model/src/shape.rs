//! The *logical* 2-D mesh shape algorithms and source distributions see.
//!
//! The paper defines its source distributions and the `Br_xy_*` algorithms
//! on an `r × c` processor grid indexed in row-major order. On the Paragon
//! this logical grid coincides with the physical sub-mesh; on the T3D it
//! is purely logical (virtual ranks laid out on a grid) while the physical
//! network is a 3-D torus with random placement.

/// A logical `rows × cols` grid over virtual ranks `0..rows*cols`,
/// row-major: rank of `(row, col)` is `row * cols + col`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MeshShape {
    /// Number of rows (`r` in the paper).
    pub rows: usize,
    /// Number of columns (`c` in the paper).
    pub cols: usize,
}

impl MeshShape {
    /// Construct a shape; panics on zero dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate mesh {rows}x{cols}");
        MeshShape { rows, cols }
    }

    /// Total processors `p = r·c`.
    #[inline]
    pub fn p(&self) -> usize {
        self.rows * self.cols
    }

    /// Rank of grid position `(row, col)`.
    #[inline]
    pub fn rank(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Grid position of `rank`.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.p());
        (rank / self.cols, rank % self.cols)
    }

    /// Ranks of row `row` in column order.
    pub fn row_ranks(&self, row: usize) -> Vec<usize> {
        (0..self.cols).map(|c| self.rank(row, c)).collect()
    }

    /// Ranks of column `col` in row order.
    pub fn col_ranks(&self, col: usize) -> Vec<usize> {
        (0..self.rows).map(|r| self.rank(r, col)).collect()
    }

    /// All ranks in snake-like (boustrophedon) row-major order: row 0
    /// left-to-right, row 1 right-to-left, … This is the linear order the
    /// paper suggests for `Br_Lin` on a mesh, keeping consecutive linear
    /// neighbours physically adjacent.
    pub fn snake_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.p());
        for r in 0..self.rows {
            if r % 2 == 0 {
                for c in 0..self.cols {
                    out.push(self.rank(r, c));
                }
            } else {
                for c in (0..self.cols).rev() {
                    out.push(self.rank(r, c));
                }
            }
        }
        out
    }

    /// A near-square factorization of `p` as a shape with `rows ≤ cols`.
    pub fn near_square(p: usize) -> Self {
        assert!(p > 0);
        let mut r = (p as f64).sqrt() as usize;
        while r > 1 && !p.is_multiple_of(r) {
            r -= 1;
        }
        let r = r.max(1);
        MeshShape::new(r, p / r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coord_roundtrip() {
        let m = MeshShape::new(4, 7);
        for rank in 0..m.p() {
            let (r, c) = m.coords(rank);
            assert_eq!(m.rank(r, c), rank);
        }
    }

    #[test]
    fn rows_and_cols() {
        let m = MeshShape::new(3, 4);
        assert_eq!(m.row_ranks(1), vec![4, 5, 6, 7]);
        assert_eq!(m.col_ranks(2), vec![2, 6, 10]);
    }

    #[test]
    fn snake_order_visits_all_once_and_is_adjacent() {
        let m = MeshShape::new(3, 4);
        let s = m.snake_order();
        assert_eq!(s.len(), 12);
        let mut seen = [false; 12];
        for &r in &s {
            assert!(!seen[r]);
            seen[r] = true;
        }
        // consecutive entries are grid-adjacent
        for w in s.windows(2) {
            let (r0, c0) = m.coords(w[0]);
            let (r1, c1) = m.coords(w[1]);
            assert_eq!(
                r0.abs_diff(r1) + c0.abs_diff(c1),
                1,
                "{:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(s[..4], [0, 1, 2, 3]);
        assert_eq!(s[4..8], [7, 6, 5, 4]);
    }

    #[test]
    fn near_square_factors() {
        assert_eq!(MeshShape::near_square(100), MeshShape::new(10, 10));
        assert_eq!(MeshShape::near_square(128), MeshShape::new(8, 16));
        assert_eq!(MeshShape::near_square(120), MeshShape::new(10, 12));
        assert_eq!(MeshShape::near_square(13), MeshShape::new(1, 13));
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        MeshShape::new(0, 4);
    }
}

//! Network topologies and deterministic dimension-ordered routing.
//!
//! A topology maps physical node ids to coordinates and produces, for any
//! ordered pair of nodes, the exact sequence of directed links a message
//! traverses. Routing is *dimension-ordered* everywhere (XY on meshes,
//! XYZ on tori, ascending-bit on hypercubes): deterministic and minimal,
//! matching the wormhole routers of the Paragon and T3D.

use std::collections::{HashSet, VecDeque};

/// Identifier of a physical network node, `0..num_nodes()`.
pub type NodeId = usize;

/// A directed physical channel between two adjacent nodes.
///
/// Links are the unit of contention in the simulator: two transfers whose
/// routes share a `Link` serialize on it. The reverse direction is a
/// different `Link`, so bidirectional exchanges do not self-collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Link {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
}

impl Link {
    /// Convenience constructor.
    #[inline]
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Link { from, to }
    }
}

/// A physical interconnect topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// `n` nodes in a line; node `i` is adjacent to `i±1`.
    Linear { n: usize },
    /// `rows × cols` 2-D mesh (no wraparound), row-major node ids,
    /// XY (column-then-row? no: X-first) dimension-ordered routing.
    ///
    /// Node `(r, c)` has id `r * cols + c`. Routing corrects the column
    /// (X) first, then the row (Y), as on the Paragon.
    Mesh2D { rows: usize, cols: usize },
    /// `dx × dy × dz` 3-D torus (wraparound in every dimension), ids in
    /// x-major order, dimension-ordered routing with shortest wrap
    /// direction per dimension, as on the T3D.
    Torus3D { dx: usize, dy: usize, dz: usize },
    /// `2^dim` nodes; routing corrects differing address bits from least
    /// to most significant (e-cube routing).
    Hypercube { dim: u32 },
}

impl Topology {
    /// Number of physical nodes.
    pub fn num_nodes(&self) -> usize {
        match *self {
            Topology::Linear { n } => n,
            Topology::Mesh2D { rows, cols } => rows * cols,
            Topology::Torus3D { dx, dy, dz } => dx * dy * dz,
            Topology::Hypercube { dim } => 1usize << dim,
        }
    }

    /// Number of hops of the dimension-ordered route from `u` to `v`.
    ///
    /// Equal to `route(u, v).len()` but avoids materializing the path.
    pub fn distance(&self, u: NodeId, v: NodeId) -> usize {
        match *self {
            Topology::Linear { .. } => u.abs_diff(v),
            Topology::Mesh2D { cols, .. } => {
                let (ur, uc) = (u / cols, u % cols);
                let (vr, vc) = (v / cols, v % cols);
                ur.abs_diff(vr) + uc.abs_diff(vc)
            }
            Topology::Torus3D { dx, dy, dz } => {
                let a = Self::torus_coords(u, dx, dy, dz);
                let b = Self::torus_coords(v, dx, dy, dz);
                Self::torus_dist(a.0, b.0, dx)
                    + Self::torus_dist(a.1, b.1, dy)
                    + Self::torus_dist(a.2, b.2, dz)
            }
            Topology::Hypercube { .. } => (u ^ v).count_ones() as usize,
        }
    }

    /// The exact directed links traversed from `u` to `v`, in order.
    ///
    /// Empty when `u == v`. Panics if either id is out of range.
    ///
    /// ```
    /// use mpp_model::Topology;
    /// let mesh = Topology::Mesh2D { rows: 3, cols: 3 };
    /// // XY routing: (0,0) -> (1,1) corrects the column first.
    /// let hops: Vec<usize> = mesh.route(0, 4).iter().map(|l| l.to).collect();
    /// assert_eq!(hops, vec![1, 4]);
    /// ```
    pub fn route(&self, u: NodeId, v: NodeId) -> Vec<Link> {
        let n = self.num_nodes();
        assert!(
            u < n && v < n,
            "route endpoints out of range: {u},{v} (n={n})"
        );
        let mut path = Vec::with_capacity(self.distance(u, v));
        self.route_into(u, v, &mut path);
        path
    }

    /// [`Topology::route`] into a caller-provided buffer, so per-message
    /// hot paths (the kernel routes every send) can reuse one
    /// allocation. The buffer is cleared first.
    pub fn route_into(&self, u: NodeId, v: NodeId, path: &mut Vec<Link>) {
        let n = self.num_nodes();
        assert!(
            u < n && v < n,
            "route endpoints out of range: {u},{v} (n={n})"
        );
        path.clear();
        let mut cur = u;
        while cur != v {
            let next = self.next_hop(cur, v);
            path.push(Link::new(cur, next));
            cur = next;
        }
    }

    /// Fault-aware routing: the dimension-ordered route when it avoids
    /// every link in `dead`, else the shortest detour that does.
    ///
    /// The detour is a breadth-first search over live links with
    /// neighbors visited in ascending node-id order, so for a given
    /// `(u, v, dead)` the result is unique and deterministic — both
    /// executors compute the same path. Returns `None` when the dead
    /// links disconnect `v` from `u`; with an empty fault set the result
    /// is always `Some(route(u, v))` exactly.
    pub fn route_avoiding(&self, u: NodeId, v: NodeId, dead: &HashSet<Link>) -> Option<Vec<Link>> {
        if u == v {
            return Some(Vec::new());
        }
        let dim = self.route(u, v);
        if dead.is_empty() || dim.iter().all(|l| !dead.contains(l)) {
            return Some(dim);
        }
        // BFS detour. prev[x] = node we reached x from (usize::MAX = unseen).
        let n = self.num_nodes();
        let mut prev = vec![usize::MAX; n];
        prev[u] = u;
        let mut queue = VecDeque::from([u]);
        while let Some(cur) = queue.pop_front() {
            if cur == v {
                break;
            }
            let mut nbs = self.neighbors(cur);
            nbs.sort_unstable();
            for nb in nbs {
                if prev[nb] == usize::MAX && !dead.contains(&Link::new(cur, nb)) {
                    prev[nb] = cur;
                    queue.push_back(nb);
                }
            }
        }
        if prev[v] == usize::MAX {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = v;
        while cur != u {
            hops.push(Link::new(prev[cur], cur));
            cur = prev[cur];
        }
        hops.reverse();
        Some(hops)
    }

    /// The next node on the dimension-ordered route from `cur` towards `dst`.
    ///
    /// Panics if `cur == dst`.
    pub fn next_hop(&self, cur: NodeId, dst: NodeId) -> NodeId {
        debug_assert_ne!(cur, dst);
        match *self {
            Topology::Linear { .. } => {
                if dst > cur {
                    cur + 1
                } else {
                    cur - 1
                }
            }
            Topology::Mesh2D { cols, .. } => {
                let (cr, cc) = (cur / cols, cur % cols);
                let (dr, dc) = (dst / cols, dst % cols);
                // X (column index) first, then Y (row index).
                if cc != dc {
                    if dc > cc {
                        cur + 1
                    } else {
                        cur - 1
                    }
                } else if dr > cr {
                    cur + cols
                } else {
                    cur - cols
                }
            }
            Topology::Torus3D { dx, dy, dz } => {
                let (cx, cy, cz) = Self::torus_coords(cur, dx, dy, dz);
                let (tx, ty, tz) = Self::torus_coords(dst, dx, dy, dz);
                let (nx, ny, nz) = if cx != tx {
                    (Self::torus_step(cx, tx, dx), cy, cz)
                } else if cy != ty {
                    (cx, Self::torus_step(cy, ty, dy), cz)
                } else {
                    (cx, cy, Self::torus_step(cz, tz, dz))
                };
                Self::torus_id(nx, ny, nz, dx, dy)
            }
            Topology::Hypercube { .. } => {
                let diff = cur ^ dst;
                let bit = diff.trailing_zeros();
                cur ^ (1usize << bit)
            }
        }
    }

    /// Nodes adjacent to `u` (unordered).
    pub fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        match *self {
            Topology::Linear { n } => {
                if u > 0 {
                    out.push(u - 1);
                }
                if u + 1 < n {
                    out.push(u + 1);
                }
            }
            Topology::Mesh2D { rows, cols } => {
                let (r, c) = (u / cols, u % cols);
                if c > 0 {
                    out.push(u - 1);
                }
                if c + 1 < cols {
                    out.push(u + 1);
                }
                if r > 0 {
                    out.push(u - cols);
                }
                if r + 1 < rows {
                    out.push(u + cols);
                }
            }
            Topology::Torus3D { dx, dy, dz } => {
                let (x, y, z) = Self::torus_coords(u, dx, dy, dz);
                let mut push = |a: usize, b: usize, c: usize| {
                    let id = Self::torus_id(a, b, c, dx, dy);
                    if id != u && !out.contains(&id) {
                        out.push(id);
                    }
                };
                push((x + 1) % dx, y, z);
                push((x + dx - 1) % dx, y, z);
                push(x, (y + 1) % dy, z);
                push(x, (y + dy - 1) % dy, z);
                push(x, y, (z + 1) % dz);
                push(x, y, (z + dz - 1) % dz);
            }
            Topology::Hypercube { dim } => {
                for b in 0..dim {
                    out.push(u ^ (1usize << b));
                }
            }
        }
        out
    }

    /// Network diameter: the longest dimension-ordered route.
    pub fn diameter(&self) -> usize {
        match *self {
            Topology::Linear { n } => n.saturating_sub(1),
            Topology::Mesh2D { rows, cols } => rows + cols - 2,
            Topology::Torus3D { dx, dy, dz } => dx / 2 + dy / 2 + dz / 2,
            Topology::Hypercube { dim } => dim as usize,
        }
    }

    /// Bisection width: the number of directed links crossing a balanced
    /// cut of the machine (both directions counted). A standard
    /// capacity measure — the all-to-all-heavy algorithms are limited by
    /// it.
    pub fn bisection_width(&self) -> usize {
        match *self {
            Topology::Linear { n } => {
                if n > 1 {
                    2
                } else {
                    0
                }
            }
            Topology::Mesh2D { rows, cols } => {
                // Cut across the longer dimension. When that dimension is
                // odd no perfectly balanced straight cut exists; this is
                // the standard ⌈n/2⌉ | ⌊n/2⌋ nearly-balanced cut, which
                // still severs `rows.min(cols)` bidirectional channels.
                if rows * cols <= 1 {
                    0
                } else {
                    2 * rows.min(cols)
                }
            }
            Topology::Torus3D { dx, dy, dz } => {
                // Cut perpendicular to the longest dimension; the torus
                // wraps, so the cut crosses two rings of links.
                let longest = dx.max(dy).max(dz);
                let cross_section = dx * dy * dz / longest;
                if longest > 1 {
                    4 * cross_section
                } else {
                    0
                }
            }
            Topology::Hypercube { dim } => {
                if dim == 0 {
                    0
                } else {
                    1usize << dim // 2 * 2^(dim-1)
                }
            }
        }
    }

    /// A 3-D torus with near-cubic dimensions for `p` nodes.
    ///
    /// Factors `p` into `dx ≥ dy ≥ dz` as balanced as possible; used to
    /// model T3D partitions of a given size. Panics when `p == 0`.
    pub fn torus_for(p: usize) -> Topology {
        assert!(p > 0, "torus_for(0)");
        let mut best = (p, 1, 1);
        let mut best_score = usize::MAX;
        let mut dz = 1;
        while dz * dz * dz <= p {
            if p.is_multiple_of(dz) {
                let rest = p / dz;
                let mut dy = dz;
                while dy * dy <= rest {
                    if rest.is_multiple_of(dy) {
                        let dx = rest / dy;
                        // Prefer balanced dimensions: minimize surface proxy.
                        let score = dx - dz;
                        if score < best_score {
                            best_score = score;
                            best = (dx, dy, dz);
                        }
                    }
                    dy += 1;
                }
            }
            dz += 1;
        }
        Topology::Torus3D {
            dx: best.0,
            dy: best.1,
            dz: best.2,
        }
    }

    #[inline]
    fn torus_coords(id: NodeId, dx: usize, dy: usize, dz: usize) -> (usize, usize, usize) {
        debug_assert!(id < dx * dy * dz);
        (id % dx, (id / dx) % dy, id / (dx * dy))
    }

    #[inline]
    fn torus_id(x: usize, y: usize, z: usize, dx: usize, dy: usize) -> NodeId {
        x + dx * (y + dy * z)
    }

    /// Distance along one torus dimension (shortest wrap direction).
    #[inline]
    fn torus_dist(a: usize, b: usize, d: usize) -> usize {
        let fwd = (b + d - a) % d;
        fwd.min(d - fwd)
    }

    /// One coordinate step towards `t` along the shorter wrap direction.
    /// Ties (`fwd == bwd`) break towards increasing coordinate, so routing
    /// stays deterministic.
    #[inline]
    fn torus_step(c: usize, t: usize, d: usize) -> usize {
        let fwd = (t + d - c) % d;
        let bwd = d - fwd;
        if fwd <= bwd {
            (c + 1) % d
        } else {
            (c + d - 1) % d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_route_is_contiguous() {
        let t = Topology::Linear { n: 8 };
        let r = t.route(1, 5);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], Link::new(1, 2));
        assert_eq!(r[3], Link::new(4, 5));
    }

    #[test]
    fn linear_route_backwards() {
        let t = Topology::Linear { n: 8 };
        let r = t.route(5, 1);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], Link::new(5, 4));
        assert_eq!(r[3], Link::new(2, 1));
    }

    #[test]
    fn mesh_routes_x_first() {
        let t = Topology::Mesh2D { rows: 4, cols: 4 };
        // (0,0) -> (2,3): expect column moves first (0,0)->(0,3), then rows.
        let r = t.route(0, 2 * 4 + 3);
        let hops: Vec<_> = r.iter().map(|l| l.to).collect();
        assert_eq!(hops, vec![1, 2, 3, 7, 11]);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::Mesh2D { rows: 5, cols: 7 };
        for u in 0..35 {
            for v in 0..35 {
                assert_eq!(t.distance(u, v), t.route(u, v).len());
            }
        }
    }

    #[test]
    fn mesh_self_route_empty() {
        let t = Topology::Mesh2D { rows: 3, cols: 3 };
        assert!(t.route(4, 4).is_empty());
        assert_eq!(t.distance(4, 4), 0);
    }

    #[test]
    fn torus_wraps_shortest_way() {
        let t = Topology::Torus3D {
            dx: 8,
            dy: 1,
            dz: 1,
        };
        // 0 -> 6 should wrap backwards: distance 2, not 6.
        assert_eq!(t.distance(0, 6), 2);
        let r = t.route(0, 6);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Link::new(0, 7));
        assert_eq!(r[1], Link::new(7, 6));
    }

    #[test]
    fn torus_distance_matches_route_len() {
        let t = Topology::Torus3D {
            dx: 4,
            dy: 3,
            dz: 2,
        };
        let n = t.num_nodes();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(t.distance(u, v), t.route(u, v).len(), "u={u} v={v}");
            }
        }
    }

    #[test]
    fn torus_route_stays_in_range() {
        let t = Topology::Torus3D {
            dx: 4,
            dy: 4,
            dz: 2,
        };
        let n = t.num_nodes();
        for u in 0..n {
            for v in 0..n {
                for l in t.route(u, v) {
                    assert!(l.from < n && l.to < n);
                    // every hop is between neighbors
                    assert!(t.neighbors(l.from).contains(&l.to));
                }
            }
        }
    }

    #[test]
    fn hypercube_routes_by_bits() {
        let t = Topology::Hypercube { dim: 4 };
        let r = t.route(0b0000, 0b1011);
        assert_eq!(r.len(), 3);
        let hops: Vec<_> = r.iter().map(|l| l.to).collect();
        assert_eq!(hops, vec![0b0001, 0b0011, 0b1011]);
    }

    #[test]
    fn hypercube_neighbors() {
        let t = Topology::Hypercube { dim: 3 };
        let mut nb = t.neighbors(0b101);
        nb.sort_unstable();
        assert_eq!(nb, vec![0b001, 0b100, 0b111]);
    }

    #[test]
    fn torus_for_factors_balanced() {
        match Topology::torus_for(128) {
            Topology::Torus3D { dx, dy, dz } => {
                assert_eq!(dx * dy * dz, 128);
                assert!(dx >= dy && dy >= dz);
                assert!(
                    dx <= 8,
                    "expected near-cubic factorization, got {dx}x{dy}x{dz}"
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn torus_for_prime() {
        match Topology::torus_for(13) {
            Topology::Torus3D { dx, dy, dz } => {
                assert_eq!((dx, dy, dz), (13, 1, 1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn mesh_neighbors_corner_and_center() {
        let t = Topology::Mesh2D { rows: 3, cols: 3 };
        let mut corner = t.neighbors(0);
        corner.sort_unstable();
        assert_eq!(corner, vec![1, 3]);
        let mut center = t.neighbors(4);
        center.sort_unstable();
        assert_eq!(center, vec![1, 3, 5, 7]);
    }

    #[test]
    fn diameter_matches_max_route() {
        for t in [
            Topology::Linear { n: 9 },
            Topology::Mesh2D { rows: 4, cols: 6 },
            Topology::Torus3D {
                dx: 4,
                dy: 3,
                dz: 2,
            },
            Topology::Hypercube { dim: 4 },
        ] {
            let n = t.num_nodes();
            let max = (0..n)
                .flat_map(|u| (0..n).map(move |v| (u, v)))
                .map(|(u, v)| t.distance(u, v))
                .max()
                .unwrap();
            assert_eq!(t.diameter(), max, "{t:?}");
        }
    }

    #[test]
    fn bisection_widths() {
        assert_eq!(Topology::Linear { n: 8 }.bisection_width(), 2);
        assert_eq!(Topology::Mesh2D { rows: 4, cols: 4 }.bisection_width(), 8);
        assert_eq!(Topology::Hypercube { dim: 6 }.bisection_width(), 64);
        // 4x4x2 torus: longest dim 4, cross-section 8, wrap doubles: 32.
        assert_eq!(
            Topology::Torus3D {
                dx: 4,
                dy: 4,
                dz: 2
            }
            .bisection_width(),
            32
        );
        assert_eq!(Topology::Linear { n: 1 }.bisection_width(), 0);
    }

    #[test]
    fn routes_are_deterministic() {
        let t = Topology::Torus3D {
            dx: 4,
            dy: 4,
            dz: 4,
        };
        assert_eq!(t.route(3, 49), t.route(3, 49));
    }

    #[test]
    fn bisection_width_mesh_edge_cases() {
        // A single node has no cut.
        assert_eq!(Topology::Mesh2D { rows: 1, cols: 1 }.bisection_width(), 0);
        // A 1×n mesh is a line: one bidirectional channel crosses the cut.
        assert_eq!(Topology::Mesh2D { rows: 1, cols: 8 }.bisection_width(), 2);
        assert_eq!(Topology::Mesh2D { rows: 8, cols: 1 }.bisection_width(), 2);
        // Odd longer dimension: the nearly-balanced 3×3 cut severs 3
        // bidirectional channels.
        assert_eq!(Topology::Mesh2D { rows: 3, cols: 3 }.bisection_width(), 6);
    }

    #[test]
    fn route_avoiding_detours_around_dead_link() {
        let t = Topology::Mesh2D { rows: 3, cols: 3 };
        // Dimension route 0 -> 2 is 0-1-2; kill 1 -> 2.
        let dead = HashSet::from([Link::new(1, 2)]);
        let detour = t.route_avoiding(0, 2, &dead).unwrap();
        assert!(detour.iter().all(|l| !dead.contains(l)));
        assert_eq!(detour.first().unwrap().from, 0);
        assert_eq!(detour.last().unwrap().to, 2);
        // Still a valid walk over adjacent nodes.
        for w in detour.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        // Deterministic.
        assert_eq!(detour, t.route_avoiding(0, 2, &dead).unwrap());
    }

    #[test]
    fn route_avoiding_reports_disconnection() {
        let t = Topology::Linear { n: 3 };
        // A line has no detour around a dead middle link.
        let dead = HashSet::from([Link::new(1, 2)]);
        assert_eq!(t.route_avoiding(0, 2, &dead), None);
        // The reverse direction is a different link and stays usable.
        assert!(t.route_avoiding(2, 0, &dead).is_some());
        // Self-route is always reachable.
        assert_eq!(t.route_avoiding(2, 2, &dead), Some(vec![]));
    }

    #[test]
    fn route_avoiding_empty_set_is_dimension_ordered() {
        let dead = HashSet::new();
        for t in [
            Topology::Linear { n: 6 },
            Topology::Mesh2D { rows: 3, cols: 4 },
            Topology::Torus3D {
                dx: 3,
                dy: 2,
                dz: 2,
            },
            Topology::Hypercube { dim: 3 },
        ] {
            let n = t.num_nodes();
            for u in 0..n {
                for v in 0..n {
                    assert_eq!(t.route_avoiding(u, v, &dead), Some(t.route(u, v)));
                }
            }
        }
    }
}

#[cfg(test)]
mod route_avoiding_props {
    use super::*;
    use proptest::prelude::*;

    /// The four topology families at proptest-sized scales.
    fn arb_topology() -> impl Strategy<Value = Topology> {
        prop_oneof![
            (2usize..12).prop_map(|n| Topology::Linear { n }),
            (1usize..5, 1usize..5).prop_map(|(rows, cols)| Topology::Mesh2D { rows, cols }),
            (1usize..4, 1usize..4, 1usize..4).prop_map(|(dx, dy, dz)| Topology::Torus3D {
                dx,
                dy,
                dz
            }),
            (1u32..5).prop_map(|dim| Topology::Hypercube { dim }),
        ]
    }

    /// A topology plus two nodes and a set of dead links drawn from it.
    fn arb_case() -> impl Strategy<Value = (Topology, NodeId, NodeId, Vec<(usize, usize)>)> {
        arb_topology().prop_flat_map(|t| {
            let n = t.num_nodes();
            (
                Just(t),
                0..n,
                0..n,
                proptest::collection::vec((0..n, 0..n), 0..6),
            )
        })
    }

    /// Turn raw node pairs into dead links that actually exist in the
    /// topology (a dead link between non-neighbors is meaningless).
    fn dead_set(t: &Topology, raw: &[(usize, usize)]) -> HashSet<Link> {
        raw.iter()
            .filter(|(a, b)| t.neighbors(*a).contains(b))
            .map(|&(a, b)| Link::new(a, b))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// `route_avoiding` terminates, and when it yields a path that
        /// path is a valid u→v walk over live adjacent links.
        #[test]
        fn never_traverses_dead_links((t, u, v, raw) in arb_case()) {
            let dead = dead_set(&t, &raw);
            if let Some(path) = t.route_avoiding(u, v, &dead) {
                if u == v {
                    prop_assert!(path.is_empty());
                } else {
                    prop_assert_eq!(path.first().unwrap().from, u);
                    prop_assert_eq!(path.last().unwrap().to, v);
                }
                for hop in &path {
                    prop_assert!(!dead.contains(hop), "dead link {hop:?} traversed");
                    prop_assert!(t.neighbors(hop.from).contains(&hop.to));
                }
                for w in path.windows(2) {
                    prop_assert_eq!(w[0].to, w[1].from);
                }
                // BFS detours are at most every node once.
                prop_assert!(path.len() < t.num_nodes());
            }
        }

        /// With no faults the route is exactly the dimension-ordered one.
        #[test]
        fn empty_fault_set_is_identity((t, u, v, _) in arb_case()) {
            prop_assert_eq!(t.route_avoiding(u, v, &HashSet::new()), Some(t.route(u, v)));
        }

        /// `None` is returned only when v is genuinely unreachable from u
        /// over live links (checked against an independent reachability
        /// scan).
        #[test]
        fn none_means_disconnected((t, u, v, raw) in arb_case()) {
            let dead = dead_set(&t, &raw);
            let mut seen = HashSet::from([u]);
            let mut stack = vec![u];
            while let Some(cur) = stack.pop() {
                for nb in t.neighbors(cur) {
                    if !dead.contains(&Link::new(cur, nb)) && seen.insert(nb) {
                        stack.push(nb);
                    }
                }
            }
            prop_assert_eq!(t.route_avoiding(u, v, &dead).is_some(), seen.contains(&v));
        }
    }
}

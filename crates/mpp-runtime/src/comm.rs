//! The backend-agnostic communicator interface.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use mpp_sim::Payload;

use crate::stats::CommStats;
use crate::Tag;

/// Boxed future for algorithm-level suspension points (e.g.
/// `StpAlgorithm::run`) and third-party [`Communicator`] impls that
/// can't name a concrete future type.
///
/// The trait's own blocking operations no longer return this: they
/// return the concrete [`RecvFut`]/[`RecvTimeoutFut`]/[`BarrierFut`]
/// types below, which the built-in backends construct without any heap
/// allocation. Futures never cross threads in either mode, so no `Send`
/// bound is required.
pub type CommFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Future returned by [`Communicator::recv`].
///
/// Three shapes, none of which allocates on the built-in hot paths:
/// the simulator wraps the kernel's hand-written receive future plus a
/// borrow of the rank's statistics (recorded at resolution, so virtual
/// wait time is known); blocking backends that already hold the message
/// return it via the ready variant; anything else can still fall back
/// to a boxed future.
pub struct RecvFut<'a> {
    inner: RecvShape<'a, Message>,
}

/// Future returned by [`Communicator::recv_timeout`]; resolves to
/// `None` on deadline expiry.
pub struct RecvTimeoutFut<'a> {
    inner: RecvShape<'a, Option<Message>>,
}

enum RecvShape<'a, T> {
    SimRecv {
        fut: mpp_sim::RecvFuture<'a>,
        stats: &'a mut CommStats,
    },
    SimRecvTimeout {
        fut: mpp_sim::RecvTimeoutFuture<'a>,
        stats: &'a mut CommStats,
    },
    /// Already resolved (blocking backends wait before returning).
    Ready(Option<T>),
    /// Escape hatch for third-party impls.
    Boxed(CommFuture<'a, T>),
}

fn message_of(env: mpp_sim::Envelope) -> Message {
    Message {
        src: env.src,
        tag: env.tag,
        data: env.data,
    }
}

impl<'a> RecvFut<'a> {
    /// A receive that already completed with `msg`.
    pub fn ready(msg: Message) -> Self {
        RecvFut {
            inner: RecvShape::Ready(Some(msg)),
        }
    }

    /// Wrap an arbitrary boxed future (third-party backends).
    pub fn from_boxed(fut: CommFuture<'a, Message>) -> Self {
        RecvFut {
            inner: RecvShape::Boxed(fut),
        }
    }

    pub(crate) fn sim(fut: mpp_sim::RecvFuture<'a>, stats: &'a mut CommStats) -> Self {
        RecvFut {
            inner: RecvShape::SimRecv { fut, stats },
        }
    }
}

impl<'a> RecvTimeoutFut<'a> {
    /// A receive that already completed (`None` = timed out).
    pub fn ready(msg: Option<Message>) -> Self {
        RecvTimeoutFut {
            inner: RecvShape::Ready(Some(msg)),
        }
    }

    /// Wrap an arbitrary boxed future (third-party backends).
    pub fn from_boxed(fut: CommFuture<'a, Option<Message>>) -> Self {
        RecvTimeoutFut {
            inner: RecvShape::Boxed(fut),
        }
    }

    pub(crate) fn sim(fut: mpp_sim::RecvTimeoutFuture<'a>, stats: &'a mut CommStats) -> Self {
        RecvTimeoutFut {
            inner: RecvShape::SimRecvTimeout { fut, stats },
        }
    }
}

impl Future for RecvFut<'_> {
    type Output = Message;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Message> {
        // All variants are `Unpin` (the kernel futures hold only
        // references and plain data), so plain projection is fine.
        match &mut self.get_mut().inner {
            RecvShape::SimRecv { fut, stats } => match Pin::new(fut).poll(cx) {
                Poll::Ready(env) => {
                    stats.record_recv(env.data.len(), env.waited_ns);
                    Poll::Ready(message_of(env))
                }
                Poll::Pending => Poll::Pending,
            },
            RecvShape::SimRecvTimeout { .. } => unreachable!("timeout shape in RecvFut"),
            RecvShape::Ready(msg) => Poll::Ready(msg.take().expect("polled after completion")),
            RecvShape::Boxed(fut) => fut.as_mut().poll(cx),
        }
    }
}

impl Future for RecvTimeoutFut<'_> {
    type Output = Option<Message>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<Message>> {
        match &mut self.get_mut().inner {
            RecvShape::SimRecvTimeout { fut, stats } => match Pin::new(fut).poll(cx) {
                Poll::Ready(Some(env)) => {
                    stats.record_recv(env.data.len(), env.waited_ns);
                    Poll::Ready(Some(message_of(env)))
                }
                Poll::Ready(None) => Poll::Ready(None),
                Poll::Pending => Poll::Pending,
            },
            RecvShape::SimRecv { .. } => unreachable!("plain-recv shape in RecvTimeoutFut"),
            RecvShape::Ready(msg) => Poll::Ready(msg.take().expect("polled after completion")),
            RecvShape::Boxed(fut) => fut.as_mut().poll(cx),
        }
    }
}

/// Future returned by [`Communicator::barrier`].
pub struct BarrierFut<'a> {
    inner: BarrierShape<'a>,
}

enum BarrierShape<'a> {
    Sim(mpp_sim::BarrierFuture<'a>),
    /// The barrier was already waited out (blocking backends).
    Ready,
    Boxed(CommFuture<'a, ()>),
}

impl<'a> BarrierFut<'a> {
    /// A barrier that has already been crossed.
    pub fn ready() -> Self {
        BarrierFut {
            inner: BarrierShape::Ready,
        }
    }

    /// Wrap an arbitrary boxed future (third-party backends).
    pub fn from_boxed(fut: CommFuture<'a, ()>) -> Self {
        BarrierFut {
            inner: BarrierShape::Boxed(fut),
        }
    }

    pub(crate) fn sim(fut: mpp_sim::BarrierFuture<'a>) -> Self {
        BarrierFut {
            inner: BarrierShape::Sim(fut),
        }
    }
}

impl Future for BarrierFut<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        match &mut self.get_mut().inner {
            BarrierShape::Sim(fut) => Pin::new(fut).poll(cx),
            BarrierShape::Ready => Poll::Ready(()),
            BarrierShape::Boxed(fut) => fut.as_mut().poll(cx),
        }
    }
}

/// A received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Tag it was sent with.
    pub tag: Tag,
    /// Payload (shared-ownership rope; received without copying).
    pub data: Payload,
}

/// Point-to-point message passing as seen by one rank of an algorithm.
///
/// All `stp-core` algorithms and `collectives` operations are written
/// against this trait, so the same code runs timed on the simulator and
/// untimed on real threads. Implementations must provide:
///
/// * reliable, per-(src → dst, tag) FIFO-by-arrival delivery,
/// * blocking `recv` (an `await` point) with optional source/tag filters,
/// * a barrier across all ranks (also an `await` point),
/// * a way to charge local message-combining cost
///   ([`charge_memcpy`](Communicator::charge_memcpy)),
/// * per-iteration statistics bucketing
///   ([`next_iteration`](Communicator::next_iteration)).
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of participating ranks.
    fn size(&self) -> usize;

    /// Asynchronous send of `data` to `dst` with `tag`. Copies the
    /// bytes once into shared storage; prefer
    /// [`send_payload`](Communicator::send_payload) when the data is
    /// already a [`Payload`].
    fn send(&mut self, dst: usize, tag: Tag, data: &[u8]);

    /// Asynchronous zero-copy send of an already-shared payload: the
    /// rope's segments are moved, never its bytes. Cost models and
    /// statistics treat it exactly like [`send`](Communicator::send) of
    /// the same length.
    fn send_payload(&mut self, dst: usize, tag: Tag, data: Payload) {
        // Conservative default for third-party impls: materialize.
        self.send(dst, tag, &data.to_vec());
    }

    /// Vectored multi-port send: issue every `(dst, tag, payload)`
    /// member as one batched transmit. On the simulator the whole batch
    /// pays a *single* α_send and all members become network-ready
    /// simultaneously, so on a `k`-port machine up to `k` of them
    /// occupy distinct injection slots and their wire times overlap —
    /// the primitive the `KPort_*` algorithm family is built on.
    ///
    /// The default implementation issues the members as sequential
    /// sends, which is cost-equivalent on a single-port backend and
    /// always correct (delivery and statistics are per member).
    fn send_batch(&mut self, msgs: Vec<(usize, Tag, Payload)>) {
        for (dst, tag, data) in msgs {
            self.send_payload(dst, tag, data);
        }
    }

    /// Independent injection/ejection port slots per node on the machine
    /// this communicator runs on — the `k` a k-ported algorithm stripes
    /// its [`send_batch`](Communicator::send_batch) lanes across.
    /// Backends without a machine model report 1 (single-ported).
    fn ports(&self) -> usize {
        1
    }

    /// Blocking receive; `None` filters match anything. Among matching
    /// messages the earliest-arriving is returned.
    fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> RecvFut<'_>;

    /// Receive with a deadline: like [`recv`](Communicator::recv), but
    /// gives up and returns `None` once `timeout_ns` elapses with no
    /// matching message (virtual time on the simulator, wall time on the
    /// threads backend). The default implementation waits forever — a
    /// correct refinement for backends without lossy delivery, where a
    /// matching message is guaranteed to arrive whenever one is sent.
    fn recv_timeout(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
        timeout_ns: u64,
    ) -> RecvTimeoutFut<'_> {
        let _ = timeout_ns;
        RecvTimeoutFut::from_boxed(Box::pin(async move { Some(self.recv(src, tag).await) }))
    }

    /// Block until every rank has entered the barrier.
    fn barrier(&mut self) -> BarrierFut<'_>;

    /// Charge the local memory-copy cost of combining `bytes` bytes.
    /// (A no-op cost-wise on the threads backend, but still recorded.)
    fn charge_memcpy(&mut self, bytes: usize);

    /// Close the current statistics iteration and start the next. The
    /// merge-based algorithms call this once per communication round so
    /// the paper's per-iteration parameters (congestion, active
    /// processors) can be measured.
    fn next_iteration(&mut self);

    /// Statistics recorded so far for this rank.
    fn stats(&self) -> &CommStats;
}

/// Convenience: receive from a specific source with a specific tag.
pub async fn recv_from(comm: &mut dyn Communicator, src: usize, tag: Tag) -> Message {
    comm.recv(Some(src), Some(tag)).await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_equality() {
        let a = Message {
            src: 1,
            tag: 2,
            data: vec![3].into(),
        };
        let b = Message {
            src: 1,
            tag: 2,
            data: Payload::from_slice(&[3]),
        };
        assert_eq!(a, b);
    }
}

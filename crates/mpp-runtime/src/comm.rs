//! The backend-agnostic communicator interface.

use std::future::Future;
use std::pin::Pin;

use mpp_sim::Payload;

use crate::stats::CommStats;
use crate::Tag;

/// Boxed future returned by the blocking [`Communicator`] operations.
///
/// On the simulator's cooperative executor these genuinely suspend the
/// rank; on the threaded simulator backend and the real-threads backend
/// they resolve on the first poll (the blocking wait happens before or
/// inside it). Futures never cross threads in either mode, so no `Send`
/// bound is required.
pub type CommFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// A received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Tag it was sent with.
    pub tag: Tag,
    /// Payload (shared-ownership rope; received without copying).
    pub data: Payload,
}

/// Point-to-point message passing as seen by one rank of an algorithm.
///
/// All `stp-core` algorithms and `collectives` operations are written
/// against this trait, so the same code runs timed on the simulator and
/// untimed on real threads. Implementations must provide:
///
/// * reliable, per-(src → dst, tag) FIFO-by-arrival delivery,
/// * blocking `recv` (an `await` point) with optional source/tag filters,
/// * a barrier across all ranks (also an `await` point),
/// * a way to charge local message-combining cost
///   ([`charge_memcpy`](Communicator::charge_memcpy)),
/// * per-iteration statistics bucketing
///   ([`next_iteration`](Communicator::next_iteration)).
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of participating ranks.
    fn size(&self) -> usize;

    /// Asynchronous send of `data` to `dst` with `tag`. Copies the
    /// bytes once into shared storage; prefer
    /// [`send_payload`](Communicator::send_payload) when the data is
    /// already a [`Payload`].
    fn send(&mut self, dst: usize, tag: Tag, data: &[u8]);

    /// Asynchronous zero-copy send of an already-shared payload: the
    /// rope's segments are moved, never its bytes. Cost models and
    /// statistics treat it exactly like [`send`](Communicator::send) of
    /// the same length.
    fn send_payload(&mut self, dst: usize, tag: Tag, data: Payload) {
        // Conservative default for third-party impls: materialize.
        self.send(dst, tag, &data.to_vec());
    }

    /// Blocking receive; `None` filters match anything. Among matching
    /// messages the earliest-arriving is returned.
    fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> CommFuture<'_, Message>;

    /// Receive with a deadline: like [`recv`](Communicator::recv), but
    /// gives up and returns `None` once `timeout_ns` elapses with no
    /// matching message (virtual time on the simulator, wall time on the
    /// threads backend). The default implementation waits forever — a
    /// correct refinement for backends without lossy delivery, where a
    /// matching message is guaranteed to arrive whenever one is sent.
    fn recv_timeout(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
        timeout_ns: u64,
    ) -> CommFuture<'_, Option<Message>> {
        let _ = timeout_ns;
        Box::pin(async move { Some(self.recv(src, tag).await) })
    }

    /// Block until every rank has entered the barrier.
    fn barrier(&mut self) -> CommFuture<'_, ()>;

    /// Charge the local memory-copy cost of combining `bytes` bytes.
    /// (A no-op cost-wise on the threads backend, but still recorded.)
    fn charge_memcpy(&mut self, bytes: usize);

    /// Close the current statistics iteration and start the next. The
    /// merge-based algorithms call this once per communication round so
    /// the paper's per-iteration parameters (congestion, active
    /// processors) can be measured.
    fn next_iteration(&mut self);

    /// Statistics recorded so far for this rank.
    fn stats(&self) -> &CommStats;
}

/// Convenience: receive from a specific source with a specific tag.
pub async fn recv_from(comm: &mut dyn Communicator, src: usize, tag: Tag) -> Message {
    comm.recv(Some(src), Some(tag)).await
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_equality() {
        let a = Message {
            src: 1,
            tag: 2,
            data: vec![3].into(),
        };
        let b = Message {
            src: 1,
            tag: 2,
            data: Payload::from_slice(&[3]),
        };
        assert_eq!(a, b);
    }
}

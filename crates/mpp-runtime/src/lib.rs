//! The message-passing runtime the broadcasting algorithms are written
//! against.
//!
//! Algorithms in `stp-core` and `collectives` are expressed over the
//! [`Communicator`] trait and can execute on two interchangeable backends:
//!
//! * [`SimComm`] — runs on the deterministic `mpp-sim` discrete-event
//!   kernel and yields *virtual* times on a modelled Paragon or T3D. This
//!   is the backend every figure of the paper is regenerated on.
//! * [`ThreadComm`] — runs each rank as a real OS thread with mpsc
//!   channels. No timing model; used to validate that the algorithms are
//!   honest message-passing programs (no hidden shared state) and for the
//!   failure-injection tests.
//!
//! Both backends record per-rank, per-iteration [`CommStats`], from which
//! `stp-core::metrics` computes the five parameters of the paper's
//! Figure 2 (congestion, wait, #send/rec, av_msg_lgth, av_act_proc).

pub mod comm;
pub mod sim_backend;
pub mod stats;
pub mod thread_backend;

pub use comm::{recv_from, BarrierFut, CommFuture, Communicator, Message, RecvFut, RecvTimeoutFut};
pub use mpp_sim::{
    schedule_log, CancelToken, ExecMode, FaultPlan, FaultStats, LinkOutage, LinkWindow, NodeCrash,
    Payload, RetryPolicy, ScheduleEvent, ScheduleLog, ScheduleRecording, SimBudget, SimConfig,
    SimError,
};
pub use sim_backend::{
    run_simulated, run_simulated_traced, run_simulated_with, try_run_simulated_with, RunOutput,
    SimComm,
};
pub use stats::{CommStats, IterStats};
pub use thread_backend::{
    run_threads, run_threads_faulty, ThreadComm, ThreadFault, ThreadRunOutput,
};

/// Message tag (re-exported from the simulator for convenience).
pub type Tag = mpp_sim::Tag;

//! Timed backend: `Communicator` over the `mpp-sim` kernel.

use mpp_model::{LibraryKind, Machine, Time};
use mpp_sim::{try_simulate_with, MsgTrace, Payload, RankCtx, SimConfig, SimError};

use crate::comm::{BarrierFut, Communicator, RecvFut, RecvTimeoutFut};
use crate::stats::CommStats;
use crate::Tag;

/// A [`Communicator`] executing on the deterministic discrete-event
/// simulator. Created for each rank by [`run_simulated`].
pub struct SimComm {
    ctx: RankCtx,
    stats: CommStats,
}

impl SimComm {
    fn new(ctx: RankCtx) -> Self {
        SimComm {
            ctx,
            stats: CommStats::new(),
        }
    }

    /// Current virtual clock of this rank (ns).
    pub fn clock(&self) -> Time {
        self.ctx.clock()
    }

    /// Charge raw computation time (ns) — rarely needed by algorithms,
    /// exposed for workload modelling in examples.
    pub fn compute_ns(&mut self, ns: Time) {
        self.ctx.compute_ns(ns);
    }
}

impl Communicator for SimComm {
    fn rank(&self) -> usize {
        self.ctx.rank()
    }

    fn size(&self) -> usize {
        self.ctx.size()
    }

    fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        self.stats.record_send(data.len());
        self.stats.record_copy(data.len());
        self.ctx.send(dst, tag, data);
    }

    fn send_payload(&mut self, dst: usize, tag: Tag, data: Payload) {
        self.stats.record_send(data.len());
        self.ctx.send_payload(dst, tag, data);
    }

    fn send_batch(&mut self, msgs: Vec<(usize, Tag, Payload)>) {
        // Statistics see one logical send per member; the kernel charges
        // one α_send for the whole batch and arbitrates the members
        // across the node's free port slots.
        for (_, _, data) in &msgs {
            self.stats.record_send(data.len());
        }
        self.ctx.send_batch(msgs);
    }

    fn ports(&self) -> usize {
        self.ctx.ports()
    }

    fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> RecvFut<'_> {
        // Split borrow: the kernel future borrows `ctx`, the statistics
        // borrow rides alongside and is recorded at resolution.
        let SimComm { ctx, stats } = self;
        RecvFut::sim(ctx.recv(src, tag), stats)
    }

    fn recv_timeout(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
        timeout_ns: u64,
    ) -> RecvTimeoutFut<'_> {
        let SimComm { ctx, stats } = self;
        RecvTimeoutFut::sim(ctx.recv_timeout(src, tag, timeout_ns), stats)
    }

    fn barrier(&mut self) -> BarrierFut<'_> {
        BarrierFut::sim(self.ctx.barrier())
    }

    fn charge_memcpy(&mut self, bytes: usize) {
        self.stats.record_memcpy(bytes);
        self.ctx.charge_memcpy(bytes);
    }

    fn next_iteration(&mut self) {
        self.stats.next_iteration();
        // Zero-cost marker; a no-op unless the run records a schedule.
        self.ctx.iter_mark();
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

/// Everything a timed run produces.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values.
    pub results: Vec<R>,
    /// Per-rank statistics.
    pub stats: Vec<CommStats>,
    /// Per-rank virtual finish times (ns).
    pub finish_ns: Vec<Time>,
    /// Maximum finish time — the time the paper reports (ns).
    pub makespan_ns: Time,
    /// Link/port contention stalls observed in the network.
    pub contention_events: u64,
    /// Total stall time (ns).
    pub contention_ns: Time,
    /// Per-message trace (empty unless requested via
    /// [`run_simulated_traced`]).
    pub trace: Vec<MsgTrace>,
}

impl<R> RunOutput<R> {
    /// Makespan in milliseconds (the unit of the paper's plots).
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }
}

/// Run `program` on every rank of `machine` under `lib`, timed.
pub fn run_simulated<R, F>(machine: &Machine, lib: LibraryKind, program: F) -> RunOutput<R>
where
    R: Send,
    F: AsyncFn(&mut SimComm) -> R + Sync,
{
    let config = SimConfig {
        lib,
        ..SimConfig::default()
    };
    run_simulated_with(machine, &config, program)
}

/// Like [`run_simulated`], with per-message tracing enabled.
pub fn run_simulated_traced<R, F>(machine: &Machine, lib: LibraryKind, program: F) -> RunOutput<R>
where
    R: Send,
    F: AsyncFn(&mut SimComm) -> R + Sync,
{
    let config = SimConfig {
        lib,
        trace: true,
        ..SimConfig::default()
    };
    run_simulated_with(machine, &config, program)
}

/// Run `program` under an explicit [`SimConfig`] — the full-control
/// entry point used for schedule recording (`config.recorder`), strict
/// runtime schedule checks (`config.strict`), and executor selection
/// (`config.exec`).
///
/// # Panics
///
/// Panics on any abnormal termination ([`SimError`]); supervised
/// callers use [`try_run_simulated_with`].
pub fn run_simulated_with<R, F>(machine: &Machine, config: &SimConfig, program: F) -> RunOutput<R>
where
    R: Send,
    F: AsyncFn(&mut SimComm) -> R + Sync,
{
    try_run_simulated_with(machine, config, program).unwrap_or_else(|e| panic!("{e}"))
}

/// Like [`run_simulated_with`], but abnormal terminations — deadlock,
/// rank panics, watchdog budget trips, cancellation — come back as
/// `Err(SimError)` with the kernel shut down cleanly instead of
/// panicking. The supervised entry point sweep engines build on.
pub fn try_run_simulated_with<R, F>(
    machine: &Machine,
    config: &SimConfig,
    program: F,
) -> Result<RunOutput<R>, SimError>
where
    R: Send,
    F: AsyncFn(&mut SimComm) -> R + Sync,
{
    let program = &program;
    let out = try_simulate_with(machine, config, move |ctx| async move {
        let mut comm = SimComm::new(ctx);
        let r = program(&mut comm).await;
        (r, comm.stats)
    })?;
    let (results, mut stats): (Vec<R>, Vec<CommStats>) = out.results.into_iter().unzip();
    // Fold the kernel's fault counters into the per-rank stats so
    // algorithms and reports see one coherent CommStats per rank.
    for (st, fs) in stats.iter_mut().zip(&out.fault_stats) {
        st.retransmits = fs.retransmits;
        st.dropped = fs.dropped;
        st.rerouted_hops = fs.rerouted_hops;
        st.detour_ns = fs.detour_ns;
    }
    Ok(RunOutput {
        results,
        stats,
        finish_ns: out.finish_ns,
        makespan_ns: out.makespan_ns,
        contention_events: out.contention_events,
        contention_ns: out.contention_ns,
        trace: out.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_flow_back_per_rank() {
        let m = Machine::paragon(1, 4);
        let out = run_simulated(&m, LibraryKind::Nx, async |comm| {
            if comm.rank() == 0 {
                for dst in 1..comm.size() {
                    comm.send(dst, 0, &[0u8; 512]);
                }
            } else {
                comm.recv(Some(0), Some(0)).await;
            }
            comm.rank()
        });
        assert_eq!(out.results, vec![0, 1, 2, 3]);
        assert_eq!(out.stats[0].total_sends(), 3);
        assert_eq!(out.stats[0].total_recvs(), 0);
        for r in 1..4 {
            assert_eq!(out.stats[r].total_recvs(), 1);
            assert_eq!(out.stats[r].iters[0].bytes_recv, 512);
        }
        assert!(out.makespan_ns > 0);
    }

    #[test]
    fn iteration_buckets_propagate() {
        let m = Machine::paragon(1, 2);
        let out = run_simulated(&m, LibraryKind::Nx, async |comm| {
            let peer = 1 - comm.rank();
            comm.send(peer, 0, b"x");
            comm.recv(Some(peer), Some(0)).await;
            comm.next_iteration();
            comm.send(peer, 1, b"yy");
            comm.recv(Some(peer), Some(1)).await;
        });
        for st in &out.stats {
            assert_eq!(st.iters.len(), 2);
            assert_eq!(st.iters[0].ops(), 2);
            assert_eq!(st.iters[1].ops(), 2);
        }
    }

    #[test]
    fn memcpy_charges_show_in_stats_and_time() {
        let m = Machine::paragon(1, 2);
        let out = run_simulated(&m, LibraryKind::Nx, async |comm| {
            if comm.rank() == 0 {
                comm.charge_memcpy(1 << 20);
            }
        });
        assert_eq!(out.stats[0].memcpy_bytes, 1 << 20);
        assert_eq!(out.finish_ns[0], m.params.memcpy_ns(1 << 20));
    }

    #[test]
    fn deterministic_run_output() {
        let m = Machine::t3d(16, 5);
        let run = || {
            run_simulated(&m, LibraryKind::Mpi, async |comm| {
                let p = comm.size();
                let next = (comm.rank() + 1) % p;
                comm.send(next, 0, &[7u8; 64]);
                let prev = (comm.rank() + p - 1) % p;
                comm.recv(Some(prev), Some(0)).await.data.len()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.finish_ns, b.finish_ns);
    }

    #[test]
    fn fault_counters_reach_comm_stats() {
        use mpp_sim::FaultPlan;
        let m = Machine::paragon(2, 4);
        let config = SimConfig {
            lib: LibraryKind::Nx,
            faults: Some(FaultPlan::transient_drops(11, 1, 2, 20)),
            ..SimConfig::default()
        };
        let out = run_simulated_with(&m, &config, async |comm| {
            if comm.rank() == 0 {
                for _ in 1..comm.size() {
                    comm.recv(None, None).await;
                }
            } else {
                comm.send(0, 0, &[3u8; 256]);
            }
        });
        let retransmits: u64 = out.stats.iter().map(|s| s.retransmits).sum();
        assert!(retransmits > 0, "1/2 drop rate must show up in CommStats");
        assert!(out.stats.iter().all(|s| s.dropped == 0));
    }

    #[test]
    fn recv_timeout_on_simulator() {
        let m = Machine::paragon(1, 2);
        let out = run_simulated(&m, LibraryKind::Nx, async |comm| {
            if comm.rank() == 1 {
                let miss = comm.recv_timeout(Some(0), Some(5), 100).await;
                assert!(miss.is_none(), "no send has happened yet");
                comm.send(0, 7, b"go");
                let hit = comm.recv_timeout(Some(0), Some(5), 1_000_000_000).await;
                hit.is_some()
            } else {
                // Waits for rank 1's timeout to expire before sending.
                comm.recv(Some(1), Some(7)).await;
                comm.send(1, 5, b"late");
                false
            }
        });
        assert_eq!(out.results, vec![false, true]);
        // Only the delivered receive counts; the timed-out one does not.
        assert_eq!(out.stats[1].total_recvs(), 1);
    }

    #[test]
    fn executors_agree_through_the_runtime() {
        use mpp_sim::ExecMode;
        let m = Machine::t3d(16, 5);
        let run = |exec: ExecMode| {
            let config = SimConfig {
                lib: LibraryKind::Nx,
                exec,
                ..SimConfig::default()
            };
            run_simulated_with(&m, &config, async |comm| {
                let p = comm.size();
                for hop in [1usize, 3, 7] {
                    comm.send((comm.rank() + hop) % p, hop as Tag, &[9u8; 96]);
                }
                let mut total = 0usize;
                for _ in 0..3 {
                    let msg = comm.recv(None, None).await;
                    comm.charge_memcpy(msg.data.len());
                    total += msg.data.len();
                }
                comm.next_iteration();
                comm.barrier().await;
                total
            })
        };
        let a = run(ExecMode::Cooperative);
        let b = run(ExecMode::Threaded);
        assert_eq!(a.results, b.results);
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.stats, b.stats);
    }
}

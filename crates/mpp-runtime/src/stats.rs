//! Per-rank communication statistics.
//!
//! These counters are bucketed by *iteration* (algorithms call
//! [`CommStats::next_iteration`] once per communication round), because
//! the paper's Figure-2 parameters are per-iteration quantities:
//!
//! * **congestion** — the maximum number of sends+receives a processor
//!   handles in one iteration,
//! * **wait** — how many times a processor waits for data before its next
//!   send can proceed,
//! * **#send/rec** — total send and receive operations over the whole
//!   algorithm,
//! * **av_msg_lgth** — average length of the messages a processor sends
//!   and receives, averaged over iterations,
//! * **av_act_proc** — average number of processors active per iteration
//!   (computed across ranks by `stp-core::metrics`).

/// Counters for one statistics iteration on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterStats {
    /// Send operations issued.
    pub sends: u64,
    /// Receive operations completed.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Receives that found no message waiting (the rank blocked).
    pub waits: u64,
    /// Total blocked time in ns (0 on the threads backend unless measured).
    pub wait_ns: u64,
}

impl IterStats {
    /// Sends plus receives — the paper's per-iteration congestion measure.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.sends + self.recvs
    }

    /// Whether this rank did any communication this iteration.
    #[inline]
    pub fn active(&self) -> bool {
        self.ops() > 0
    }
}

/// Full per-rank statistics for one algorithm execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Per-iteration buckets; index 0 is everything before the first
    /// `next_iteration` call.
    pub iters: Vec<IterStats>,
    /// Bytes charged through `charge_memcpy` (message-combining volume).
    pub memcpy_bytes: u64,
    /// Host-side payload bytes physically copied by this rank's
    /// communication calls. The zero-copy path (`send_payload`) keeps
    /// this at 0; the legacy `send(&[u8])` path pays one copy per send.
    pub bytes_copied: u64,
    /// Host-side payload buffer allocations made by this rank's
    /// communication calls (one per flat `send`, none per rope send).
    pub allocs: u64,
    /// Transmission attempts this rank re-injected after a fault-plan
    /// drop (0 unless the run had a [`FaultPlan`](mpp_sim::FaultPlan)).
    pub retransmits: u64,
    /// Messages this rank lost for good — every permitted attempt was
    /// dropped by the fault plan.
    pub dropped: u64,
    /// Extra hops this rank's messages travelled on detours around dead
    /// links, summed over messages.
    pub rerouted_hops: u64,
    /// Extra virtual time (ns) those detour hops cost versus the
    /// dimension-ordered route.
    pub detour_ns: u64,
}

impl CommStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        CommStats {
            iters: vec![IterStats::default()],
            memcpy_bytes: 0,
            bytes_copied: 0,
            allocs: 0,
            retransmits: 0,
            dropped: 0,
            rerouted_hops: 0,
            detour_ns: 0,
        }
    }

    fn cur(&mut self) -> &mut IterStats {
        self.iters
            .last_mut()
            .expect("stats always have an open iteration")
    }

    /// Record one send of `bytes` payload bytes.
    pub fn record_send(&mut self, bytes: usize) {
        let it = self.cur();
        it.sends += 1;
        it.bytes_sent += bytes as u64;
    }

    /// Record one completed receive.
    pub fn record_recv(&mut self, bytes: usize, waited_ns: u64) {
        let it = self.cur();
        it.recvs += 1;
        it.bytes_recv += bytes as u64;
        if waited_ns > 0 {
            it.waits += 1;
            it.wait_ns += waited_ns;
        }
    }

    /// Record combining volume.
    pub fn record_memcpy(&mut self, bytes: usize) {
        self.memcpy_bytes += bytes as u64;
    }

    /// Record one host-side payload copy of `bytes` bytes (a fresh
    /// buffer allocation plus a memcpy into it).
    pub fn record_copy(&mut self, bytes: usize) {
        self.bytes_copied += bytes as u64;
        self.allocs += 1;
    }

    /// Close the current iteration bucket.
    pub fn next_iteration(&mut self) {
        self.iters.push(IterStats::default());
    }

    /// Total send operations.
    pub fn total_sends(&self) -> u64 {
        self.iters.iter().map(|i| i.sends).sum()
    }

    /// Total receive operations.
    pub fn total_recvs(&self) -> u64 {
        self.iters.iter().map(|i| i.recvs).sum()
    }

    /// Total send+receive operations (the paper's `#send/rec`).
    pub fn total_ops(&self) -> u64 {
        self.total_sends() + self.total_recvs()
    }

    /// Total payload bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.iters.iter().map(|i| i.bytes_sent + i.bytes_recv).sum()
    }

    /// Total number of blocked receives (the paper's `wait`).
    pub fn total_waits(&self) -> u64 {
        self.iters.iter().map(|i| i.waits).sum()
    }

    /// Total blocked time (ns).
    pub fn total_wait_ns(&self) -> u64 {
        self.iters.iter().map(|i| i.wait_ns).sum()
    }

    /// Maximum sends+receives in any single iteration (`congestion`).
    pub fn congestion(&self) -> u64 {
        self.iters.iter().map(|i| i.ops()).max().unwrap_or(0)
    }

    /// Average message length over the iterations in which this rank
    /// communicated (`av_msg_lgth` for one rank). Returns 0.0 if the rank
    /// never communicated.
    pub fn avg_msg_len(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u64;
        for it in &self.iters {
            if it.active() {
                sum += (it.bytes_sent + it.bytes_recv) as f64 / it.ops() as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Number of iterations in which this rank communicated.
    pub fn active_iterations(&self) -> u64 {
        self.iters.iter().filter(|i| i.active()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_bucket_by_iteration() {
        let mut s = CommStats::new();
        s.record_send(100);
        s.record_recv(50, 0);
        s.next_iteration();
        s.record_send(200);
        assert_eq!(s.iters.len(), 2);
        assert_eq!(s.iters[0].ops(), 2);
        assert_eq!(s.iters[1].ops(), 1);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.total_bytes(), 350);
    }

    #[test]
    fn congestion_is_max_per_iteration() {
        let mut s = CommStats::new();
        for _ in 0..5 {
            s.record_send(1);
        }
        s.next_iteration();
        s.record_send(1);
        assert_eq!(s.congestion(), 5);
    }

    #[test]
    fn waits_only_counted_when_blocked() {
        let mut s = CommStats::new();
        s.record_recv(10, 0);
        s.record_recv(10, 500);
        assert_eq!(s.total_waits(), 1);
        assert_eq!(s.total_wait_ns(), 500);
    }

    #[test]
    fn avg_msg_len_ignores_idle_iterations() {
        let mut s = CommStats::new();
        s.record_send(1000);
        s.next_iteration(); // idle iteration
        s.next_iteration();
        s.record_send(3000);
        // (1000/1 + 3000/1) / 2 = 2000
        assert!((s.avg_msg_len() - 2000.0).abs() < 1e-9);
        assert_eq!(s.active_iterations(), 2);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = CommStats::new();
        assert_eq!(s.congestion(), 0);
        assert_eq!(s.avg_msg_len(), 0.0);
        assert_eq!(s.total_ops(), 0);
    }
}

//! Untimed backend: one real OS thread per rank, std mpsc channels.
//!
//! This backend exists to prove the algorithms are honest message-passing
//! programs: every run executes with genuine parallelism and OS-scheduled
//! nondeterminism, so any reliance on lock-step ordering, shared state, or
//! simulator quirks shows up as a wrong result or a hang. A fault-injection
//! mode adds random per-message delivery delays to shake out ordering
//! assumptions further.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Barrier;
use std::time::Instant;

use mpp_sim::{block_on_ready, Payload};

use crate::comm::{BarrierFut, Communicator, Message, RecvFut, RecvTimeoutFut};
use crate::stats::CommStats;
use crate::Tag;

/// Fault-injection policy for [`run_threads_faulty`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadFault {
    /// Deliver promptly.
    None,
    /// Delay each message delivery by a pseudo-random duration up to
    /// `max_us` microseconds (seeded; the schedule still varies with OS
    /// scheduling — the point is to exercise *different* interleavings).
    RandomDelay {
        /// Maximum injected delay per message, microseconds.
        max_us: u64,
        /// Seed for the per-message delay sequence.
        seed: u64,
    },
}

struct Wire {
    src: usize,
    tag: Tag,
    data: Payload,
}

/// A [`Communicator`] backed by real threads and channels.
pub struct ThreadComm<'a> {
    rank: usize,
    size: usize,
    // mpsc senders are not Sync, so each rank owns its own clone of the
    // full sender list rather than sharing one slice.
    txs: Vec<Sender<Wire>>,
    rx: Receiver<Wire>,
    barrier: &'a Barrier,
    pending: Vec<Wire>,
    stats: CommStats,
    fault: ThreadFault,
    fault_state: u64,
}

impl ThreadComm<'_> {
    fn matches(w: &Wire, src: Option<usize>, tag: Option<Tag>) -> bool {
        src.is_none_or(|s| s == w.src) && tag.is_none_or(|t| t == w.tag)
    }

    fn maybe_delay(&mut self) {
        if let ThreadFault::RandomDelay { max_us, .. } = self.fault {
            // SplitMix64 step for a deterministic-ish delay sequence.
            self.fault_state = self.fault_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.fault_state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            let us = z % (max_us + 1);
            if us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
        }
    }
}

impl Communicator for ThreadComm<'_> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        self.stats.record_copy(data.len());
        self.send_payload(dst, tag, Payload::from_slice(data));
    }

    fn send_payload(&mut self, dst: usize, tag: Tag, data: Payload) {
        self.stats.record_send(data.len());
        self.maybe_delay();
        self.txs[dst]
            .send(Wire {
                src: self.rank,
                tag,
                data,
            })
            .expect("receiver rank terminated early");
    }

    fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> RecvFut<'_> {
        // This backend has a real thread to block, so the wait happens
        // eagerly here and the returned future is immediately ready.
        // First look at already-buffered messages (FIFO among matches).
        if let Some(pos) = self.pending.iter().position(|w| Self::matches(w, src, tag)) {
            let w = self.pending.remove(pos);
            self.stats.record_recv(w.data.len(), 0);
            return RecvFut::ready(Message {
                src: w.src,
                tag: w.tag,
                data: w.data,
            });
        }
        // Block on the channel, buffering non-matching arrivals.
        let t0 = Instant::now();
        loop {
            let w = self
                .rx
                .recv()
                .expect("all senders terminated while rank still receiving");
            if Self::matches(&w, src, tag) {
                let waited = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.stats.record_recv(w.data.len(), waited);
                return RecvFut::ready(Message {
                    src: w.src,
                    tag: w.tag,
                    data: w.data,
                });
            }
            self.pending.push(w);
        }
    }

    fn recv_timeout(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
        timeout_ns: u64,
    ) -> RecvTimeoutFut<'_> {
        // Wall-clock approximation of the simulator's virtual-time
        // deadline: good enough for liveness tests, not for timing.
        if let Some(pos) = self.pending.iter().position(|w| Self::matches(w, src, tag)) {
            let w = self.pending.remove(pos);
            self.stats.record_recv(w.data.len(), 0);
            return RecvTimeoutFut::ready(Some(Message {
                src: w.src,
                tag: w.tag,
                data: w.data,
            }));
        }
        let t0 = Instant::now();
        let deadline = std::time::Duration::from_nanos(timeout_ns);
        loop {
            let left = match deadline.checked_sub(t0.elapsed()) {
                Some(left) => left,
                None => return RecvTimeoutFut::ready(None),
            };
            let w = match self.rx.recv_timeout(left) {
                Ok(w) => w,
                Err(_) => return RecvTimeoutFut::ready(None),
            };
            if Self::matches(&w, src, tag) {
                let waited = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.stats.record_recv(w.data.len(), waited);
                return RecvTimeoutFut::ready(Some(Message {
                    src: w.src,
                    tag: w.tag,
                    data: w.data,
                }));
            }
            self.pending.push(w);
        }
    }

    fn barrier(&mut self) -> BarrierFut<'_> {
        self.barrier.wait();
        BarrierFut::ready()
    }

    fn charge_memcpy(&mut self, bytes: usize) {
        self.stats.record_memcpy(bytes);
    }

    fn next_iteration(&mut self) {
        self.stats.next_iteration();
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

/// Output of a threads-backend run.
#[derive(Debug)]
pub struct ThreadRunOutput<R> {
    /// Per-rank return values.
    pub results: Vec<R>,
    /// Per-rank statistics.
    pub stats: Vec<CommStats>,
    /// Wall-clock duration of the parallel section.
    pub wall: std::time::Duration,
}

/// Run `program` on `p` real threads.
///
/// ```
/// use mpp_runtime::{run_threads, Communicator};
/// let out = run_threads(4, async |comm| {
///     let next = (comm.rank() + 1) % comm.size();
///     comm.send(next, 0, &[comm.rank() as u8]);
///     let prev = (comm.rank() + comm.size() - 1) % comm.size();
///     comm.recv(Some(prev), Some(0)).await.data.to_vec()[0] as usize
/// });
/// assert_eq!(out.results, vec![3, 0, 1, 2]);
/// ```
pub fn run_threads<R, F>(p: usize, program: F) -> ThreadRunOutput<R>
where
    R: Send,
    F: AsyncFn(&mut ThreadComm) -> R + Sync,
{
    run_threads_faulty(p, ThreadFault::None, program)
}

/// Run `program` on `p` real threads with fault injection.
pub fn run_threads_faulty<R, F>(p: usize, fault: ThreadFault, program: F) -> ThreadRunOutput<R>
where
    R: Send,
    F: AsyncFn(&mut ThreadComm) -> R + Sync,
{
    assert!(p > 0);
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel::<Wire>();
        txs.push(tx);
        rxs.push(Some(rx));
    }
    let barrier = Barrier::new(p);
    let txs = &txs;
    let barrier = &barrier;
    let program = &program;

    let t0 = Instant::now();
    let mut out: Vec<Option<(R, CommStats)>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for (rank, rx_slot) in rxs.iter_mut().enumerate() {
            let rx = rx_slot.take().unwrap();
            let seed_rank = rank as u64;
            let my_txs: Vec<Sender<Wire>> = txs.to_vec();
            handles.push(scope.spawn(move || {
                let mut comm = ThreadComm {
                    rank,
                    size: p,
                    txs: my_txs,
                    rx,
                    barrier,
                    pending: Vec::new(),
                    stats: CommStats::new(),
                    fault,
                    fault_state: match fault {
                        ThreadFault::RandomDelay { seed, .. } => seed ^ (seed_rank << 32),
                        ThreadFault::None => 0,
                    },
                };
                // This backend's comm futures never pend, so the rank
                // program completes in a single poll.
                let r = block_on_ready(program(&mut comm));
                (r, comm.stats)
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            out[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    let wall = t0.elapsed();

    let (results, stats) = out.into_iter().map(|o| o.unwrap()).unzip();
    ThreadRunOutput {
        results,
        stats,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_works() {
        let out = run_threads(8, async |comm| {
            let p = comm.size();
            comm.send((comm.rank() + 1) % p, 0, &[comm.rank() as u8]);
            comm.recv(Some((comm.rank() + p - 1) % p), Some(0))
                .await
                .data
                .to_vec()[0]
        });
        for (rank, &got) in out.results.iter().enumerate() {
            assert_eq!(got as usize, (rank + 8 - 1) % 8);
        }
    }

    #[test]
    fn tag_filter_buffers_out_of_order() {
        let out = run_threads(2, async |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"one");
                comm.send(1, 2, b"two");
                Vec::new()
            } else {
                // Ask for tag 2 first; tag 1 must be buffered, not lost.
                let a = comm.recv(Some(0), Some(2)).await;
                let b = comm.recv(Some(0), Some(1)).await;
                vec![a.data, b.data]
            }
        });
        assert_eq!(out.results[1], vec![b"two".to_vec(), b"one".to_vec()]);
    }

    #[test]
    fn barrier_divides_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let out = run_threads(4, async |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier().await;
            before.load(Ordering::SeqCst)
        });
        // After the barrier every rank must observe all 4 increments.
        assert!(out.results.iter().all(|&v| v == 4));
    }

    #[test]
    fn random_delay_fault_still_correct() {
        let fault = ThreadFault::RandomDelay {
            max_us: 200,
            seed: 42,
        };
        let out = run_threads_faulty(6, fault, async |comm| {
            let p = comm.size();
            // all-to-all of tiny messages
            for d in 0..p {
                if d != comm.rank() {
                    comm.send(d, 9, &[comm.rank() as u8]);
                }
            }
            let mut seen = vec![false; p];
            for _ in 0..p - 1 {
                let m = comm.recv(None, Some(9)).await;
                seen[m.src] = true;
            }
            seen.iter().filter(|&&b| b).count()
        });
        assert!(out.results.iter().all(|&c| c == 5));
    }

    #[test]
    fn recv_timeout_gives_up_and_recovers() {
        let out = run_threads(2, async |comm| {
            if comm.rank() == 1 {
                // Nothing matches tag 9 → times out (1 ms wall clock)...
                let miss = comm.recv_timeout(Some(0), Some(9), 1_000_000).await;
                assert!(miss.is_none());
                comm.barrier().await;
                // ...but a real message is still received afterwards.
                comm.recv_timeout(Some(0), Some(1), 5_000_000_000)
                    .await
                    .is_some()
            } else {
                comm.barrier().await;
                comm.send(1, 1, b"ok");
                true
            }
        });
        assert_eq!(out.results, vec![true, true]);
    }

    #[test]
    fn stats_recorded_on_threads() {
        let out = run_threads(2, async |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0; 64]);
            } else {
                comm.recv(None, None).await;
                comm.charge_memcpy(64);
            }
        });
        assert_eq!(out.stats[0].total_sends(), 1);
        assert_eq!(out.stats[1].total_recvs(), 1);
        assert_eq!(out.stats[1].memcpy_bytes, 64);
    }
}

//! Structured simulation errors.
//!
//! Every way a simulation can end abnormally — deadlock, a panicking
//! rank program, a tripped watchdog budget, a wall-clock deadline, or
//! external cancellation — surfaces as a [`SimError`] from
//! [`try_simulate_with`](crate::try_simulate_with). The panicking entry
//! points ([`simulate`](crate::simulate) /
//! [`simulate_with`](crate::simulate_with)) are thin shims that unwrap
//! the same `Result`, so their panic messages are exactly the `Display`
//! forms below; library callers who want to survive a bad run use the
//! `try_` APIs and never abort.

use std::fmt;

use mpp_model::Time;

use crate::kernel::DeadlockInfo;

/// Why a simulation failed to run to completion.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Every live rank is blocked in `recv` with no matching message in
    /// flight (or waiting at a barrier some blocked rank will never
    /// reach). Carries a per-rank state dump.
    Deadlock {
        /// `Machine::name` of the simulated machine.
        machine: String,
        /// Per-rank one-line state descriptions at deadlock time.
        info: DeadlockInfo,
    },
    /// A rank program panicked. The kernel shuts the remaining ranks
    /// down cleanly and reports the captured panic message.
    RankPanic {
        /// The rank whose program panicked.
        rank: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The run exceeded a [`SimBudget`](crate::SimBudget) event-count or
    /// virtual-time ceiling — the livelock analogue of a deadlock
    /// (e.g. an infinite retry loop under a hostile fault plan).
    WatchdogTripped {
        /// Kernel events processed when the watchdog fired.
        events: u64,
        /// Virtual time of the event that tripped the budget (ns).
        virtual_ns: Time,
        /// Per-rank one-line state descriptions at trip time.
        states: Vec<String>,
    },
    /// The run exceeded the wall-clock ceiling of its
    /// [`SimBudget`](crate::SimBudget).
    DeadlineExceeded {
        /// The configured ceiling, in milliseconds.
        wall_ms: u64,
    },
    /// The run's [`CancelToken`](crate::CancelToken) was cancelled.
    Cancelled,
    /// A [`SimConfig::strict`](crate::SimConfig::strict) runtime check
    /// failed (ambiguous receive match, or a rank finished with
    /// undelivered mailbox messages). The payload is the diagnostic.
    StrictViolation(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // These strings are load-bearing: the panicking shims format
        // errors straight into panic messages, and both the
        // `#[should_panic(expected = "deadlock")]` tests and the
        // analyzer's expected-panic hook match on these substrings.
        match self {
            SimError::Deadlock { machine, info } => {
                write!(f, "simulation deadlock on {machine}: {info:#?}")
            }
            SimError::RankPanic { rank, message } => write!(
                f,
                "rank {rank} terminated abnormally (panicked inside the simulated program): \
                 {message}"
            ),
            SimError::WatchdogTripped {
                events,
                virtual_ns,
                states,
            } => {
                write!(
                    f,
                    "simulation watchdog tripped after {events} kernel events \
                     at {virtual_ns}ns of virtual time (livelock?): {states:#?}"
                )
            }
            SimError::DeadlineExceeded { wall_ms } => {
                write!(f, "simulation exceeded its {wall_ms}ms wall-clock deadline")
            }
            SimError::Cancelled => write!(f, "simulation cancelled"),
            SimError::StrictViolation(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl SimError {
    /// Short machine-readable kind tag (stable across releases; used by
    /// sweep failure reports and checkpoints).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock { .. } => "deadlock",
            SimError::RankPanic { .. } => "rank_panic",
            SimError::WatchdogTripped { .. } => "watchdog",
            SimError::DeadlineExceeded { .. } => "deadline",
            SimError::Cancelled => "cancelled",
            SimError::StrictViolation(_) => "strict_violation",
        }
    }
}

/// Sentinel unwind payload used by rank threads when the kernel has
/// already torn the grant channels down (because it aborted on some
/// *other* rank's failure). Raised with `resume_unwind` so it never
/// triggers the panic hook, and swallowed by the rank thread's
/// `catch_unwind` — the rank exits quietly instead of reporting a
/// spurious secondary panic.
pub(crate) struct KernelGone;

/// Stringify a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

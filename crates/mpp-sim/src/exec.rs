//! The cooperative rank executor.
//!
//! All rank programs run as resumable `async` state machines multiplexed
//! on the calling thread, held in a single pre-sized
//! [`RankSlab`](crate::slab::RankSlab) allocation and polled in place —
//! no per-rank `Box::pin`, no per-op heap traffic. Each rank owns a
//! [`CoopCell`]: rank-local operations (`send`, `compute_ns`,
//! `charge_memcpy`, `iter_mark`) update the cell's virtual clock directly
//! and append *deferred ops*; only `recv` and `barrier` actually suspend
//! the future. The executor drains deferred ops in global
//! `(effective time, rank)` order through the shared [`KernelCore`],
//! driven by the calendar-bucket
//! [`ReadyQueue`](crate::sched::ReadyQueue) instead of the threaded
//! kernel's O(p) scan.
//!
//! # Why this is equivalent to the threaded kernel
//!
//! In the threaded model every rank waits at exactly one pending trap,
//! and the kernel repeatedly processes the trap with minimal
//! `(effective time, rank)`. Here a rank may have queued *several* ops
//! ahead of its suspension point, but because its clock only moves
//! forward, the op at the queue head always has the minimum effective
//! time within that queue — so scheduling queue heads by
//! `(eff, rank)` visits globally visible effects (network transfers,
//! sequence numbers, mailbox inserts, recorded events) in exactly the
//! order the threaded kernel does. Blocked receives re-enter the ready
//! queue from [`wake_recv`] when a matching message is inserted; since a
//! new arrival can only lower the earliest match, stale queue entries are
//! safe to discard lazily. See DESIGN.md §8 for the full argument.

use std::cell::RefCell;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::task::Poll;

use mpp_model::Machine;
use mpp_model::Time;

use crate::error::{panic_message, SimError};
use crate::kernel::{DeadlockInfo, Envelope, KernelCore, RankCtx, SimConfig, SimOutcome};
use crate::payload::Payload;
use crate::sched::ReadyQueue;
use crate::slab::{RankSlab, SlabHandle};
use crate::supervise::{Watchdog, WatchdogTrip};
use crate::Tag;

/// Per-rank shared state between a rank program's [`RankCtx`] and the
/// executor. Everything cooperative runs on one thread, so this is a
/// plain `RefCell` behind an `Rc` — the executor and the rank's own
/// context never hold borrows across a suspension point.
#[derive(Default)]
pub(crate) struct CoopCell {
    /// The rank's virtual clock — single source of truth in cooperative
    /// mode, advanced rank-locally by sends/compute/memcpy and by the
    /// executor on recv/barrier grants.
    pub clock: Time,
    /// Deferred operations not yet processed by the executor, in issue
    /// order. The suspension ops (`RecvWait`/`BarrierWait`/`Finished`)
    /// are always last: nothing can be issued past a suspension point.
    pub ops: std::collections::VecDeque<CoopOp>,
    /// Completion value for the op the rank is suspended on, deposited
    /// by the executor just before re-polling.
    pub grant: Option<CoopGrant>,
}

/// A deferred operation in a rank's op queue.
pub(crate) enum CoopOp {
    /// A send issued while the rank's clock was `eff`.
    Send {
        dst: usize,
        tag: Tag,
        data: Payload,
        eff: Time,
    },
    /// A vectored multi-port send batch issued at `eff`: every member
    /// transfers are issued in one executor step (one α_send for the
    /// whole batch) before the rank can suspend, so the port arbiter
    /// sees them simultaneously.
    SendBatch {
        msgs: Vec<(usize, Tag, Payload)>,
        eff: Time,
    },
    /// Iteration-boundary marker (recording runs only).
    IterMark { eff: Time },
    /// The rank is suspended in `recv` (its clock is unchanged while
    /// suspended, so no time stamp is needed). A `deadline` makes this
    /// a `recv_timeout`: the rank stays schedulable and gives up at the
    /// deadline if no match can complete by then.
    RecvWait {
        src: Option<usize>,
        tag: Option<Tag>,
        deadline: Option<Time>,
    },
    /// The rank is suspended in `barrier`.
    BarrierWait,
    /// The rank's program returned; `eff` is its final clock.
    Finished { eff: Time },
}

/// Executor → rank completion values.
pub(crate) enum CoopGrant {
    Received(Envelope),
    TimedOut,
    Done,
}

/// Where a rank currently stands from the executor's point of view.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Has a live entry in the ready queue.
    Ready,
    /// Suspended in `recv` with no matching message in any mailbox.
    BlockedRecv,
    /// Suspended in `barrier`, waiting for the others.
    InBarrier,
    /// Program finished and its `Finished` op has been processed.
    Done,
}

/// Poll `rank`'s state machine once, in place in the slab; on completion
/// stash the result and queue the terminal `Finished` op at the rank's
/// current clock. A panicking rank program is caught here and surfaced
/// as [`SimError::RankPanic`] — the half-run slab (and every other
/// rank's state machine in it) is dropped in place by the caller.
fn poll_rank<R, Fut: Future<Output = R>>(
    rank: usize,
    slab: &mut RankSlab<Fut>,
    results: &mut [Option<R>],
    cells: &[Rc<RefCell<CoopCell>>],
) -> Result<(), SimError> {
    match catch_unwind(AssertUnwindSafe(|| slab.poll(rank))) {
        Ok(Some(Poll::Ready(r))) => {
            results[rank] = Some(r);
            let mut cell = cells[rank].borrow_mut();
            let eff = cell.clock;
            cell.ops.push_back(CoopOp::Finished { eff });
            Ok(())
        }
        Ok(_) => Ok(()),
        Err(payload) => Err(SimError::RankPanic {
            rank,
            message: panic_message(&*payload),
        }),
    }
}

/// Classify `rank` by its op-queue head and (re-)insert it into the
/// ready queue if it is schedulable. Mirrors the threaded kernel's
/// per-step classification of each rank's single pending trap.
fn settle_head(
    rank: usize,
    cells: &[Rc<RefCell<CoopCell>>],
    phases: &mut [Phase],
    ready: &mut ReadyQueue,
    in_barrier: &mut usize,
    core: &KernelCore,
) {
    let cell = cells[rank].borrow();
    match cell.ops.front() {
        Some(CoopOp::Send { eff, .. })
        | Some(CoopOp::SendBatch { eff, .. })
        | Some(CoopOp::IterMark { eff })
        | Some(CoopOp::Finished { eff }) => {
            phases[rank] = Phase::Ready;
            ready.push(rank, *eff);
        }
        Some(CoopOp::RecvWait { src, tag, deadline }) => {
            let match_eff = core
                .peek_mailbox(rank, *src, *tag)
                .map(|arrival| cell.clock.max(arrival));
            match (match_eff, deadline) {
                (Some(e), Some(d)) => {
                    phases[rank] = Phase::Ready;
                    ready.push(rank, e.min(*d));
                }
                (Some(e), None) => {
                    phases[rank] = Phase::Ready;
                    ready.push(rank, e);
                }
                // No match yet, but the rank gives up at the deadline —
                // it stays schedulable (mirrors the threaded scan).
                (None, Some(d)) => {
                    phases[rank] = Phase::Ready;
                    ready.push(rank, *d);
                }
                (None, None) => phases[rank] = Phase::BlockedRecv,
            }
        }
        Some(CoopOp::BarrierWait) => {
            phases[rank] = Phase::InBarrier;
            *in_barrier += 1;
        }
        None => unreachable!("rank {rank} settled with an empty op queue"),
    }
}

/// Blocked-recv wakeup index hook: after a message lands in `dst`'s
/// mailbox, re-ready `dst` directly if it is waiting on a matching
/// receive. An unconditional re-push is sound — a new arrival can only
/// lower the earliest match, and the ready queue discards the stale
/// (later-or-equal) entry lazily.
fn wake_recv(
    dst: usize,
    cells: &[Rc<RefCell<CoopCell>>],
    phases: &mut [Phase],
    ready: &mut ReadyQueue,
    core: &KernelCore,
) {
    if !matches!(phases[dst], Phase::BlockedRecv | Phase::Ready) {
        return;
    }
    let cell = cells[dst].borrow();
    if let Some(CoopOp::RecvWait { src, tag, deadline }) = cell.ops.front() {
        if let Some(arrival) = core.peek_mailbox(dst, *src, *tag) {
            let eff = cell.clock.max(arrival);
            let eff = deadline.map_or(eff, |d| eff.min(d));
            phases[dst] = Phase::Ready;
            ready.push(dst, eff);
        }
    }
}

/// Per-rank one-line state descriptions for deadlock/watchdog dumps;
/// ranks sitting in `recv` are also recorded into the schedule log as
/// `Blocked` events so the analyzer sees the wait-for structure.
fn describe_ranks(
    core: &mut KernelCore,
    cells: &[Rc<RefCell<CoopCell>>],
    phases: &[Phase],
) -> Vec<String> {
    let mut states = Vec::with_capacity(phases.len());
    for (rank, phase) in phases.iter().enumerate() {
        let cell = cells[rank].borrow();
        let what = match phase {
            Phase::Done => "done".to_string(),
            Phase::BlockedRecv => {
                if let Some(CoopOp::RecvWait { src, tag, .. }) = cell.ops.front() {
                    core.record_blocked(rank, *src, *tag);
                    format!(
                        "blocked recv(src={src:?}, tag={tag:?}), mailbox has {} msgs",
                        core.mailbox_len(rank)
                    )
                } else {
                    "runnable?".to_string()
                }
            }
            Phase::InBarrier => "waiting in barrier".to_string(),
            Phase::Ready => "runnable?".to_string(),
        };
        states.push(format!("rank {rank} @ {}ns: {what}", cell.clock));
    }
    states
}

/// Translate a watchdog trip into the corresponding [`SimError`],
/// attaching the per-rank dump where the variant carries one.
fn trip_error(
    trip: WatchdogTrip,
    core: &mut KernelCore,
    cells: &[Rc<RefCell<CoopCell>>],
    phases: &[Phase],
) -> SimError {
    match trip {
        WatchdogTrip::Budget(events, virtual_ns) => SimError::WatchdogTripped {
            events,
            virtual_ns,
            states: describe_ranks(core, cells, phases),
        },
        WatchdogTrip::Wall(wall_ms) => SimError::DeadlineExceeded { wall_ms },
        WatchdogTrip::Cancelled => SimError::Cancelled,
    }
}

/// Run every rank of `machine` under the cooperative executor.
pub(crate) fn try_simulate_coop<R, F, Fut>(
    machine: &Machine,
    config: &SimConfig,
    program: &F,
) -> Result<SimOutcome<R>, SimError>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let p = machine.p();
    assert!(p > 0);

    let mut core = KernelCore::new(machine, config);
    let recording = config.recorder.is_some();
    let alpha_send = core.alpha_send;

    let cells: Vec<Rc<RefCell<CoopCell>>> = (0..p)
        .map(|_| Rc::new(RefCell::new(CoopCell::default())))
        .collect();
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    // One slab allocation holds every rank's state machine for the whole
    // experiment; machines are polled in place and dropped in place.
    let mut slab: RankSlab<Fut> = RankSlab::new((0..p).map(|rank| {
        program(RankCtx::new_coop(
            rank,
            p,
            recording,
            cells[rank].clone(),
            alpha_send,
            machine.params.clone(),
        ))
    }));

    debug_assert_eq!(slab.len(), p);
    // Birth handles: each goes stale exactly when its rank's machine
    // completes, which is what lets us sanity-check the `Finished`
    // protocol below.
    let handles: Vec<SlabHandle> = (0..p).map(|rank| slab.handle(rank)).collect();

    let mut phases = vec![Phase::Ready; p];
    // Size the ready queue for this run: `p` ranks, each of which a
    // faulty network can re-ready once per retransmission attempt, with
    // the calendar window scaled to the machine's software α costs (the
    // natural spacing between schedulable events).
    let retry_budget = config
        .faults
        .as_ref()
        .map_or(0, |f| f.retry.max_attempts as usize);
    let mut ready = ReadyQueue::for_run(p, retry_budget, core.alpha_send + core.alpha_recv);
    let mut in_barrier = 0usize;
    let mut live = p;
    let mut finish_ns = vec![0; p];
    let mut watchdog = Watchdog::for_run(&config.budget, &config.cancel);

    // The scheduling loop proper; every abnormal exit bubbles out as
    // `Err` for the teardown below (flush the recorder, drop the slab
    // with every unfinished state machine in place).
    let mut run_loop = || -> Result<(), SimError> {
        // Run every rank up to its first suspension point, then classify.
        for rank in 0..p {
            poll_rank(rank, &mut slab, &mut results, &cells)?;
        }
        for rank in 0..p {
            settle_head(
                rank,
                &cells,
                &mut phases,
                &mut ready,
                &mut in_barrier,
                &core,
            );
        }

        while live > 0 {
            // Barrier release: every live rank is suspended at a barrier.
            if in_barrier == live {
                let t_max = phases
                    .iter()
                    .enumerate()
                    .filter(|(_, ph)| **ph == Phase::InBarrier)
                    .map(|(rank, _)| cells[rank].borrow().clock)
                    .max()
                    .expect("barrier with no participants");
                let t_rel = core.barrier_release_time(t_max, live);
                let released: Vec<usize> =
                    (0..p).filter(|&r| phases[r] == Phase::InBarrier).collect();
                in_barrier = 0;
                for &rank in &released {
                    let mut cell = cells[rank].borrow_mut();
                    match cell.ops.pop_front() {
                        Some(CoopOp::BarrierWait) => {}
                        _ => unreachable!("in-barrier rank without BarrierWait at queue head"),
                    }
                    cell.clock = t_rel;
                    cell.grant = Some(CoopGrant::Done);
                }
                for &rank in &released {
                    poll_rank(rank, &mut slab, &mut results, &cells)?;
                }
                for &rank in &released {
                    settle_head(
                        rank,
                        &cells,
                        &mut phases,
                        &mut ready,
                        &mut in_barrier,
                        &core,
                    );
                }
                continue;
            }

            let Some((eff, rank)) = ready.pop() else {
                let info = DeadlockInfo {
                    states: describe_ranks(&mut core, &cells, &phases),
                };
                return Err(SimError::Deadlock {
                    machine: machine.name.to_string(),
                    info,
                });
            };

            if let Some(wd) = watchdog.as_mut() {
                if let Err(trip) = wd.check(core.events_processed(), eff) {
                    return Err(trip_error(trip, &mut core, &cells, &phases));
                }
            }

            let op = cells[rank]
                .borrow_mut()
                .ops
                .pop_front()
                .expect("ready rank with empty op queue");
            match op {
                CoopOp::Send {
                    dst,
                    tag,
                    data,
                    eff,
                } => {
                    core.process_send(rank, dst, tag, data, eff);
                    settle_head(
                        rank,
                        &cells,
                        &mut phases,
                        &mut ready,
                        &mut in_barrier,
                        &core,
                    );
                    wake_recv(dst, &cells, &mut phases, &mut ready, &core);
                }
                CoopOp::SendBatch { msgs, eff } => {
                    // All members issue in this one step, mirroring the
                    // threaded kernel's single SendBatch trap; each
                    // destination is then woken like a plain send's.
                    let dsts: Vec<usize> = msgs.iter().map(|(dst, _, _)| *dst).collect();
                    core.process_send_batch(rank, msgs, eff);
                    settle_head(
                        rank,
                        &cells,
                        &mut phases,
                        &mut ready,
                        &mut in_barrier,
                        &core,
                    );
                    for dst in dsts {
                        wake_recv(dst, &cells, &mut phases, &mut ready, &core);
                    }
                }
                CoopOp::IterMark { .. } => {
                    core.process_iter_mark(rank);
                    settle_head(
                        rank,
                        &cells,
                        &mut phases,
                        &mut ready,
                        &mut in_barrier,
                        &core,
                    );
                }
                CoopOp::RecvWait { src, tag, deadline } => {
                    let clock = cells[rank].borrow().clock;
                    // Deliver iff a match can complete by the deadline
                    // (same pop-time rule as the threaded kernel).
                    let deliverable = core
                        .peek_mailbox(rank, src, tag)
                        .map(|arrival| clock.max(arrival))
                        .is_some_and(|e| deadline.is_none_or(|d| e <= d));
                    if deliverable {
                        let (env, new_clock) = core
                            .process_recv(rank, src, tag, clock)
                            .map_err(SimError::StrictViolation)?;
                        {
                            let mut cell = cells[rank].borrow_mut();
                            cell.clock = new_clock;
                            cell.grant = Some(CoopGrant::Received(env));
                        }
                        poll_rank(rank, &mut slab, &mut results, &cells)?;
                        settle_head(
                            rank,
                            &cells,
                            &mut phases,
                            &mut ready,
                            &mut in_barrier,
                            &core,
                        );
                    } else {
                        let d = deadline.expect("scheduled recv without match or deadline");
                        core.note_timeout();
                        {
                            let mut cell = cells[rank].borrow_mut();
                            cell.clock = d + core.alpha_recv;
                            cell.grant = Some(CoopGrant::TimedOut);
                        }
                        poll_rank(rank, &mut slab, &mut results, &cells)?;
                        settle_head(
                            rank,
                            &cells,
                            &mut phases,
                            &mut ready,
                            &mut in_barrier,
                            &core,
                        );
                    }
                }
                CoopOp::BarrierWait => {
                    unreachable!("BarrierWait scheduled through the ready queue")
                }
                CoopOp::Finished { eff } => {
                    // The Finished op is only ever queued after the slab
                    // vacates the rank's machine, bumping its generation.
                    debug_assert!(
                        !slab.is_current(handles[rank]),
                        "Finished op for a still-live rank machine"
                    );
                    core.process_finish(rank, eff)
                        .map_err(SimError::StrictViolation)?;
                    phases[rank] = Phase::Done;
                    finish_ns[rank] = eff;
                    live -= 1;
                }
            }
        }
        Ok(())
    };

    if let Err(e) = run_loop() {
        core.flush_recording(matches!(e, SimError::Deadlock { .. }));
        return Err(e);
    }

    debug_assert_eq!(
        slab.live(),
        0,
        "live ranks exhausted with unfinished machines"
    );
    core.flush_recording(false);
    let (contention_events, contention_ns) = core.contention();
    let trace = core.take_trace();
    let fault_stats = core.take_fault_stats();
    let results: Vec<R> = results
        .into_iter()
        .enumerate()
        .map(|(rank, r)| r.unwrap_or_else(|| panic!("rank {rank} produced no result")))
        .collect();
    let makespan_ns = finish_ns.iter().copied().max().unwrap_or(0);
    Ok(SimOutcome {
        results,
        finish_ns,
        makespan_ns,
        contention_events,
        contention_ns,
        trace,
        fault_stats,
    })
}

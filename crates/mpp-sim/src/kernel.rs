//! The deterministic simulation kernel.
//!
//! Rank programs are `async` state machines over [`RankCtx`]; every
//! communication call advances this rank's virtual clock under the timing
//! model in the crate docs. Two executors drive them:
//!
//! * **Cooperative** (default, [`ExecMode::Cooperative`]) — all rank
//!   programs are multiplexed on the kernel's own thread (see the
//!   `exec` module). Sends, compute and memcpy charges are handled
//!   rank-locally and deferred; only `recv` and `barrier` suspend.
//! * **Threaded** ([`ExecMode::Threaded`]) — the original
//!   one-OS-thread-per-rank trap/grant model, kept as the differential
//!   baseline: every operation round-trips through two channels.
//!
//! Both executors feed the same `KernelCore` state machine (network,
//! mailboxes, sequence numbers, recording), so virtual times, statistics
//! and recorded schedules are bit-identical by construction.

use std::cell::RefCell;
use std::future::Future;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, PoisonError};
use std::task::{Context, Poll, Waker};

use mpp_model::{FaultPlan, LibraryKind, Machine, MachineParams, Time};

use crate::error::{panic_message, KernelGone, SimError};
use crate::exec::{try_simulate_coop, CoopCell, CoopGrant, CoopOp};
use crate::mailbox::{Mailbox, MsgRec};
use crate::network::NetworkState;
use crate::payload::Payload;
use crate::record::{ScheduleEvent, ScheduleLog};
use crate::supervise::{CancelToken, SimBudget, Watchdog, WatchdogTrip};
use crate::trace::MsgTrace;
use crate::Tag;

/// Which executor drives the rank programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Rank programs run as resumable state machines multiplexed on the
    /// kernel thread — no per-rank OS threads, no channel round-trips.
    Cooperative,
    /// One OS thread per rank with a trap/grant channel protocol — the
    /// original execution model, kept for differential testing.
    Threaded,
}

impl ExecMode {
    /// Parse an executor name: `coop`/`cooperative` or
    /// `threaded`/`threads`/`thread`.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "coop" | "cooperative" => Ok(ExecMode::Cooperative),
            "threaded" | "threads" | "thread" => Ok(ExecMode::Threaded),
            other => Err(format!(
                "unrecognized executor {other:?} (expected coop|cooperative|threaded|threads)"
            )),
        }
    }

    /// The executor selected by the `STP_EXEC` environment variable;
    /// `Ok(Cooperative)` when unset or empty, `Err` (with the parse
    /// message) on an unrecognized value.
    ///
    /// This is the entry point long-running services use: a daemon must
    /// not die at construction because a deploy exported a typo'd
    /// `STP_EXEC` — it decides itself whether to reject the request,
    /// warn and fall back ([`from_env_lenient`](Self::from_env_lenient)),
    /// or abort ([`from_env`](Self::from_env)).
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("STP_EXEC") {
            Ok(v) if v.trim().is_empty() => Ok(ExecMode::Cooperative),
            Ok(v) => Self::parse(v.trim()).map_err(|e| format!("STP_EXEC: {e}")),
            Err(_) => Ok(ExecMode::Cooperative),
        }
    }

    /// The executor selected by the `STP_EXEC` environment variable;
    /// cooperative when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value. A typo like `STP_EXEC=treaded`
    /// must not silently select the default executor — benchmarks and
    /// differential tests would quietly measure the wrong thing. Only
    /// top-level drivers (the `stp` CLI, benches) should take this hard
    /// error; library construction paths use
    /// [`from_env_lenient`](Self::from_env_lenient) instead.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`try_from_env`](Self::try_from_env), degraded to a warning: an
    /// unrecognized `STP_EXEC` warns once per process and falls back to
    /// the cooperative default instead of panicking. This is what
    /// serving paths and other library-level constructors use — a bad
    /// environment variable must cost a warning, never the process.
    pub fn from_env_lenient() -> Self {
        Self::try_from_env().unwrap_or_else(|e| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: {e}; defaulting to the cooperative executor");
            });
            ExecMode::Cooperative
        })
    }

    /// Lower-case display name (`"cooperative"` / `"threaded"`).
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::Cooperative => "cooperative",
            ExecMode::Threaded => "threaded",
        }
    }
}

impl Default for ExecMode {
    /// The environment-free default (cooperative) — what constructors
    /// documented as "ignores the environment overrides" use.
    fn default() -> Self {
        ExecMode::Cooperative
    }
}

/// Kernel configuration knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Library flavour scaling the α costs (NX vs MPI on the Paragon).
    pub lib: LibraryKind,
    /// Stack size for rank threads (threaded executor only). Algorithms
    /// here recurse at most `O(log p)` deep, so the default 256 KiB is
    /// plenty even at p=1024.
    pub stack_size: usize,
    /// Record a [`MsgTrace`] for every message (see
    /// [`SimOutcome::trace`]).
    pub trace: bool,
    /// Capture the symbolic communication schedule into this log (see
    /// [`crate::record`]). `None` disables recording.
    pub recorder: Option<ScheduleLog>,
    /// Enforce schedule sanity at runtime: every receive match must be
    /// unambiguous (no second in-flight message with the same
    /// `(src, tag)`), and no rank may finish with undelivered messages
    /// in its mailbox. These are the same checks `stp-analyzer` runs
    /// statically; enabling them turns schedule bugs into immediate
    /// panics at the offending operation.
    pub strict: bool,
    /// Which executor drives the rank programs. Defaults to
    /// [`ExecMode::from_env_lenient`] (cooperative unless
    /// `STP_EXEC=threaded`; an unrecognized value warns once and falls
    /// back rather than killing a long-lived host process).
    pub exec: ExecMode,
    /// Deterministic fault plan (drops, delays, link outages, node
    /// crashes, retransmission policy). `None` — or an inert plan — is
    /// the perfect network.
    pub faults: Option<FaultPlan>,
    /// Watchdog ceilings converting livelocks into
    /// [`SimError::WatchdogTripped`] / [`SimError::DeadlineExceeded`]
    /// instead of unbounded spins. Defaults to [`SimBudget::from_env`]
    /// (unlimited unless `STP_WATCHDOG_EVENTS` is set).
    pub budget: SimBudget,
    /// Cooperative cancellation: when the token is cancelled, the run
    /// exits with [`SimError::Cancelled`] at its next scheduling step.
    pub cancel: Option<CancelToken>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            lib: LibraryKind::Nx,
            stack_size: 256 * 1024,
            trace: false,
            recorder: None,
            strict: false,
            exec: ExecMode::from_env_lenient(),
            faults: None,
            budget: SimBudget::from_env(),
            cancel: None,
        }
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload (shared-ownership rope; delivery never copies bytes).
    pub data: Payload,
    /// Virtual time the message reached the receiver's node.
    pub arrival: Time,
    /// How long the receiver sat blocked waiting for it (0 if it was
    /// already in the mailbox).
    pub waited_ns: Time,
}

/// Diagnostic snapshot produced when the simulation deadlocks
/// (every live rank blocked in `recv` with no matching message).
#[derive(Debug, Clone)]
pub struct DeadlockInfo {
    /// Per-rank one-line state descriptions.
    pub states: Vec<String>,
}

// ---------------------------------------------------------------------
// Trap / grant protocol between rank threads and the kernel
// (threaded executor only).
// ---------------------------------------------------------------------

pub(crate) enum Trap {
    Send {
        dst: usize,
        tag: Tag,
        data: Payload,
    },
    /// Vectored multi-port issue: all members share one α_send charge
    /// and become network-ready at the same instant, so the network
    /// arbitrates them across the node's free port slots (ascending,
    /// in declared order) instead of serializing through slot 0.
    SendBatch {
        msgs: Vec<(usize, Tag, Payload)>,
    },
    Recv {
        src: Option<usize>,
        tag: Option<Tag>,
        /// Virtual-time deadline: when no matching message can be
        /// delivered by this instant the receive gives up (the
        /// `recv_timeout` primitive). `None` blocks forever.
        deadline: Option<Time>,
    },
    ComputeNs {
        ns: Time,
    },
    Memcpy {
        bytes: usize,
    },
    Barrier,
    /// Iteration boundary marker — only issued while schedule recording
    /// is active; costs zero virtual time.
    IterMark,
    Finished,
}

enum Grant {
    Sent { clock: Time },
    Received { env: Envelope, clock: Time },
    TimedOut { clock: Time },
    Done { clock: Time },
}

/// How a [`RankCtx`] reaches the kernel.
enum Link {
    /// Channel round-trips to a kernel on another thread.
    Threaded {
        to_kernel: Sender<Trap>,
        from_kernel: Receiver<Grant>,
    },
    /// Shared cell with the cooperative executor on the same thread.
    /// Sends/compute/memcpy are handled rank-locally against the cell
    /// (deferred ops + local clock); only recv/barrier suspend. The cell
    /// is a plain `Rc<RefCell<_>>`: everything cooperative runs on one
    /// thread, so the hot path pays two pointer checks per op instead of
    /// an atomic lock/unlock pair.
    Coop {
        cell: Rc<RefCell<CoopCell>>,
        alpha_send: Time,
        params: MachineParams,
    },
}

/// The per-rank handle user programs communicate through.
///
/// Obtained only inside [`simulate`]; every method advances this rank's
/// virtual clock. `recv` and `barrier` are `await`ed; everything else is
/// synchronous.
pub struct RankCtx {
    rank: usize,
    size: usize,
    clock: Time, // threaded-mode mirror; cooperative mode reads the cell
    recording: bool,
    ports: usize,
    link: Link,
}

impl RankCtx {
    pub(crate) fn new_coop(
        rank: usize,
        size: usize,
        recording: bool,
        cell: Rc<RefCell<CoopCell>>,
        alpha_send: Time,
        params: MachineParams,
    ) -> Self {
        let ports = params.ports_per_node;
        RankCtx {
            rank,
            size,
            clock: 0,
            recording,
            ports,
            link: Link::Coop {
                cell,
                alpha_send,
                params,
            },
        }
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the simulation.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Independent injection/ejection port slots per node on the machine
    /// this rank runs on — the `k` the k-ported algorithm family stripes
    /// its [`send_batch`](Self::send_batch) lanes across.
    #[inline]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// This rank's virtual clock (ns).
    #[inline]
    pub fn clock(&self) -> Time {
        match &self.link {
            Link::Threaded { .. } => self.clock,
            Link::Coop { cell, .. } => cell.borrow().clock,
        }
    }

    fn call(&mut self, trap: Trap) -> Grant {
        let Link::Threaded {
            to_kernel,
            from_kernel,
        } = &self.link
        else {
            unreachable!("channel trap on the cooperative link")
        };
        // A closed channel means the kernel already aborted on some other
        // failure (deadlock, another rank's panic, a tripped watchdog).
        // Unwind with the quiet sentinel — `resume_unwind` skips the
        // panic hook — so this rank exits without a spurious secondary
        // report; its `catch_unwind` swallows the sentinel.
        if to_kernel.send(trap).is_err() {
            resume_unwind(Box::new(KernelGone));
        }
        let grant = match from_kernel.recv() {
            Ok(g) => g,
            Err(_) => resume_unwind(Box::new(KernelGone)),
        };
        self.clock = match &grant {
            Grant::Sent { clock }
            | Grant::Done { clock }
            | Grant::TimedOut { clock }
            | Grant::Received { clock, .. } => *clock,
        };
        grant
    }

    /// Asynchronous send: returns after the software startup cost; the
    /// transfer itself proceeds in the network model.
    ///
    /// Copies `data` once into shared storage. Prefer
    /// [`send_payload`](Self::send_payload) when the payload already
    /// lives in a [`Payload`] — that path moves pointers, not bytes.
    pub fn send(&mut self, dst: usize, tag: Tag, data: &[u8]) {
        self.send_payload(dst, tag, Payload::from_slice(data));
    }

    /// Asynchronous send of a shared-ownership payload. The virtual-time
    /// cost model is identical to [`send`](Self::send) (it depends only
    /// on the byte length); no host-side copy is made.
    pub fn send_payload(&mut self, dst: usize, tag: Tag, data: impl Into<Payload>) {
        assert!(dst < self.size, "send to rank {dst} out of range");
        let data = data.into();
        if let Link::Coop {
            cell, alpha_send, ..
        } = &self.link
        {
            // Rank-local: charge the startup cost and defer the transfer.
            // The executor processes deferred sends in global
            // (issue clock, rank) order, so network state, sequence
            // numbers and mailbox contents match the threaded kernel.
            let mut c = cell.borrow_mut();
            let eff = c.clock;
            c.ops.push_back(CoopOp::Send {
                dst,
                tag,
                data,
                eff,
            });
            c.clock = eff + *alpha_send;
            return;
        }
        match self.call(Trap::Send { dst, tag, data }) {
            Grant::Sent { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Vectored send: issue every `(dst, tag, payload)` member in one
    /// call, charging a *single* α_send for the whole batch. All members
    /// become network-ready at `clock + α_send` simultaneously, so on a
    /// multi-port machine they occupy distinct injection slots (assigned
    /// in declared order, ascending) and their wire times overlap.
    ///
    /// An empty batch is a no-op and costs nothing.
    pub fn send_batch(&mut self, msgs: Vec<(usize, Tag, Payload)>) {
        if msgs.is_empty() {
            return;
        }
        for (dst, _, _) in &msgs {
            assert!(*dst < self.size, "send to rank {dst} out of range");
        }
        if let Link::Coop {
            cell, alpha_send, ..
        } = &self.link
        {
            // Rank-local like a plain send: one deferred op, one α_send.
            // The executor expands the batch through the same
            // `KernelCore` entry point the threaded kernel uses.
            let mut c = cell.borrow_mut();
            let eff = c.clock;
            c.ops.push_back(CoopOp::SendBatch { msgs, eff });
            c.clock = eff + *alpha_send;
            return;
        }
        match self.call(Trap::SendBatch { msgs }) {
            Grant::Sent { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Blocking receive. `src`/`tag` of `None` match anything; among
    /// matching messages the earliest-arriving is delivered.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<Tag>) -> RecvFuture<'_> {
        RecvFuture {
            ctx: self,
            src,
            tag,
            registered: false,
        }
    }

    /// Receive with a virtual-time deadline: resolves to the matched
    /// envelope, or to `None` once it is certain no matching message can
    /// be delivered by `clock() + timeout_ns` (giving up costs one
    /// α_recv, like a failed probe). The building block algorithms use
    /// to survive lossy fault plans — see `FaultPlan`.
    pub fn recv_timeout(
        &mut self,
        src: Option<usize>,
        tag: Option<Tag>,
        timeout_ns: Time,
    ) -> RecvTimeoutFuture<'_> {
        let deadline = self.clock().saturating_add(timeout_ns);
        RecvTimeoutFuture {
            ctx: self,
            src,
            tag,
            deadline,
            registered: false,
        }
    }

    /// Charge local computation time directly (ns).
    pub fn compute_ns(&mut self, ns: Time) {
        if let Link::Coop { cell, .. } = &self.link {
            // Rank-local: only this rank's clock moves; no kernel trip.
            cell.borrow_mut().clock += ns;
            return;
        }
        match self.call(Trap::ComputeNs { ns }) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Charge the machine's memory-copy cost for `bytes` bytes — used by
    /// algorithms when *combining* messages, which the paper identifies as
    /// a first-order cost on the T3D.
    pub fn charge_memcpy(&mut self, bytes: usize) {
        if let Link::Coop { cell, params, .. } = &self.link {
            cell.borrow_mut().clock += params.memcpy_ns(bytes);
            return;
        }
        match self.call(Trap::Memcpy { bytes }) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }

    /// Global barrier, modelled as a dissemination barrier:
    /// `⌈log₂ p⌉ · (α_send + α_recv)` after the last rank arrives.
    pub fn barrier(&mut self) -> BarrierFuture<'_> {
        BarrierFuture {
            ctx: self,
            registered: false,
        }
    }

    /// Mark an iteration boundary for the schedule recorder (zero
    /// virtual-time cost). A no-op unless the run records a schedule, so
    /// the runtime backends can call it unconditionally from
    /// `next_iteration`.
    pub fn iter_mark(&mut self) {
        if !self.recording {
            return;
        }
        if let Link::Coop { cell, .. } = &self.link {
            let mut c = cell.borrow_mut();
            let eff = c.clock;
            c.ops.push_back(CoopOp::IterMark { eff });
            return;
        }
        match self.call(Trap::IterMark) {
            Grant::Done { .. } => {}
            _ => unreachable!("kernel protocol violation"),
        }
    }
}

/// Future returned by [`RankCtx::recv`].
///
/// Threaded link: the blocking trap/grant round-trip happens inside the
/// first poll (never pends). Cooperative link: the first poll registers
/// a `RecvWait` with the executor and pends; the executor re-polls after
/// depositing the matched envelope.
pub struct RecvFuture<'a> {
    ctx: &'a mut RankCtx,
    src: Option<usize>,
    tag: Option<Tag>,
    registered: bool,
}

impl Future for RecvFuture<'_> {
    type Output = Envelope;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Envelope> {
        let this = self.get_mut();
        if let Link::Coop { cell, .. } = &this.ctx.link {
            let mut c = cell.borrow_mut();
            if !this.registered {
                this.registered = true;
                c.ops.push_back(CoopOp::RecvWait {
                    src: this.src,
                    tag: this.tag,
                    deadline: None,
                });
                return Poll::Pending;
            }
            return match c.grant.take() {
                Some(CoopGrant::Received(env)) => Poll::Ready(env),
                Some(_) => unreachable!("mismatched cooperative grant"),
                None => Poll::Pending,
            };
        }
        let (src, tag) = (this.src, this.tag);
        match this.ctx.call(Trap::Recv {
            src,
            tag,
            deadline: None,
        }) {
            Grant::Received { env, .. } => Poll::Ready(env),
            _ => unreachable!("kernel protocol violation"),
        }
    }
}

/// Future returned by [`RankCtx::recv_timeout`]; suspension protocol as
/// in [`RecvFuture`], resolving to `None` on deadline expiry.
pub struct RecvTimeoutFuture<'a> {
    ctx: &'a mut RankCtx,
    src: Option<usize>,
    tag: Option<Tag>,
    deadline: Time,
    registered: bool,
}

impl Future for RecvTimeoutFuture<'_> {
    type Output = Option<Envelope>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Option<Envelope>> {
        let this = self.get_mut();
        if let Link::Coop { cell, .. } = &this.ctx.link {
            let mut c = cell.borrow_mut();
            if !this.registered {
                this.registered = true;
                c.ops.push_back(CoopOp::RecvWait {
                    src: this.src,
                    tag: this.tag,
                    deadline: Some(this.deadline),
                });
                return Poll::Pending;
            }
            return match c.grant.take() {
                Some(CoopGrant::Received(env)) => Poll::Ready(Some(env)),
                Some(CoopGrant::TimedOut) => Poll::Ready(None),
                Some(CoopGrant::Done) => unreachable!("mismatched cooperative grant"),
                None => Poll::Pending,
            };
        }
        let (src, tag, deadline) = (this.src, this.tag, this.deadline);
        match this.ctx.call(Trap::Recv {
            src,
            tag,
            deadline: Some(deadline),
        }) {
            Grant::Received { env, .. } => Poll::Ready(Some(env)),
            Grant::TimedOut { .. } => Poll::Ready(None),
            _ => unreachable!("kernel protocol violation"),
        }
    }
}

/// Future returned by [`RankCtx::barrier`]; see [`RecvFuture`] for the
/// suspension protocol.
pub struct BarrierFuture<'a> {
    ctx: &'a mut RankCtx,
    registered: bool,
}

impl Future for BarrierFuture<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if let Link::Coop { cell, .. } = &this.ctx.link {
            let mut c = cell.borrow_mut();
            if !this.registered {
                this.registered = true;
                c.ops.push_back(CoopOp::BarrierWait);
                return Poll::Pending;
            }
            return match c.grant.take() {
                Some(CoopGrant::Done) => Poll::Ready(()),
                Some(_) => unreachable!("mismatched cooperative grant"),
                None => Poll::Pending,
            };
        }
        match this.ctx.call(Trap::Barrier) {
            Grant::Done { .. } => Poll::Ready(()),
            _ => unreachable!("kernel protocol violation"),
        }
    }
}

/// Drive a future that never pends to completion (the blocking
/// backends: threaded rank programs, the real-threads runtime backend).
pub fn block_on_ready<Fut: Future>(fut: Fut) -> Fut::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => {
            panic!("blocking-backend future suspended; only cooperative runs may pend")
        }
    }
}

/// Result of a completed simulation.
#[derive(Debug)]
pub struct SimOutcome<R> {
    /// Per-rank return values of the program.
    pub results: Vec<R>,
    /// Per-rank virtual finish times (ns).
    pub finish_ns: Vec<Time>,
    /// `max(finish_ns)` — the figure-of-merit reported in the paper (ns).
    pub makespan_ns: Time,
    /// Number of transfers that stalled on a busy link or port.
    pub contention_events: u64,
    /// Total stall time across all transfers (ns).
    pub contention_ns: Time,
    /// Per-message records (empty unless [`SimConfig::trace`] is set).
    pub trace: Vec<MsgTrace>,
    /// Per-rank fault counters (all zero without a fault plan).
    pub fault_stats: Vec<FaultStats>,
}

/// Per-rank fault-plane counters, accumulated at the sender.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transmission attempts lost to the fault plan and retried.
    pub retransmits: u64,
    /// Messages lost for good (every attempt dropped or unroutable).
    pub dropped: u64,
    /// Extra hops taken by detours around dead links.
    pub rerouted_hops: u64,
    /// Extra head-latency cost of those detour hops (ns).
    pub detour_ns: Time,
}

impl<R> SimOutcome<R> {
    /// Makespan in milliseconds (the unit the paper plots).
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns as f64 / 1e6
    }
}

/// Run `program` on every rank of `machine` with default config (NX).
///
/// ```
/// use mpp_model::Machine;
/// let machine = Machine::paragon(1, 2);
/// let out = mpp_sim::simulate(&machine, |mut ctx| async move {
///     if ctx.rank() == 0 {
///         ctx.send(1, 0, b"ping");
///         0
///     } else {
///         ctx.recv(Some(0), Some(0)).await.data.len()
///     }
/// });
/// assert_eq!(out.results, vec![0, 4]);
/// assert!(out.makespan_ns > 0);
/// ```
pub fn simulate<R, F, Fut>(machine: &Machine, program: F) -> SimOutcome<R>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    simulate_with(machine, &SimConfig::default(), program)
}

/// Run `program` on every rank of `machine` under the given config.
///
/// # Panics
///
/// This is the thin panicking shim over [`try_simulate_with`] for
/// callers who treat any [`SimError`] as fatal: it panics with the
/// error's `Display` form (a [`DeadlockInfo`] dump on deadlock, the
/// captured panic message on a rank panic, and so on). Library code
/// that must survive bad runs calls [`try_simulate_with`] instead.
pub fn simulate_with<R, F, Fut>(machine: &Machine, config: &SimConfig, program: F) -> SimOutcome<R>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    try_simulate_with(machine, config, program).unwrap_or_else(|e| panic!("{e}"))
}

/// Run `program` on every rank of `machine` with default config,
/// surfacing abnormal terminations as [`SimError`] instead of panicking.
pub fn try_simulate<R, F, Fut>(machine: &Machine, program: F) -> Result<SimOutcome<R>, SimError>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    try_simulate_with(machine, &SimConfig::default(), program)
}

/// Run `program` on every rank of `machine` under the given config.
///
/// Abnormal terminations — deadlock, a panicking rank program, watchdog
/// budget trips, wall-clock deadlines, cancellation, strict-check
/// violations — return `Err(SimError)` with the kernel shut down
/// cleanly (all rank threads joined, the schedule recorder flushed).
/// The process never aborts through this entry point.
pub fn try_simulate_with<R, F, Fut>(
    machine: &Machine,
    config: &SimConfig,
    program: F,
) -> Result<SimOutcome<R>, SimError>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    match config.exec {
        ExecMode::Cooperative => try_simulate_coop(machine, config, &program),
        ExecMode::Threaded => try_simulate_threaded(machine, config, &program),
    }
}

fn try_simulate_threaded<R, F, Fut>(
    machine: &Machine,
    config: &SimConfig,
    program: &F,
) -> Result<SimOutcome<R>, SimError>
where
    R: Send,
    F: Fn(RankCtx) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let p = machine.p();
    assert!(p > 0);

    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());
    // One slot per rank for the captured panic message of a rank program
    // that died. A rank writes its slot *before* dropping its trap
    // sender, so by the time the kernel observes the channel disconnect
    // the message is there to read.
    let panic_slots: Vec<Mutex<Option<String>>> = (0..p).map(|_| Mutex::new(None)).collect();
    let mut finish_ns = vec![0; p];
    let (contention_events, contention_ns);
    let trace;
    let fault_stats;

    {
        // Channel plumbing: one trap channel and one grant channel per rank.
        let mut trap_rxs = Vec::with_capacity(p);
        let mut grant_txs = Vec::with_capacity(p);
        let mut rank_ends = Vec::with_capacity(p);
        for rank in 0..p {
            let (trap_tx, trap_rx) = channel::<Trap>();
            let (grant_tx, grant_rx) = channel::<Grant>();
            trap_rxs.push(trap_rx);
            grant_txs.push(Some(grant_tx));
            rank_ends.push(Some((rank, trap_tx, grant_rx)));
        }

        let results = &results;
        let panic_slots = &panic_slots;
        let kernel_out = std::thread::scope(|scope| {
            for end in rank_ends.iter_mut() {
                let (rank, trap_tx, grant_rx) = end.take().unwrap();
                let recording = config.recorder.is_some();
                let ports = machine.params.ports_per_node;
                let builder = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(config.stack_size);
                builder
                    .spawn_scoped(scope, move || {
                        let finish_tx = trap_tx.clone();
                        let ctx = RankCtx {
                            rank,
                            size: p,
                            clock: 0,
                            recording,
                            ports,
                            link: Link::Threaded {
                                to_kernel: trap_tx,
                                from_kernel: grant_rx,
                            },
                        };
                        match catch_unwind(AssertUnwindSafe(|| block_on_ready(program(ctx)))) {
                            Ok(out) => {
                                results.lock().unwrap_or_else(PoisonError::into_inner)[rank] =
                                    Some(out);
                                // Ignore send failure: the kernel may
                                // already have aborted on another rank.
                                let _ = finish_tx.send(Trap::Finished);
                            }
                            Err(payload) => {
                                // A KernelGone sentinel means the kernel
                                // aborted first and this rank is merely
                                // being torn down — not a rank failure.
                                if !payload.is::<KernelGone>() {
                                    *panic_slots[rank]
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner) =
                                        Some(panic_message(&*payload));
                                }
                                // `finish_tx` (the last trap sender; the
                                // future holding `ctx` dropped during the
                                // unwind) drops here, after the slot
                                // write, disconnecting the kernel.
                            }
                        }
                    })
                    .expect("failed to spawn rank thread");
            }

            run_kernel(
                machine,
                config,
                &trap_rxs,
                &mut grant_txs,
                &mut finish_ns,
                panic_slots,
            )
        });
        (contention_events, contention_ns, trace, fault_stats) = kernel_out?;
    }

    let results: Vec<R> = results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(rank, r)| r.unwrap_or_else(|| panic!("rank {rank} produced no result")))
        .collect();
    let makespan_ns = finish_ns.iter().copied().max().unwrap_or(0);
    Ok(SimOutcome {
        results,
        finish_ns,
        makespan_ns,
        contention_events,
        contention_ns,
        trace,
        fault_stats,
    })
}

// ---------------------------------------------------------------------
// KernelCore: the executor-independent half of the kernel.
// ---------------------------------------------------------------------

/// Shared simulation state and event processing. Both executors route
/// every globally visible effect (network transfers, sequence numbers,
/// mailbox inserts, traces, schedule events, strict checks) through
/// these methods in the same global order, which is what makes their
/// outcomes bit-identical.
pub(crate) struct KernelCore<'m> {
    machine: &'m Machine,
    lib: LibraryKind,
    pub alpha_send: Time,
    pub alpha_recv: Time,
    trace_on: bool,
    strict: bool,
    recording: bool,
    recorder: Option<ScheduleLog>,
    net: NetworkState,
    mailboxes: Vec<Mailbox>,
    seq: u64,
    steps: Vec<u32>,
    trace: Vec<MsgTrace>,
    events: Vec<ScheduleEvent>,
    /// Scratch route reused across every transmit — the per-message
    /// route `Vec` allocation was a top allocator hit in the hot path.
    route_buf: Vec<mpp_model::Link>,
    /// Active fault plan; inert plans are normalized away so the
    /// fault-free fast path stays branch-one-deep.
    faults: Option<FaultPlan>,
    fault_stats: Vec<FaultStats>,
    /// Kernel events processed (sends, receive matches, timeout
    /// expiries, iteration marks, finishes) — the progress measure the
    /// watchdog's event budget is charged against. Identical across
    /// executors because both route these through `KernelCore`.
    events_processed: u64,
}

impl<'m> KernelCore<'m> {
    pub fn new(machine: &'m Machine, config: &SimConfig) -> Self {
        let p = machine.p();
        KernelCore {
            machine,
            lib: config.lib,
            alpha_send: machine.params.alpha_send(config.lib),
            alpha_recv: machine.params.alpha_recv(config.lib),
            trace_on: config.trace,
            strict: config.strict,
            recording: config.recorder.is_some(),
            recorder: config.recorder.clone(),
            net: {
                let mut net = NetworkState::new(machine);
                // Recording runs capture the network's full reservation
                // record per transfer — the cost-model conformance
                // ground truth.
                net.witness_on = config.recorder.is_some();
                net
            },
            mailboxes: (0..p).map(|_| Mailbox::new()).collect(),
            seq: 0,
            steps: vec![0; p],
            trace: Vec::new(),
            // Recording runs reuse a pooled event buffer so the schedule
            // log costs no steady-state allocations across a sweep.
            events: crate::record::pooled_events(),
            route_buf: Vec::new(),
            faults: config.faults.clone().filter(|plan| !plan.is_inert()),
            fault_stats: vec![FaultStats::default(); p],
            events_processed: 0,
        }
    }

    /// Kernel events processed so far (the watchdog's progress measure).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Charge one event for a timeout expiry (which bypasses the
    /// `process_*` methods) so pure retry livelocks still make watchdog
    /// progress.
    pub fn note_timeout(&mut self) {
        self.events_processed += 1;
    }

    /// Earliest arrival among `rank`'s mailbox messages matching the
    /// filter, if any.
    pub fn peek_mailbox(&self, rank: usize, src: Option<usize>, tag: Option<Tag>) -> Option<Time> {
        self.mailboxes[rank].peek_match(src, tag).map(|(a, _)| a)
    }

    pub fn mailbox_len(&self, rank: usize) -> usize {
        self.mailboxes[rank].len()
    }

    /// Process a send issued at `clock_at_issue`; returns the sender's
    /// post-send clock (`clock_at_issue + α_send`).
    pub fn process_send(
        &mut self,
        src_rank: usize,
        dst: usize,
        tag: Tag,
        data: Payload,
        clock_at_issue: Time,
    ) -> Time {
        self.events_processed += 1;
        let ready = clock_at_issue + self.alpha_send;
        let bytes = data.len();
        let wire_ns = self.machine.params.serialize_ns_lib(bytes, self.lib);
        self.seq += 1;
        let seq = self.seq;
        if self.recording {
            // One Send event per *logical* message, whatever the network
            // does to its transmission attempts.
            self.events.push(ScheduleEvent::Send {
                step: self.steps[src_rank],
                seq,
                src: src_rank,
                dst,
                tag,
                data: data.clone(),
                issue_ns: clock_at_issue,
            });
        }
        if let Some(arrival) = self.transmit(src_rank, dst, seq, bytes, wire_ns, ready) {
            if self.recording {
                // The network's reservation record for this delivery —
                // local memcpys reserve nothing, routed transfers hand
                // over the witness filled by `transfer_routed`.
                let ev = if src_rank == dst {
                    ScheduleEvent::Xfer {
                        seq,
                        src: src_rank,
                        dst,
                        bytes,
                        ready_ns: ready,
                        start_ns: ready,
                        done_ns: arrival,
                        stall_ns: 0,
                        out_slot: None,
                        in_slot: None,
                        windows: Vec::new(),
                    }
                } else {
                    let stall_ns = self.net.last_stall_ns;
                    let w = &mut self.net.witness;
                    ScheduleEvent::Xfer {
                        seq,
                        src: src_rank,
                        dst,
                        bytes,
                        ready_ns: w.ready_ns,
                        start_ns: w.start_ns,
                        done_ns: w.done_ns,
                        stall_ns,
                        out_slot: Some(w.out_slot),
                        in_slot: Some(w.in_slot),
                        windows: std::mem::take(&mut w.windows),
                    }
                };
                self.events.push(ev);
            }
            if self.trace_on {
                self.trace.push(MsgTrace {
                    src: src_rank,
                    dst,
                    tag,
                    bytes,
                    send_ns: ready,
                    arrival_ns: arrival,
                    stalled_ns: self.net.last_stall_ns,
                });
            }
            self.mailboxes[dst].insert(MsgRec {
                arrival,
                seq,
                src: src_rank,
                tag,
                data,
            });
        }
        // A lost message (every attempt dropped) never reaches a
        // mailbox; the sender still only pays α_send.
        ready
    }

    /// Process a vectored send batch issued at `clock_at_issue`: every
    /// member is a full logical message (own seq, own Send/Xfer events,
    /// own fault decisions), but the whole batch shares one α_send —
    /// each member's network-ready instant is `clock_at_issue + α_send`,
    /// so the port arbiter hands members distinct free injection slots
    /// in declared order. Returns the sender's post-batch clock
    /// (`clock_at_issue + α_send`, exactly one startup charge).
    pub fn process_send_batch(
        &mut self,
        src_rank: usize,
        msgs: Vec<(usize, Tag, Payload)>,
        clock_at_issue: Time,
    ) -> Time {
        debug_assert!(!msgs.is_empty(), "empty batches are filtered at issue");
        let mut ready = clock_at_issue + self.alpha_send;
        for (dst, tag, data) in msgs {
            // Same issue clock for every member ⇒ `process_send`
            // computes the identical ready instant each time; the only
            // per-member state that advances is the network reservation.
            ready = self.process_send(src_rank, dst, tag, data, clock_at_issue);
        }
        ready
    }

    /// Push one logical message through the (possibly faulty) network;
    /// `Some(arrival)` on success, `None` when every transmission
    /// attempt was dropped or unroutable.
    ///
    /// Fault decisions are pure hashes of `(plan seed, seq, attempt)`
    /// and outage windows are functions of the injection instant, so the
    /// result depends only on this call's arguments and the network
    /// state — identical across executors, which process sends in the
    /// same global order.
    fn transmit(
        &mut self,
        src_rank: usize,
        dst: usize,
        seq: u64,
        bytes: usize,
        wire_ns: Time,
        ready: Time,
    ) -> Option<Time> {
        let machine = self.machine;
        if src_rank == dst {
            // Local delivery is a memcpy; the fault plane models the
            // network and cannot lose it.
            self.net.last_stall_ns = 0;
            return Some(ready + machine.params.memcpy_ns(bytes));
        }
        let u = machine.node_of(src_rank);
        let v = machine.node_of(dst);
        let Some(plan) = self.faults.as_ref() else {
            machine.topology.route_into(u, v, &mut self.route_buf);
            return Some(self.net.transfer_routed(
                machine,
                src_rank,
                dst,
                bytes,
                wire_ns,
                ready,
                &self.route_buf,
            ));
        };
        let base_hops = machine.topology.distance(u, v);
        let max_attempts = plan.retry.max_attempts.max(1);
        for attempt in 0..max_attempts {
            // Attempt k is injected after the retry backoff plus any
            // fault-plan injection delay — all exact virtual time.
            let inject = ready
                .saturating_add(plan.retry.delay_for(attempt))
                .saturating_add(plan.injection_delay_ns(seq, attempt));
            // The structural-fault detour search still builds its own
            // route (cold path); the plain faulted path reuses the
            // scratch buffer like the fault-free one.
            let detour = if plan.has_structural_faults() {
                let dead = plan.dead_links_at(inject, &machine.topology);
                Some(machine.topology.route_avoiding(u, v, &dead))
            } else {
                machine.topology.route_into(u, v, &mut self.route_buf);
                None
            };
            let route: Option<&[mpp_model::Link]> = match &detour {
                Some(Some(r)) => Some(r),
                Some(None) => None, // no live route this attempt
                None => Some(&self.route_buf),
            };
            if !plan.should_drop(seq, attempt) {
                if let Some(route) = route {
                    if route.len() > base_hops {
                        let stats = &mut self.fault_stats[src_rank];
                        stats.rerouted_hops += (route.len() - base_hops) as u64;
                        stats.detour_ns +=
                            machine.params.hops_ns(route.len()) - machine.params.hops_ns(base_hops);
                    }
                    return Some(
                        self.net
                            .transfer_routed(machine, src_rank, dst, bytes, wire_ns, inject, route),
                    );
                }
            }
            // This attempt is lost (dropped in flight, or no live route
            // existed); a dropped attempt reserves no network resources.
            let exhausted = attempt + 1 >= max_attempts;
            if exhausted {
                self.fault_stats[src_rank].dropped += 1;
            } else {
                self.fault_stats[src_rank].retransmits += 1;
            }
            if self.recording {
                self.events.push(ScheduleEvent::Dropped {
                    seq,
                    src: src_rank,
                    dst,
                    attempt,
                    exhausted,
                });
            }
        }
        self.net.last_stall_ns = 0;
        None
    }

    /// Process a receive selected by the scheduler (a match must exist).
    /// Returns the envelope and the receiver's new clock, or the strict
    /// diagnostic when the match was ambiguous.
    pub fn process_recv(
        &mut self,
        rank: usize,
        src: Option<usize>,
        tag: Option<Tag>,
        clock: Time,
    ) -> Result<(Envelope, Time), String> {
        self.events_processed += 1;
        let rec = self.mailboxes[rank]
            .take_match(src, tag)
            .expect("selected recv without match");
        if self.recording || self.strict {
            // Duplicates left behind share the matched (src, tag):
            // delivery order alone decided which one this receive
            // consumed — the match-ambiguity hazard.
            let dup = self.mailboxes[rank].count_src_tag(rec.src, rec.tag) + 1;
            if self.recording {
                self.events.push(ScheduleEvent::Recv {
                    step: self.steps[rank],
                    rank,
                    src_filter: src,
                    tag_filter: tag,
                    seq: rec.seq,
                    src: rec.src,
                    tag: rec.tag,
                    dup_in_flight: dup,
                    start_ns: clock,
                    arrival_ns: rec.arrival,
                });
            }
            if self.strict && dup > 1 {
                return Err(format!(
                    "ambiguous receive at rank {rank}: {dup} in-flight messages \
                     with (src={}, tag={}) — delivery depends on queue order",
                    rec.src, rec.tag
                ));
            }
        }
        let arrival = rec.arrival;
        let waited_ns = arrival.saturating_sub(clock);
        let new_clock = clock.max(arrival) + self.alpha_recv;
        Ok((
            Envelope {
                src: rec.src,
                tag: rec.tag,
                data: rec.data,
                arrival,
                waited_ns,
            },
            new_clock,
        ))
    }

    pub fn process_iter_mark(&mut self, rank: usize) {
        self.events_processed += 1;
        self.steps[rank] += 1;
        if self.recording {
            self.events.push(ScheduleEvent::IterEnd { rank });
        }
    }

    /// Process a rank's termination at its final clock `finish_ns`;
    /// `Err` carries the strict leftover diagnostic.
    pub fn process_finish(&mut self, rank: usize, finish_ns: Time) -> Result<(), String> {
        self.events_processed += 1;
        let leftover = self.mailboxes[rank].len();
        if self.recording {
            self.events.push(ScheduleEvent::Finished {
                rank,
                leftover,
                finish_ns,
            });
        }
        if self.strict && leftover > 0 {
            return Err(format!(
                "rank {rank} finished with {leftover} undelivered message(s) \
                 in its mailbox — unmatched send(s)"
            ));
        }
        Ok(())
    }

    /// Barrier exit time: dissemination rounds after the last arrival.
    pub fn barrier_release_time(&self, t_max: Time, live: usize) -> Time {
        let rounds = usize::BITS - (live.max(2) - 1).leading_zeros();
        t_max + rounds as Time * (self.alpha_send + self.alpha_recv)
    }

    /// Record a rank stuck in `recv` at deadlock time.
    pub fn record_blocked(&mut self, rank: usize, src: Option<usize>, tag: Option<Tag>) {
        self.events.push(ScheduleEvent::Blocked {
            rank,
            src_filter: src,
            tag_filter: tag,
        });
    }

    /// Hand the accumulated schedule events to the configured recorder
    /// (if any). Safe to call from abort paths: later flushes append
    /// nothing.
    pub fn flush_recording(&mut self, deadlocked: bool) {
        if let Some(log) = &self.recorder {
            let mut rec = log.lock().expect("schedule log poisoned");
            rec.events.append(&mut self.events);
            rec.deadlocked |= deadlocked;
        }
    }

    pub fn memcpy_ns(&self, bytes: usize) -> Time {
        self.machine.params.memcpy_ns(bytes)
    }

    pub fn contention(&self) -> (u64, Time) {
        (self.net.contention_events, self.net.contention_ns)
    }

    pub fn take_trace(&mut self) -> Vec<MsgTrace> {
        std::mem::take(&mut self.trace)
    }

    pub fn take_fault_stats(&mut self) -> Vec<FaultStats> {
        std::mem::take(&mut self.fault_stats)
    }
}

impl Drop for KernelCore<'_> {
    fn drop(&mut self) {
        // `flush_recording` appends the events out but keeps the buffer's
        // capacity; park it for the next run on this thread.
        crate::record::recycle_events(std::mem::take(&mut self.events));
    }
}

// ---------------------------------------------------------------------
// The threaded kernel loop (differential baseline).
// ---------------------------------------------------------------------

struct RankState {
    clock: Time,
    pending: Option<Trap>,
    done: bool,
    in_barrier: bool,
}

/// Effective time of a rank's pending trap, `None` when the rank is not
/// schedulable (blocked receive with no match and no deadline, or a
/// barrier trap, which only the classification pass may consume).
fn eff_of(core: &KernelCore, rank: usize, st: &RankState) -> Option<Time> {
    match st.pending.as_ref()? {
        Trap::Recv { src, tag, deadline } => {
            let match_eff = core.peek_mailbox(rank, *src, *tag).map(|a| st.clock.max(a));
            match (match_eff, deadline) {
                (Some(e), Some(d)) => Some(e.min(*d)),
                (Some(e), None) => Some(e),
                // No match yet, but the rank gives up at the deadline —
                // it stays schedulable.
                (None, Some(d)) => Some(*d),
                (None, None) => None, // blocked
            }
        }
        Trap::Barrier => None,
        _ => Some(st.clock),
    }
}

/// Grant `rank`'s pending (non-barrier) trap and pull its next one.
/// `Err` is an abnormal termination (strict violation or rank panic);
/// [`run_kernel`] owns the cleanup.
#[allow(clippy::too_many_arguments)]
fn dispatch_trap(
    core: &mut KernelCore,
    states: &mut [RankState],
    trap_rxs: &[Receiver<Trap>],
    grant_txs: &mut [Option<Sender<Grant>>],
    panic_slots: &[Mutex<Option<String>>],
    finish_ns: &mut [Time],
    live: &mut usize,
    rank: usize,
) -> Result<(), SimError> {
    let trap = states[rank].pending.take().unwrap();
    match trap {
        Trap::Send { dst, tag, data } => {
            let ready = core.process_send(rank, dst, tag, data, states[rank].clock);
            states[rank].clock = ready;
            send_grant(grant_txs, rank, Grant::Sent { clock: ready });
            states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
        }
        Trap::SendBatch { msgs } => {
            let ready = core.process_send_batch(rank, msgs, states[rank].clock);
            states[rank].clock = ready;
            send_grant(grant_txs, rank, Grant::Sent { clock: ready });
            states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
        }
        Trap::Recv { src, tag, deadline } => {
            // Deliver iff a match can complete by the deadline;
            // otherwise this was scheduled as a timeout expiry.
            let deliverable = core
                .peek_mailbox(rank, src, tag)
                .map(|a| states[rank].clock.max(a))
                .is_some_and(|e| deadline.is_none_or(|d| e <= d));
            if deliverable {
                let (env, clock) = core
                    .process_recv(rank, src, tag, states[rank].clock)
                    .map_err(SimError::StrictViolation)?;
                states[rank].clock = clock;
                send_grant(grant_txs, rank, Grant::Received { env, clock });
                states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
            } else {
                let d = deadline.expect("scheduled recv without match or deadline");
                core.note_timeout();
                let clock = d + core.alpha_recv;
                states[rank].clock = clock;
                send_grant(grant_txs, rank, Grant::TimedOut { clock });
                states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
            }
        }
        Trap::ComputeNs { ns } => {
            states[rank].clock += ns;
            let clock = states[rank].clock;
            send_grant(grant_txs, rank, Grant::Done { clock });
            states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
        }
        Trap::Memcpy { bytes } => {
            states[rank].clock += core.memcpy_ns(bytes);
            let clock = states[rank].clock;
            send_grant(grant_txs, rank, Grant::Done { clock });
            states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
        }
        Trap::Barrier => unreachable!("barrier traps handled by the classification pass"),
        Trap::IterMark => {
            core.process_iter_mark(rank);
            let clock = states[rank].clock;
            send_grant(grant_txs, rank, Grant::Done { clock });
            states[rank].pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
        }
        Trap::Finished => {
            core.process_finish(rank, states[rank].clock)
                .map_err(SimError::StrictViolation)?;
            states[rank].done = true;
            finish_ns[rank] = states[rank].clock;
            grant_txs[rank] = None;
            *live -= 1;
        }
    }
    Ok(())
}

/// The threaded kernel proper. Runs on the calling thread while rank
/// threads wait. Returns
/// `(contention_events, contention_ns, trace, fault_stats)`, or the
/// `SimError` describing an abnormal termination — in which case every
/// grant sender has been dropped, so blocked rank threads unwind with
/// the quiet `KernelGone` sentinel and the enclosing `thread::scope`
/// joins them before the error propagates.
fn run_kernel(
    machine: &Machine,
    config: &SimConfig,
    trap_rxs: &[Receiver<Trap>],
    grant_txs: &mut [Option<Sender<Grant>>],
    finish_ns: &mut [Time],
    panic_slots: &[Mutex<Option<String>>],
) -> Result<(u64, Time, Vec<MsgTrace>, Vec<FaultStats>), SimError> {
    let mut core = KernelCore::new(machine, config);
    match kernel_loop(
        machine,
        config,
        &mut core,
        trap_rxs,
        grant_txs,
        finish_ns,
        panic_slots,
    ) {
        Ok(()) => {
            core.flush_recording(false);
            let (contention_events, contention_ns) = core.contention();
            Ok((
                contention_events,
                contention_ns,
                core.take_trace(),
                core.take_fault_stats(),
            ))
        }
        Err(e) => {
            core.flush_recording(matches!(e, SimError::Deadlock { .. }));
            for tx in grant_txs.iter_mut() {
                *tx = None;
            }
            Err(e)
        }
    }
}

/// The scheduling loop of the threaded kernel; every abnormal exit
/// bubbles out as `Err` for [`run_kernel`] to clean up after.
#[allow(clippy::too_many_arguments)]
fn kernel_loop(
    machine: &Machine,
    config: &SimConfig,
    core: &mut KernelCore,
    trap_rxs: &[Receiver<Trap>],
    grant_txs: &mut [Option<Sender<Grant>>],
    finish_ns: &mut [Time],
    panic_slots: &[Mutex<Option<String>>],
) -> Result<(), SimError> {
    let p = machine.p();
    let mut states: Vec<RankState> = (0..p)
        .map(|_| RankState {
            clock: 0,
            pending: None,
            done: false,
            in_barrier: false,
        })
        .collect();
    let mut live = p;
    let mut watchdog = Watchdog::for_run(&config.budget, &config.cancel);

    // Collect the initial trap from every rank (threads run concurrently
    // up to their first communication call — zero virtual time).
    for (rank, st) in states.iter_mut().enumerate() {
        st.pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
    }

    while live > 0 {
        // Classify pending barrier traps.
        for st in states.iter_mut() {
            if !st.done && matches!(st.pending, Some(Trap::Barrier)) {
                st.in_barrier = true;
            }
        }

        // Barrier release: every live rank has arrived.
        let in_barrier = states.iter().filter(|s| !s.done && s.in_barrier).count();
        if in_barrier == live && live > 0 {
            let t_max = states
                .iter()
                .filter(|s| !s.done)
                .map(|s| s.clock)
                .max()
                .unwrap();
            let t_rel = core.barrier_release_time(t_max, live);
            for (rank, st) in states.iter_mut().enumerate() {
                if st.done {
                    continue;
                }
                st.clock = t_rel;
                st.in_barrier = false;
                st.pending = None;
                send_grant(grant_txs, rank, Grant::Done { clock: t_rel });
            }
            for (rank, st) in states.iter_mut().enumerate() {
                if !st.done {
                    st.pending = Some(recv_trap(trap_rxs, panic_slots, rank)?);
                }
            }
            continue;
        }

        // Pick the processable rank with the smallest effective time.
        let mut best: Option<(Time, usize)> = None;
        for (rank, st) in states.iter().enumerate() {
            if st.done || st.in_barrier {
                continue;
            }
            let Some(eff) = eff_of(core, rank, st) else {
                continue; // blocked recv (or a barrier not yet classified)
            };
            if best.is_none_or(|(bt, br)| (eff, rank) < (bt, br)) {
                best = Some((eff, rank));
            }
        }

        let Some((t, first)) = best else {
            let info = DeadlockInfo {
                states: describe_ranks(core, &states),
            };
            return Err(SimError::Deadlock {
                machine: machine.name.to_string(),
                info,
            });
        };

        if let Some(wd) = watchdog.as_mut() {
            if let Err(trip) = wd.check(core.events_processed(), t) {
                return Err(trip_error(trip, core, &states));
            }
        }

        if core.alpha_send > 0 {
            // Batched same-tick grant pass: every rank whose effective
            // time equals `t` is granted in one sweep, ascending by rank,
            // without re-scanning all p ranks between grants. This visits
            // traps in exactly the `(eff, rank)` order the re-scanning
            // loop would: with α_send > 0 a grant at `t` can only create
            // work strictly after `t` for *other* ranks (anything it
            // sends arrives later), and ranks consume only their own
            // mailboxes, so batch membership is stable; a rank's *own*
            // zero-cost follow-up (e.g. an iteration mark) at `t` has
            // this rank's index and is drained before moving on.
            for rank in first..p {
                loop {
                    let st = &states[rank];
                    if st.done || st.in_barrier {
                        break;
                    }
                    match eff_of(core, rank, st) {
                        Some(eff) if eff == t => {}
                        _ => break,
                    }
                    dispatch_trap(
                        core,
                        &mut states,
                        trap_rxs,
                        grant_txs,
                        panic_slots,
                        finish_ns,
                        &mut live,
                        rank,
                    )?;
                }
            }
        } else {
            // Degenerate zero-α machine: a send may arrive at its issue
            // instant and re-ready an already-visited rank at `t`, so
            // grant strictly one trap per scan.
            dispatch_trap(
                core,
                &mut states,
                trap_rxs,
                grant_txs,
                panic_slots,
                finish_ns,
                &mut live,
                first,
            )?;
        }
    }

    Ok(())
}

/// Pull `rank`'s next trap; a disconnected trap channel means the rank
/// thread panicked (it writes its panic message to `panic_slots[rank]`
/// before dropping the last sender).
fn recv_trap(
    trap_rxs: &[Receiver<Trap>],
    panic_slots: &[Mutex<Option<String>>],
    rank: usize,
) -> Result<Trap, SimError> {
    match trap_rxs[rank].recv() {
        Ok(t) => Ok(t),
        Err(_) => {
            let message = panic_slots[rank]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .unwrap_or_else(|| "<rank thread exited without a panic message>".to_string());
            Err(SimError::RankPanic { rank, message })
        }
    }
}

fn send_grant(grant_txs: &[Option<Sender<Grant>>], rank: usize, grant: Grant) {
    // A failed send means the rank thread died between trapping and
    // receiving its grant; the death is diagnosed by the next
    // `recv_trap` on the rank's closed trap channel.
    if let Some(tx) = grant_txs[rank].as_ref() {
        let _ = tx.send(grant);
    }
}

/// Per-rank one-line state descriptions for deadlock/watchdog dumps;
/// ranks sitting in `recv` are also recorded into the schedule log as
/// `Blocked` events so the analyzer sees the wait-for structure.
fn describe_ranks(core: &mut KernelCore, states: &[RankState]) -> Vec<String> {
    let mut out = Vec::with_capacity(states.len());
    for (rank, st) in states.iter().enumerate() {
        let what = if st.done {
            "done".to_string()
        } else {
            match st.pending.as_ref() {
                Some(Trap::Recv { src, tag, .. }) => {
                    core.record_blocked(rank, *src, *tag);
                    format!(
                        "blocked recv(src={src:?}, tag={tag:?}), mailbox has {} msgs",
                        core.mailbox_len(rank)
                    )
                }
                Some(Trap::Barrier) => "waiting in barrier".to_string(),
                _ => "runnable?".to_string(),
            }
        };
        out.push(format!("rank {rank} @ {}ns: {what}", st.clock));
    }
    out
}

/// Translate a watchdog trip into the corresponding [`SimError`],
/// attaching the per-rank dump where the variant carries one.
fn trip_error(trip: WatchdogTrip, core: &mut KernelCore, states: &[RankState]) -> SimError {
    match trip {
        WatchdogTrip::Budget(events, virtual_ns) => SimError::WatchdogTripped {
            events,
            virtual_ns,
            states: describe_ranks(core, states),
        },
        WatchdogTrip::Wall(wall_ms) => SimError::DeadlineExceeded { wall_ms },
        WatchdogTrip::Cancelled => SimError::Cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_model::Machine;

    fn ring_machine() -> Machine {
        Machine::paragon(2, 4)
    }

    fn threaded() -> SimConfig {
        SimConfig {
            exec: ExecMode::Threaded,
            ..SimConfig::default()
        }
    }

    fn coop() -> SimConfig {
        SimConfig {
            exec: ExecMode::Cooperative,
            ..SimConfig::default()
        }
    }

    #[test]
    fn two_rank_ping() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 7, b"hello");
                0u64
            } else {
                let env = ctx.recv(Some(0), Some(7)).await;
                assert_eq!(env.data, b"hello");
                env.arrival
            }
        });
        assert!(out.makespan_ns > 0);
        // Receiver finishes after arrival + alpha_recv.
        assert!(out.finish_ns[1] > out.results[1]);
        // Sender pays only startup.
        assert_eq!(
            out.finish_ns[0],
            m.params.alpha_send(mpp_model::LibraryKind::Nx)
        );
    }

    #[test]
    fn messages_delivered_in_arrival_order() {
        // Rank 2 is adjacent to rank 1; rank 3 is farther. Rank 1 receives
        // twice with wildcard and must get the earlier arrival first even
        // though the farther message was sent first (same clocks).
        let m = Machine::paragon(1, 8);
        let out = simulate(&m, |mut ctx| async move {
            match ctx.rank() {
                7 => {
                    ctx.send(0, 1, b"far");
                    Vec::new()
                }
                1 => {
                    ctx.send(0, 1, b"near");
                    Vec::new()
                }
                0 => {
                    let a = ctx.recv(None, Some(1)).await;
                    let b = ctx.recv(None, Some(1)).await;
                    vec![a.src, b.src]
                }
                _ => Vec::new(),
            }
        });
        assert_eq!(out.results[0], vec![1, 7]);
    }

    #[test]
    fn recv_wait_time_reported() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.compute_ns(1_000_000); // sender is slow
                ctx.send(1, 0, &[1; 128]);
                0
            } else {
                let env = ctx.recv(Some(0), Some(0)).await;
                env.waited_ns
            }
        });
        assert!(
            out.results[1] >= 1_000_000,
            "receiver should have waited ≥1ms"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let m = ring_machine();
        let run = || {
            simulate(&m, |mut ctx| async move {
                let p = ctx.size();
                let next = (ctx.rank() + 1) % p;
                let prev = (ctx.rank() + p - 1) % p;
                ctx.send(next, 3, &vec![ctx.rank() as u8; 256]);
                let env = ctx.recv(Some(prev), Some(3)).await;
                ctx.charge_memcpy(env.data.len());
                ctx.clock()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.contention_ns, b.contention_ns);
    }

    #[test]
    fn cooperative_and_threaded_agree_exactly() {
        // The differential core check: both executors must produce
        // bit-identical virtual outcomes on a messy program mixing
        // wildcard receives, compute, memcpy and barriers.
        let m = ring_machine();
        let run = |config: &SimConfig| {
            simulate_with(&m, config, |mut ctx| async move {
                let p = ctx.size();
                let me = ctx.rank();
                ctx.compute_ns(137 * me as u64);
                for d in 0..3usize {
                    ctx.send((me + d + 1) % p, d as u32, &vec![me as u8; 64 + 32 * d]);
                }
                let mut got = Vec::new();
                for _ in 0..3 {
                    let env = ctx.recv(None, None).await;
                    ctx.charge_memcpy(env.data.len());
                    got.push((env.src, env.tag, env.arrival));
                }
                ctx.barrier().await;
                (got, ctx.clock())
            })
        };
        let a = run(&coop());
        let b = run(&threaded());
        assert_eq!(a.results, b.results);
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.contention_events, b.contention_events);
        assert_eq!(a.contention_ns, b.contention_ns);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let m = ring_machine();
        let out = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.compute_ns(5_000_000);
            }
            ctx.barrier().await;
            ctx.clock()
        });
        let clocks: Vec<_> = out.results;
        assert!(clocks.iter().all(|&c| c == clocks[0]));
        assert!(clocks[0] >= 5_000_000);
    }

    #[test]
    fn compute_and_memcpy_advance_clock() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.compute_ns(123);
                ctx.charge_memcpy(1024);
            }
            ctx.clock()
        });
        let expect = 123 + m.params.memcpy_ns(1024);
        assert_eq!(out.results[0], expect);
        assert_eq!(out.results[1], 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let m = Machine::paragon(1, 2);
        simulate(&m, |mut ctx| async move {
            // Both ranks receive, nobody sends.
            let _ = ctx.recv(None, None).await;
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected_threaded() {
        let m = Machine::paragon(1, 2);
        simulate_with(&m, &threaded(), |mut ctx| async move {
            let _ = ctx.recv(None, None).await;
        });
    }

    #[test]
    fn mpi_config_slower_than_nx() {
        let m = Machine::paragon(1, 4);
        let prog = |mut ctx: RankCtx| async move {
            if ctx.rank() == 0 {
                for dst in 1..4 {
                    ctx.send(dst, 0, &[0u8; 1024]);
                }
            } else {
                ctx.recv(Some(0), Some(0)).await;
            }
        };
        let nx = simulate_with(
            &m,
            &SimConfig {
                lib: LibraryKind::Nx,
                ..Default::default()
            },
            prog,
        );
        let mpi = simulate_with(
            &m,
            &SimConfig {
                lib: LibraryKind::Mpi,
                ..Default::default()
            },
            prog,
        );
        assert!(mpi.makespan_ns > nx.makespan_ns);
        let ratio = mpi.makespan_ns as f64 / nx.makespan_ns as f64;
        assert!(ratio < 1.10, "MPI overhead should be modest, got {ratio}");
    }

    #[test]
    fn tag_filtering_respects_order_within_tag() {
        let m = Machine::paragon(1, 2);
        let out = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 10, b"a");
                ctx.send(1, 20, b"b");
                ctx.send(1, 10, b"c");
                Vec::new()
            } else {
                let x = ctx.recv(Some(0), Some(20)).await;
                let y = ctx.recv(Some(0), Some(10)).await;
                let z = ctx.recv(Some(0), Some(10)).await;
                vec![x.data, y.data, z.data]
            }
        });
        assert_eq!(
            out.results[1],
            vec![b"b".to_vec(), b"a".to_vec(), b"c".to_vec()]
        );
    }

    #[test]
    fn hot_spot_contention_is_counted() {
        let m = Machine::paragon(4, 4);
        let out = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                for _ in 1..16 {
                    ctx.recv(None, None).await;
                }
            } else {
                ctx.send(0, 0, &[0u8; 16384]);
            }
        });
        assert!(
            out.contention_events > 0,
            "gather to rank 0 must show contention"
        );
    }

    #[test]
    fn tracing_records_every_message() {
        let m = Machine::paragon(2, 2);
        let config = SimConfig {
            trace: true,
            ..Default::default()
        };
        let out = simulate_with(&m, &config, |mut ctx| async move {
            if ctx.rank() == 0 {
                for dst in 1..4 {
                    ctx.send(dst, 5, &[0u8; 256]);
                }
            } else {
                ctx.recv(Some(0), Some(5)).await;
            }
        });
        assert_eq!(out.trace.len(), 3);
        for t in &out.trace {
            assert_eq!(t.src, 0);
            assert_eq!(t.bytes, 256);
            assert!(t.arrival_ns > t.send_ns);
        }
        // Untraced runs stay empty.
        let out2 = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 5, &[0u8; 8]);
            } else if ctx.rank() == 1 {
                ctx.recv(Some(0), Some(5)).await;
            }
        });
        assert!(out2.trace.is_empty());
    }

    #[test]
    fn makespan_is_max_finish() {
        let m = ring_machine();
        let out = simulate(&m, |mut ctx| async move {
            ctx.compute_ns(100 * (ctx.rank() as u64 + 1));
        });
        assert_eq!(out.makespan_ns, 800);
        assert_eq!(out.finish_ns[7], 800);
    }

    /// Keep deliberate test panics out of the captured test output.
    /// Rank-thread panics escape libtest's output capture, so the hook
    /// swallows exactly the marker message our fixtures use.
    fn hush_deliberate_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = panic_message(info.payload());
                if msg.contains("deliberate test panic") {
                    return;
                }
                prev(info);
            }));
        });
    }

    #[test]
    fn rank_panic_is_a_structured_error() {
        hush_deliberate_panics();
        let m = Machine::paragon(1, 2);
        for config in [coop(), threaded()] {
            let err = try_simulate_with(&m, &config, |mut ctx| async move {
                if ctx.rank() == 1 {
                    panic!("deliberate test panic at rank 1");
                }
                // Rank 0 would block forever; the kernel must shut it
                // down cleanly once rank 1 dies.
                let _ = ctx.recv(Some(1), None).await;
            })
            .unwrap_err();
            match err {
                SimError::RankPanic { rank, message } => {
                    assert_eq!(rank, 1, "{} executor", config.exec.name());
                    assert!(message.contains("deliberate test panic"), "got: {message}");
                }
                other => panic!("expected RankPanic, got {other}"),
            }
        }
    }

    #[test]
    fn try_simulate_reports_deadlock_without_panicking() {
        let m = Machine::paragon(1, 2);
        for config in [coop(), threaded()] {
            let err = try_simulate_with(&m, &config, |mut ctx| async move {
                let _ = ctx.recv(None, None).await;
            })
            .unwrap_err();
            assert_eq!(err.kind(), "deadlock");
            match err {
                SimError::Deadlock { machine, info } => {
                    assert_eq!(machine, m.name);
                    assert_eq!(info.states.len(), 2);
                }
                other => panic!("expected Deadlock, got {other}"),
            }
        }
    }

    /// Two ranks ping-ponging forever — the livelock the watchdog exists
    /// to bound.
    async fn ping_pong_forever(mut ctx: RankCtx) -> u32 {
        let peer = 1 - ctx.rank();
        loop {
            ctx.send(peer, 0, b"x");
            let env = ctx.recv(Some(peer), Some(0)).await;
            if env.data.is_empty() {
                break 0; // unreachable; pins the return type
            }
        }
    }

    #[test]
    fn watchdog_event_budget_trips_on_livelock() {
        let m = Machine::paragon(1, 2);
        for mut config in [coop(), threaded()] {
            config.budget = SimBudget::unlimited().with_max_events(500);
            let err = try_simulate_with(&m, &config, ping_pong_forever).unwrap_err();
            match err {
                SimError::WatchdogTripped { events, states, .. } => {
                    assert!(events > 500, "counted {events} events");
                    assert_eq!(states.len(), 2);
                }
                other => panic!("expected WatchdogTripped, got {other}"),
            }
        }
    }

    #[test]
    fn watchdog_virtual_time_budget_trips_on_livelock() {
        let m = Machine::paragon(1, 2);
        for mut config in [coop(), threaded()] {
            config.budget = SimBudget::unlimited().with_max_virtual_ns(1_000_000);
            let err = try_simulate_with(&m, &config, ping_pong_forever).unwrap_err();
            match err {
                SimError::WatchdogTripped { virtual_ns, .. } => {
                    assert!(virtual_ns > 1_000_000);
                }
                other => panic!("expected WatchdogTripped, got {other}"),
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "wall-clock probe")]
    fn wall_clock_deadline_trips_on_livelock() {
        let m = Machine::paragon(1, 2);
        for mut config in [coop(), threaded()] {
            config.budget = SimBudget::unlimited().with_max_wall(std::time::Duration::ZERO);
            let err = try_simulate_with(&m, &config, ping_pong_forever).unwrap_err();
            assert!(
                matches!(err, SimError::DeadlineExceeded { .. }),
                "expected DeadlineExceeded, got {err}"
            );
        }
    }

    #[test]
    fn cancellation_stops_a_run_cleanly() {
        let m = Machine::paragon(1, 2);
        for mut config in [coop(), threaded()] {
            let token = CancelToken::new();
            token.cancel();
            config.cancel = Some(token);
            let err = try_simulate_with(&m, &config, ping_pong_forever).unwrap_err();
            assert!(
                matches!(err, SimError::Cancelled),
                "expected Cancelled, got {err}"
            );
        }
    }

    #[test]
    fn watchdog_budget_never_trips_a_healthy_run() {
        // A generous budget must not perturb outcomes: supervised and
        // unsupervised runs of the same program are bit-identical.
        let m = ring_machine();
        let prog = |mut ctx: RankCtx| async move {
            let p = ctx.size();
            let next = (ctx.rank() + 1) % p;
            let prev = (ctx.rank() + p - 1) % p;
            ctx.send(next, 3, &[ctx.rank() as u8; 128]);
            let env = ctx.recv(Some(prev), Some(3)).await;
            ctx.charge_memcpy(env.data.len());
            ctx.clock()
        };
        let plain = simulate(&m, prog);
        let config = SimConfig {
            budget: SimBudget::unlimited()
                .with_max_events(1_000_000)
                .with_max_virtual_ns(Time::MAX),
            cancel: Some(CancelToken::new()),
            ..SimConfig::default()
        };
        let supervised = try_simulate_with(&m, &config, prog).expect("healthy run must succeed");
        assert_eq!(plain.finish_ns, supervised.finish_ns);
        assert_eq!(plain.makespan_ns, supervised.makespan_ns);
    }

    #[test]
    fn exec_mode_parse_rejects_unknown_values() {
        assert_eq!(ExecMode::parse("coop"), Ok(ExecMode::Cooperative));
        assert_eq!(ExecMode::parse("cooperative"), Ok(ExecMode::Cooperative));
        assert_eq!(ExecMode::parse("threaded"), Ok(ExecMode::Threaded));
        assert_eq!(ExecMode::parse("threads"), Ok(ExecMode::Threaded));
        assert_eq!(ExecMode::parse("thread"), Ok(ExecMode::Threaded));
        // The silent-fallback bug: a typo must be an error, not the
        // cooperative default.
        assert!(ExecMode::parse("treaded").is_err());
        assert!(ExecMode::parse("").is_err());
        assert!(ExecMode::parse("COOP").is_err());
    }

    #[test]
    fn exec_mode_default_is_env_free_cooperative() {
        // `Default` is the contract behind constructors documented as
        // "ignores the environment overrides": cooperative, no env read.
        assert_eq!(ExecMode::default(), ExecMode::Cooperative);
    }

    #[test]
    fn recv_timeout_expires_then_delivers() {
        let m = Machine::paragon(1, 2);
        let run = |config: &SimConfig| {
            simulate_with(&m, config, |mut ctx| async move {
                if ctx.rank() == 0 {
                    ctx.compute_ns(50_000); // sender is slow
                    ctx.send(1, 3, b"late");
                    (0, 0)
                } else {
                    // Expires long before the sender is ready...
                    let miss = ctx.recv_timeout(Some(0), Some(3), 10).await;
                    assert!(miss.is_none(), "nothing can arrive in 10 ns");
                    let after_timeout = ctx.clock();
                    // ...then a patient retry delivers.
                    let hit = ctx.recv_timeout(Some(0), Some(3), 10_000_000).await;
                    assert!(hit.is_some());
                    (after_timeout, ctx.clock())
                }
            })
        };
        let a = run(&coop());
        let b = run(&threaded());
        assert_eq!(a.results, b.results, "executors disagree on timeouts");
        assert_eq!(a.finish_ns, b.finish_ns);
        let (after_timeout, done) = a.results[1];
        // Giving up costs one α_recv at the deadline.
        assert_eq!(
            after_timeout,
            10 + m.params.alpha_recv(mpp_model::LibraryKind::Nx)
        );
        assert!(done > 50_000, "delivery happens after the slow sender");
    }

    #[test]
    fn transient_drops_are_retried_and_equivalent() {
        use mpp_model::FaultPlan;
        let m = ring_machine();
        let faults = Some(FaultPlan::transient_drops(3, 1, 2, 20));
        let run = |exec: ExecMode| {
            let config = SimConfig {
                exec,
                faults: faults.clone(),
                ..SimConfig::default()
            };
            simulate_with(&m, &config, |mut ctx| async move {
                if ctx.rank() == 0 {
                    for _ in 1..8 {
                        ctx.recv(None, None).await;
                    }
                } else {
                    ctx.send(0, 1, &[7u8; 512]);
                }
            })
        };
        let a = run(ExecMode::Cooperative);
        let b = run(ExecMode::Threaded);
        assert_eq!(
            a.finish_ns, b.finish_ns,
            "faulted runs must stay equivalent"
        );
        assert_eq!(a.fault_stats, b.fault_stats);
        let retransmits: u64 = a.fault_stats.iter().map(|s| s.retransmits).sum();
        assert!(retransmits > 0, "a 1/2 drop rate must force retransmits");
        let dropped: u64 = a.fault_stats.iter().map(|s| s.dropped).sum();
        assert_eq!(dropped, 0, "20 attempts at 1/2 never exhaust");
    }

    #[test]
    fn exhausted_drops_lose_the_message() {
        use mpp_model::FaultPlan;
        let m = Machine::paragon(1, 2);
        // Every attempt dropped, one attempt allowed: the message is lost.
        let plan = FaultPlan {
            seed: 1,
            drop_num: 1,
            drop_den: 1,
            ..FaultPlan::default()
        };
        let config = SimConfig {
            faults: Some(plan),
            ..coop()
        };
        let out = simulate_with(&m, &config, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 0, b"doomed");
                true
            } else {
                ctx.recv_timeout(Some(0), Some(0), 1_000_000)
                    .await
                    .is_none()
            }
        });
        assert!(out.results[1], "the message must never arrive");
        assert_eq!(out.fault_stats[0].dropped, 1);
        assert_eq!(out.fault_stats[0].retransmits, 0);
    }

    #[test]
    fn outage_reroutes_with_detour_cost() {
        use mpp_model::{FaultPlan, LinkOutage};
        let m = Machine::paragon(2, 2);
        // Link 0→1 is down forever: 0's message detours 0→2→3→1.
        let plan = FaultPlan {
            link_outages: vec![LinkOutage {
                link: mpp_model::Link::new(0, 1),
                from_ns: 0,
                until_ns: Time::MAX,
            }],
            ..FaultPlan::default()
        };
        let run = |exec: ExecMode| {
            let config = SimConfig {
                exec,
                faults: Some(plan.clone()),
                ..SimConfig::default()
            };
            simulate_with(&m, &config, |mut ctx| async move {
                if ctx.rank() == 0 {
                    ctx.send(1, 0, &[1u8; 64]);
                } else if ctx.rank() == 1 {
                    ctx.recv(Some(0), Some(0)).await;
                }
            })
        };
        let a = run(ExecMode::Cooperative);
        let b = run(ExecMode::Threaded);
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(
            a.fault_stats[0].rerouted_hops, 2,
            "1-hop route became 3 hops"
        );
        assert!(a.fault_stats[0].detour_ns > 0);
        // The detour costs extra hop latency versus a clean network.
        let clean = simulate(&m, |mut ctx| async move {
            if ctx.rank() == 0 {
                ctx.send(1, 0, &[1u8; 64]);
            } else if ctx.rank() == 1 {
                ctx.recv(Some(0), Some(0)).await;
            }
        });
        assert!(a.finish_ns[1] > clean.finish_ns[1]);
        assert_eq!(
            a.contention_ns, clean.contention_ns,
            "detours are not contention"
        );
    }
}
